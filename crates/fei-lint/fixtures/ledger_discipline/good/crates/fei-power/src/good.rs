//! Known-good: joule-taking entry points carry a classification, and
//! joule-returning getters are unrestricted.
pub enum EnergyUse {
    Useful,
    Wasted,
}

pub struct Sink {
    useful_j: f64,
    wasted_j: f64,
}

impl Sink {
    pub fn charge(&mut self, usage: EnergyUse, joules: f64) {
        match usage {
            EnergyUse::Useful => self.useful_j += joules,
            EnergyUse::Wasted => self.wasted_j += joules,
        }
    }

    pub fn useful_joules(&self) -> f64 {
        self.useful_j
    }
}
