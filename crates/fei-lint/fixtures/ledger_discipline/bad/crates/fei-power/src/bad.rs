//! Known-bad: public entry points that accept raw joules with no
//! `EnergyUse` classification — spend that can bypass the ledger buckets.
pub struct Sink {
    total_j: f64,
}

impl Sink {
    pub fn add_energy(&mut self, joules: f64) {
        self.total_j += joules;
    }

    pub fn preload(&mut self, boost_j: f64) {
        self.total_j += boost_j;
    }
}
