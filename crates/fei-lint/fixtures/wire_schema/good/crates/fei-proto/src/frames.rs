//! Known-good: two tags with unique values, each produced by the encode
//! match, matched by the decode match, and named in the tests tree.
pub const TAG_DATA: u8 = 0x10;
pub const TAG_ACK: u8 = 0x11;

pub enum Frame {
    Data,
    Ack,
}

pub fn encode(frame: &Frame) -> u8 {
    match frame {
        Frame::Data => TAG_DATA,
        Frame::Ack => TAG_ACK,
    }
}

pub fn decode(tag: u8) -> Option<Frame> {
    match tag {
        TAG_DATA => Some(Frame::Data),
        TAG_ACK => Some(Frame::Ack),
        _ => None,
    }
}
