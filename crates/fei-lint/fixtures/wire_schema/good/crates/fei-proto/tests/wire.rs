//! Names every wire tag, satisfying the wire-schema rule's third leg:
//! a tag nobody tests is a tag nobody will notice breaking.
#[test]
fn tags_round_trip() {
    assert!(decode(TAG_DATA).is_some());
    assert!(decode(TAG_ACK).is_some());
}
