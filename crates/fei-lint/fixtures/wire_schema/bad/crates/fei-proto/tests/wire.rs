//! Both fei-proto tags are named here, so the only findings left are the
//! collision and the missing decode arm.
#[test]
fn tags_encode() {
    assert!(encode(&Frame::Data) == TAG_DATA);
    assert!(encode(&Frame::Ack) == TAG_ACK);
}
