//! Known-bad: `TAG_DATA` collides with fei-net's `TAG_PING` (same 0x10),
//! and `TAG_ACK` has no decode arm — the receiving side can never see an
//! Ack, which is silent schema drift.
pub const TAG_DATA: u8 = 0x10;
pub const TAG_ACK: u8 = 0x11;

pub enum Frame {
    Data,
    Ack,
}

pub fn encode(frame: &Frame) -> u8 {
    match frame {
        Frame::Data => TAG_DATA,
        Frame::Ack => TAG_ACK,
    }
}

pub fn decode(tag: u8) -> Option<Frame> {
    match tag {
        TAG_DATA => Some(Frame::Data),
        _ => None,
    }
}
