//! `TAG_PING` is tested; its only problem is the value collision.
#[test]
fn ping_round_trips() {
    assert!(is_ping(TAG_PING));
}
