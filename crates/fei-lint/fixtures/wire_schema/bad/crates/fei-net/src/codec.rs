//! The other half of the collision: `TAG_PING` reuses 0x10, which
//! `TAG_DATA` already claimed in fei-proto.
pub const TAG_PING: u8 = 0x10;

pub enum Control {
    Ping,
}

pub fn encode(control: &Control) -> u8 {
    match control {
        Control::Ping => TAG_PING,
    }
}

pub fn is_ping(tag: u8) -> bool {
    match tag {
        TAG_PING => true,
        _ => false,
    }
}
