//! Escape-comment scoping: each directive suppresses exactly the rules it
//! names — a violation of any *other* rule on the covered lines still fires.
pub fn next_line(x: Option<f64>) -> bool {
    // fei-lint: allow(no-panic, reason = "fixture: suppresses exactly no-panic and nothing else")
    let v = x.unwrap();
    let settled = v == 0.25;
    settled
}

pub fn same_line(x: Option<f64>) -> bool {
    // fei-lint: allow(no-panic, reason = "fixture: the float comparison on the covered line must still be flagged")
    x.unwrap() == 0.5
}
