//! Known-bad: panicking library code. Every site here must be either a
//! typed error or an `expect("invariant: ...")`.
pub fn widths(s: &str) -> u32 {
    let n: u32 = s.parse().unwrap();
    if n > 100 {
        panic!("width {n} out of range");
    }
    n.checked_mul(2).expect("fits in u32")
}
