//! Known-bad: a payload decoder that panics on attacker-controlled input.
//! Malformed frames are a normal runtime condition, not an invariant.
pub fn decode_count(payload: &[u8]) -> usize {
    let bytes: [u8; 4] = payload[3..7].try_into().unwrap();
    let count = u32::from_be_bytes(bytes);
    if payload.len() < 7 + count as usize {
        panic!("truncated payload: {} bytes", payload.len());
    }
    count as usize
}
