//! Known-bad: panicking on wire input. A corrupted frame is a normal
//! event on a lossy link and must surface as a typed error, never abort
//! the coordinator.
pub fn client_id(payload: &[u8]) -> u64 {
    let bytes: [u8; 8] = payload[1..9].try_into().unwrap();
    if payload[0] != 1 {
        panic!("unsupported protocol version {}", payload[0]);
    }
    u64::from_be_bytes(bytes)
}
