//! Known-good: wire input failures are typed; test code may still panic.
pub enum DecodeError {
    Truncated,
    VersionMismatch(u8),
}

pub fn client_id(payload: &[u8]) -> Result<u64, DecodeError> {
    match payload {
        [1, body @ ..] if body.len() >= 8 => {
            let bytes: [u8; 8] = body[..8].try_into().map_err(|_| DecodeError::Truncated)?;
            Ok(u64::from_be_bytes(bytes))
        }
        [version, ..] if *version != 1 => Err(DecodeError::VersionMismatch(*version)),
        _ => Err(DecodeError::Truncated),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trips() {
        let mut payload = vec![1u8];
        payload.extend_from_slice(&7u64.to_be_bytes());
        assert_eq!(super::client_id(&payload).ok().unwrap(), 7);
    }
}
