//! Known-good: the wire-codec decode contract — every malformed input is a
//! typed error, and the one slice conversion whose bounds were already
//! checked says so with the sanctioned `expect("invariant: ...")` form.
pub enum DecodeError {
    Truncated { have: usize },
}

pub fn decode_count(payload: &[u8]) -> Result<usize, DecodeError> {
    if payload.len() < 7 {
        return Err(DecodeError::Truncated {
            have: payload.len(),
        });
    }
    let bytes: [u8; 4] = payload[3..7]
        .try_into()
        .expect("invariant: length checked to cover the 7-byte header");
    let count = u32::from_be_bytes(bytes) as usize;
    if payload.len() < 7 + count {
        return Err(DecodeError::Truncated {
            have: payload.len(),
        });
    }
    Ok(count)
}
