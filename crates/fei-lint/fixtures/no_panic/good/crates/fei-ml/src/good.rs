//! Known-good: fallible paths return typed errors; provably unreachable
//! states say so with the sanctioned `expect("invariant: ...")` form; and
//! test code may panic freely.
pub enum WidthError {
    Unparseable,
    OutOfRange(u32),
}

pub fn widths(s: &str) -> Result<u32, WidthError> {
    let n: u32 = s.parse().map_err(|_| WidthError::Unparseable)?;
    if n > 100 {
        return Err(WidthError::OutOfRange(n));
    }
    Ok(n * 2)
}

pub fn first(xs: &[u32]) -> u32 {
    *xs.first()
        .expect("invariant: callers validated the slice is non-empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_sanctioned_in_tests() {
        assert_eq!(super::widths("3").ok().unwrap(), 6);
    }
}
