//! Known-good: the wire-codec idiom — a strict ordering guard
//! (`span > 0.0`) instead of float equality. Degenerate and non-finite
//! spans both fall through to the exact zero-scale path without ever
//! asking whether two floats are equal.
pub fn block_scale(min: f64, max: f64) -> f64 {
    let span = max - min;
    if span.is_finite() && span > 0.0 {
        span / 255.0
    } else {
        0.0
    }
}

pub fn is_identity(scale: f32) -> bool {
    !(scale > 0.0f32)
}
