//! Known-good: total-order comparison ranks arrivals; ties break on the
//! integer device id, never on float equality.
use std::cmp::Ordering;

pub fn rank(arrivals: &mut Vec<(f64, usize)>) {
    arrivals.sort_by(|a, b| match a.0.total_cmp(&b.0) {
        Ordering::Equal => a.1.cmp(&b.1),
        other => other,
    });
}
