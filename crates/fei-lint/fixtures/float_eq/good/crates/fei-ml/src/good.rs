//! Known-good: epsilon helpers for measured quantities; exact comparison
//! only on integers.
use fei_math::approx::{approx_eq, approx_zero};

pub fn settled(energy_j: f64, accuracy: f64, rounds: usize) -> bool {
    if approx_zero(energy_j) {
        return true;
    }
    approx_eq(accuracy, 0.93) && rounds == 0
}
