//! Known-bad: exact float comparisons in a quantizer. A constant block's
//! span lands on zero only after bit-identical arithmetic; comparing with
//! `==` makes the encoding depend on the last ulp.
pub fn block_scale(min: f64, max: f64) -> f64 {
    let span = max - min;
    if span == 0.0 {
        return 0.0;
    }
    span / 255.0
}

pub fn is_identity(scale: f32) -> bool {
    scale != 0.0f32
}
