//! Known-bad: exact float comparisons. Values computed along different
//! code paths differ in the last ulp and silently diverge behaviour.
pub fn settled(energy_j: f64, accuracy: f64) -> bool {
    if energy_j == 0.0 {
        return true;
    }
    accuracy != 1.5e3 && energy_j == 2.0f64
}
