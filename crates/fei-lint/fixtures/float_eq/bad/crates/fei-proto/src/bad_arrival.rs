//! Known-bad: exact float comparison on arrival times. An arrival that
//! differs from the sentinel in the last ulp silently changes ranking.
pub fn arrived_instantly(arrival_s: f64) -> bool {
    arrival_s == 0.0
}

pub fn straggled(factor: f64) -> bool {
    factor != 1.0f64
}
