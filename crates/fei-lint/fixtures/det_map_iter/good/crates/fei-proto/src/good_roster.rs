//! Known-good: an ordered roster keeps frame emission order reproducible.
use std::collections::BTreeMap;

pub fn broadcast_order(beats: &BTreeMap<u64, u64>) -> Vec<u64> {
    beats.keys().copied().collect()
}
