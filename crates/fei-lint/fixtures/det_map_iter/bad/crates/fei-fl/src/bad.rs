//! Known-bad: seeded-order containers in a deterministic crate. Their
//! iteration order varies per process, which breaks bit-replayability.
use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut seen: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        *seen.entry(x).or_insert(0) += 1;
    }
    seen.into_iter().collect()
}
