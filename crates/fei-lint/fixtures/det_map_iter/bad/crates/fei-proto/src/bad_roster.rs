//! Known-bad: a hash-ordered client roster in the protocol crate. Frame
//! emission order would vary per process, breaking byte-replayability.
use std::collections::HashMap;

pub fn broadcast_order(beats: &HashMap<u64, u64>) -> Vec<u64> {
    beats.keys().copied().collect()
}
