//! Known-good: every phase transition is write-ahead — the round-journal
//! append lands within the window above the `.phase =` assignment, so a
//! crash between any two lines loses nothing that was acknowledged.
pub struct Coordinator {
    phase: u64,
    journal: Vec<u8>,
}

impl Coordinator {
    pub fn open_round(&mut self, round: u64) {
        self.journal.extend_from_slice(&round.to_be_bytes());
        self.phase = 1;
    }

    pub fn close_round(&mut self, round: u64) {
        // The verdict record is the durability point; the transition
        // follows it.
        self.journal.extend_from_slice(&round.to_be_bytes());
        self.phase = 2;
    }

    pub fn is_open(&self) -> bool {
        self.phase == 1
    }
}
