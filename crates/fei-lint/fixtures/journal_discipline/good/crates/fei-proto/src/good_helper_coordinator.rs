//! Known-good under v2: the write-ahead append happens inside a helper
//! called earlier in the same function — directly or two hops deep — so
//! the rule must follow the call graph instead of a line window.
pub struct Coordinator {
    phase: u64,
    journal: Vec<u8>,
}

impl Coordinator {
    fn persist(&mut self, round: u64) {
        self.journal.extend_from_slice(&round.to_be_bytes());
    }

    fn persist_outer(&mut self, round: u64) {
        self.persist(round);
    }

    pub fn open_round(&mut self, round: u64) {
        self.persist(round);
        self.phase = 1;
    }

    pub fn close_round(&mut self, round: u64) {
        self.persist_outer(round);
        self.phase = 2;
    }
}
