//! Participants keep no durable log: their phase writes are out of the
//! rule's scope (it covers coordinator files only).
pub struct Participant {
    phase: u64,
}

impl Participant {
    pub fn start_training(&mut self) {
        self.phase = 1;
    }

    pub fn finish(&mut self) {
        self.phase = 2;
    }
}
