//! Known-bad under v2: a helper that never reaches the journal does not
//! count as write-ahead, and neither does the real persist helper when it
//! is only called *after* the phase assignment.
pub struct Coordinator {
    phase: u64,
    journal: Vec<u8>,
    metrics: Vec<u64>,
}

impl Coordinator {
    fn persist(&mut self, round: u64) {
        self.journal.extend_from_slice(&round.to_be_bytes());
    }

    fn bump_metrics(&mut self) {
        self.metrics.push(1);
    }

    pub fn open_round(&mut self, round: u64) {
        self.bump_metrics();
        self.phase = round;
    }

    pub fn close_round(&mut self, round: u64) {
        self.phase = 0;
        self.persist(round);
    }
}
