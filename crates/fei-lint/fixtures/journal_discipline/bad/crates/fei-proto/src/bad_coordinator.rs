//! Known-bad: phase transitions with no write-ahead journal append — a
//! crash right after either assignment loses the transition entirely.
pub struct Coordinator {
    phase: u64,
    rounds_closed: u64,
}

impl Coordinator {
    pub fn open_round(&mut self, round: u64) {
        self.phase = round;
    }

    pub fn close_round(&mut self) {
        self.rounds_closed += 1;
        self.phase = 0;
    }
}
