//! Known-bad: `Wasted` is never billed from outside this file, and
//! `Phantom` falls through the wildcard arm — a bucket nothing bills
//! into and a bucket nothing reports are both dead accounting.
pub enum EnergyUse {
    Useful,
    Wasted,
    Phantom,
}

pub struct Ledger {
    useful_j: f64,
    wasted_j: f64,
}

impl Ledger {
    pub fn charge(&mut self, usage: EnergyUse, joules: f64) {
        match usage {
            EnergyUse::Useful => self.useful_j += joules,
            EnergyUse::Wasted => self.wasted_j += joules,
            _ => {}
        }
    }
}
