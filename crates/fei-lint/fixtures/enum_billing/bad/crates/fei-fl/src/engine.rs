//! Only `Useful` is ever billed; `Wasted` and `Phantom` are dead.
pub fn settle_round(ledger: &mut Ledger, compute_j: f64) {
    ledger.charge(EnergyUse::Useful, compute_j);
}
