//! Known-good: both billing buckets are constructed from fei-fl and
//! surfaced by the `charge` match below, so every joule lands somewhere
//! a report can see it.
pub enum EnergyUse {
    Useful,
    Wasted,
}

pub struct Ledger {
    useful_j: f64,
    wasted_j: f64,
}

impl Ledger {
    pub fn charge(&mut self, usage: EnergyUse, joules: f64) {
        match usage {
            EnergyUse::Useful => self.useful_j += joules,
            EnergyUse::Wasted => self.wasted_j += joules,
        }
    }
}
