//! Bills both buckets from production code in a different crate.
pub fn settle_round(ledger: &mut Ledger, compute_j: f64, overhead_j: f64) {
    ledger.charge(EnergyUse::Useful, compute_j);
    ledger.charge(EnergyUse::Wasted, overhead_j);
}
