//! Known-good: backoff derived from the attempt counter alone — pure in
//! its inputs, identical on every replay.
pub fn backoff_ticks(base_ticks: u64, attempt: u32) -> u64 {
    base_ticks.max(1) * (1u64 << attempt.min(16))
}
