//! Known-good: a seeded deterministic generator threaded from the campaign.
pub struct SeededRng(u64);

impl SeededRng {
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
}
