//! Known-bad: OS entropy in a deterministic crate. Campaigns seeded the
//! same way would still diverge run to run.
pub fn jitter() -> f64 {
    let mut rng = thread_rng();
    rng.gen_range(0.0..1.0)
}

pub fn seed_from_os() -> u64 {
    let mut rng = OsRng;
    rng.next_u64()
}
