//! Known-bad: OS entropy jittering retransmit backoff. The same chaos
//! seed would replay different protocol histories run to run.
pub fn jittered_backoff(base_ticks: u64) -> u64 {
    let mut rng = thread_rng();
    base_ticks + rng.gen_range(0..base_ticks)
}
