//! Disk-backed round-journal store with fsync discipline.
//!
//! [`crate::journal::RoundJournal`] is an in-memory byte log; this module
//! pins it to disk so a coordinator *process* can die and a successor can
//! run [`crate::Coordinator::recover`] on what actually reached stable
//! storage. The contract mirrors the write-ahead rule of DESIGN.md §13 at
//! the OS level:
//!
//! * **Append + fsync before effects.** [`DiskJournal::sync_to`] appends
//!   the journal's new suffix and calls `fdatasync` before the caller is
//!   allowed to act on the transition. A crash after the sync replays the
//!   transition; a crash before it replays the pre-transition state; there
//!   is no third case.
//! * **Torn-tail recovery on open.** A SIGKILL can land mid-`write`;
//!   [`DiskJournal::open`] scans the log, cuts an incomplete trailing
//!   record (CRC-framed records make the cut unambiguous), truncates the
//!   file to the valid prefix, and hands that prefix to the caller.
//!   Mid-log corruption — acknowledged bytes that changed — is a hard
//!   [`StoreError::Corrupt`], never silently skipped.
//! * **Single writer.** Opening takes a lock file (`<path>.lock`, created
//!   with `O_EXCL`); a second open — or an open against the lock a killed
//!   process left behind — fails with a typed [`StoreError::Locked`]. Only
//!   the supervisor, having *observed* the writer's death, may
//!   [`DiskJournal::break_lock`] and respawn.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::ProtoError;
use crate::journal::RoundJournal;

/// Errors from the disk journal.
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level file error, tagged with the operation that failed.
    Io {
        /// What the store was doing ("open", "append", "fsync", ...).
        op: &'static str,
        /// The OS error text.
        message: String,
    },
    /// The journal is (or appears) owned by another writer: the lock file
    /// exists. Covers both a concurrent double-open and the stale lock of
    /// a killed process; only a supervisor that has observed the writer's
    /// death should [`DiskJournal::break_lock`].
    Locked {
        /// The lock file path.
        path: PathBuf,
    },
    /// Acknowledged journal bytes no longer parse: the log device broke
    /// its promise (or the file was overwritten). Recovery must not guess.
    Corrupt(ProtoError),
    /// The caller's in-memory journal is not an extension of what this
    /// store already synced — the two histories diverged.
    Diverged {
        /// Bytes durably synced by this store.
        synced: usize,
        /// Length of the journal the caller offered.
        offered: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, message } => write!(f, "journal store {op} failed: {message}"),
            StoreError::Locked { path } => {
                write!(f, "journal locked by {}", path.display())
            }
            StoreError::Corrupt(e) => write!(f, "journal corrupt on disk: {e}"),
            StoreError::Diverged { synced, offered } => write!(
                f,
                "journal diverged: store synced {synced} bytes, caller offered {offered}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(op: &'static str) -> impl FnOnce(std::io::Error) -> StoreError {
    move |e| StoreError::Io {
        op,
        message: e.to_string(),
    }
}

/// The lock-file path guarding `path`: `<path>.lock` (appended, so
/// `round.journal` locks as `round.journal.lock`).
fn lock_path_for(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".lock");
    PathBuf::from(name)
}

/// A single-writer, fsync-disciplined disk image of a [`RoundJournal`].
#[derive(Debug)]
pub struct DiskJournal {
    file: File,
    lock_path: PathBuf,
    synced: usize,
    /// Set by [`DiskJournal::close`] so `Drop` leaves the lock of an
    /// explicitly-closed store alone (it was already removed).
    closed: bool,
}

impl DiskJournal {
    /// Opens (or creates) the journal at `path`, taking the writer lock.
    ///
    /// Returns the store and the valid byte prefix that survived on disk —
    /// a torn trailing record from a mid-append crash is cut off and the
    /// file truncated to the returned prefix, so subsequent appends extend
    /// a clean log. Hand the prefix to [`crate::Coordinator::recover`]
    /// (non-empty) or start fresh (empty).
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] when the lock file already exists (double
    /// open, or the stale lock of a killed writer);
    /// [`StoreError::Corrupt`] when acknowledged bytes before the tail no
    /// longer parse; [`StoreError::Io`] on OS failures.
    pub fn open(path: &Path) -> Result<(Self, Vec<u8>), StoreError> {
        let lock_path = lock_path_for(path);
        // O_EXCL creation is the lock: exactly one winner per lock file.
        match OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock_path)
        {
            Ok(mut lock) => {
                // Advisory content for humans debugging a stale lock.
                let _ = write!(lock, "{}", std::process::id());
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                return Err(StoreError::Locked { path: lock_path });
            }
            Err(e) => return Err(io_err("lock")(e)),
        }
        let opened = Self::open_locked(path, &lock_path);
        if opened.is_err() {
            // Don't leave a lock behind for a store that never existed.
            let _ = std::fs::remove_file(&lock_path);
        }
        opened
    }

    fn open_locked(path: &Path, lock_path: &Path) -> Result<(Self, Vec<u8>), StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io_err("open"))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io_err("read"))?;
        // Replay to find the valid prefix; mid-log damage is fatal, a torn
        // tail is the expected signature of a crash mid-append.
        let replay = RoundJournal::from_bytes(bytes.clone())
            .replay()
            .map_err(StoreError::Corrupt)?;
        let valid = bytes.len() - replay.torn_bytes;
        if replay.torn_bytes > 0 {
            bytes.truncate(valid);
            file.set_len(valid as u64).map_err(io_err("truncate"))?;
            file.sync_data().map_err(io_err("fsync"))?;
        }
        file.seek(SeekFrom::Start(valid as u64))
            .map_err(io_err("seek"))?;
        Ok((
            Self {
                file,
                lock_path: lock_path.to_path_buf(),
                synced: valid,
                closed: false,
            },
            bytes,
        ))
    }

    /// Bytes durably on disk.
    pub fn synced_len(&self) -> usize {
        self.synced
    }

    /// Makes `journal_bytes` durable: appends the suffix beyond what is
    /// already synced and `fdatasync`s before returning. The caller must
    /// not act on a journaled transition (send frames, commit models)
    /// until this returns — that ordering *is* the write-ahead guarantee.
    ///
    /// Returns the number of bytes appended (zero when nothing new).
    ///
    /// # Errors
    ///
    /// [`StoreError::Diverged`] when `journal_bytes` is shorter than the
    /// synced prefix (the caller's journal is not an extension of this
    /// store's history); [`StoreError::Io`] on OS failures.
    pub fn sync_to(&mut self, journal_bytes: &[u8]) -> Result<usize, StoreError> {
        if journal_bytes.len() < self.synced {
            return Err(StoreError::Diverged {
                synced: self.synced,
                offered: journal_bytes.len(),
            });
        }
        let suffix = &journal_bytes[self.synced..];
        if suffix.is_empty() {
            return Ok(0);
        }
        self.file.write_all(suffix).map_err(io_err("append"))?;
        self.file.sync_data().map_err(io_err("fsync"))?;
        self.synced += suffix.len();
        Ok(suffix.len())
    }

    /// Syncs outstanding data and releases the writer lock.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the final fsync or the lock removal fails.
    pub fn close(mut self) -> Result<(), StoreError> {
        self.file.sync_data().map_err(io_err("fsync"))?;
        std::fs::remove_file(&self.lock_path).map_err(io_err("unlock"))?;
        self.closed = true;
        Ok(())
    }

    /// Removes the lock file guarding `path`, returning whether one
    /// existed. **Only** for a supervisor that has positively observed the
    /// previous writer's death (reaped the process) — breaking the lock of
    /// a live writer forfeits the single-writer guarantee.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the lock exists but cannot be removed.
    pub fn break_lock(path: &Path) -> Result<bool, StoreError> {
        let lock_path = lock_path_for(path);
        match std::fs::remove_file(&lock_path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_err("unlock")(e)),
        }
    }
}

impl Drop for DiskJournal {
    fn drop(&mut self) {
        // Best-effort unlock for orderly exits (including test panics).
        // A SIGKILL skips Drop — exactly the stale-lock case break_lock
        // and the supervisor exist for.
        if !self.closed {
            let _ = std::fs::remove_file(&self.lock_path);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::*;
    use crate::journal::JournalRecord;

    static UNIQUE: AtomicU64 = AtomicU64::new(0);

    fn temp_journal_path(tag: &str) -> PathBuf {
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "fei-store-{tag}-{}-{n}.journal",
            std::process::id()
        ))
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(lock_path_for(path));
    }

    fn sample_bytes() -> Vec<u8> {
        let mut j = RoundJournal::new();
        j.append(&JournalRecord::EpochStarted { epoch: 0, tick: 0 });
        j.append(&JournalRecord::ClientJoined { client: 1, tick: 1 });
        j.append(&JournalRecord::RoundOpened {
            round: 0,
            deadline_tick: 50,
            tick: 5,
            selected: vec![1],
        });
        j.bytes().to_vec()
    }

    #[test]
    fn fresh_open_returns_empty_prefix_and_appends_survive_reopen() {
        let path = temp_journal_path("fresh");
        let bytes = sample_bytes();
        {
            let (mut store, prefix) = DiskJournal::open(&path).expect("fresh open");
            assert!(prefix.is_empty());
            assert_eq!(store.sync_to(&bytes).expect("sync"), bytes.len());
            // Idempotent: nothing new, nothing written.
            assert_eq!(store.sync_to(&bytes).expect("sync again"), 0);
            store.close().expect("close");
        }
        let (store, prefix) = DiskJournal::open(&path).expect("reopen");
        assert_eq!(prefix, bytes);
        assert_eq!(store.synced_len(), bytes.len());
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn torn_tail_is_cut_and_file_truncated() {
        let path = temp_journal_path("torn");
        let bytes = sample_bytes();
        // Simulate a crash 3 bytes into the final record's append.
        let record_starts = record_boundaries(&bytes);
        let last_start = record_starts[record_starts.len() - 1];
        std::fs::write(&path, &bytes[..last_start + 3]).expect("seed torn file");
        let (store, prefix) = DiskJournal::open(&path).expect("open survives torn tail");
        assert_eq!(prefix, &bytes[..last_start]);
        assert_eq!(store.synced_len(), last_start);
        drop(store);
        // The truncation is durable: the file itself shrank.
        assert_eq!(
            std::fs::read(&path).expect("read back").len(),
            last_start,
            "torn bytes must not survive on disk"
        );
        cleanup(&path);
    }

    #[test]
    fn double_open_is_a_typed_lock_error() {
        let path = temp_journal_path("double");
        let (_store, _) = DiskJournal::open(&path).expect("first open");
        match DiskJournal::open(&path) {
            Err(StoreError::Locked { path: lock }) => {
                assert!(lock.to_string_lossy().ends_with(".lock"));
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        cleanup(&path);
    }

    #[test]
    fn stale_lock_is_rejected_until_broken() {
        let path = temp_journal_path("stale");
        // A killed writer leaves its lock file behind.
        std::fs::write(lock_path_for(&path), b"12345").expect("plant stale lock");
        assert!(matches!(
            DiskJournal::open(&path),
            Err(StoreError::Locked { .. })
        ));
        assert!(DiskJournal::break_lock(&path).expect("break"));
        // Breaking an absent lock reports false, not an error.
        assert!(!DiskJournal::break_lock(&path).expect("break again"));
        let (_store, prefix) = DiskJournal::open(&path).expect("open after break");
        assert!(prefix.is_empty());
        cleanup(&path);
    }

    #[test]
    fn mid_log_corruption_is_fatal_and_releases_the_lock() {
        let path = temp_journal_path("corrupt");
        let mut bytes = sample_bytes();
        bytes[2] ^= 0xFF; // damage the first record, keep the length intact
        std::fs::write(&path, &bytes).expect("seed corrupt file");
        assert!(matches!(
            DiskJournal::open(&path),
            Err(StoreError::Corrupt(_))
        ));
        // The failed open must not leave a lock that blocks inspection.
        assert!(!std::fs::exists(lock_path_for(&path)).expect("probe lock"));
        cleanup(&path);
    }

    #[test]
    fn shrinking_journal_is_a_typed_divergence() {
        let path = temp_journal_path("diverge");
        let bytes = sample_bytes();
        let (mut store, _) = DiskJournal::open(&path).expect("open");
        store.sync_to(&bytes).expect("sync");
        assert!(matches!(
            store.sync_to(&bytes[..bytes.len() - 1]),
            Err(StoreError::Diverged { .. })
        ));
        cleanup(&path);
    }

    /// Byte offsets where each journal record starts.
    pub(crate) fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
        let mut starts = Vec::new();
        let mut at = 0;
        while at < bytes.len() {
            starts.push(at);
            let (_, consumed) =
                JournalRecord::decode(&bytes[at..]).expect("sample journal is well-formed");
            at += consumed;
        }
        starts
    }
}
