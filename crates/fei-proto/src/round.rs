//! The round decision core shared by every driver.
//!
//! One round of the protocol makes exactly four decisions: *can the round
//! open* (quorum over the live fleet), *how wide to select* (over-selection
//! as a dropout hedge), *which offers survive* (delivery and the round
//! deadline), and *which arrivals win* (first `K` by arrival time, ties by
//! device id). [`RoundMachine`] owns those decisions. The in-process
//! engines ([`fei_fl`-style] serial and threaded) and the frame-driven
//! [`crate::Coordinator`] all execute this same machine, which is what
//! keeps their committed sets bit-identical.
//!
//! [`fei_fl`-style]: crate::RoundMachine

use crate::error::ProtoError;

/// Coordinator-side tolerance policy for one round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundPolicy {
    /// Updates aggregated per round (`K`).
    pub k: usize,
    /// Extra devices selected beyond `K` as a dropout hedge.
    pub over_select: usize,
    /// Minimum delivered updates for the round to commit.
    pub quorum: usize,
    /// Arrival-time deadline, virtual seconds; `None` waits forever.
    pub deadline_s: Option<f64>,
}

impl RoundPolicy {
    /// How many devices to select from a fleet of `n`: `K + m`, capped at
    /// the fleet size.
    pub fn selection_width(&self, n: usize) -> usize {
        (self.k + self.over_select).min(n)
    }
}

/// What happened to one selected device's offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceFate {
    /// The device was down; it never trained.
    Crashed,
    /// Training finished but every upload attempt failed.
    AbandonedUpload,
    /// The update was delivered after the round deadline.
    DeadlineMiss,
    /// The update arrived in time and entered the race for the first `K`.
    Arrived,
}

/// One selected device's reported round, as the driver observed it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceReport {
    /// Slowdown factor; `> 1` marks the device a straggler.
    pub straggle_factor: f64,
    /// Whether the upload ultimately succeeded.
    pub delivered: bool,
    /// Arrival time of the update, virtual seconds from round start.
    pub arrival_s: f64,
}

/// Per-round fault tally the machine accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundTally {
    /// Selected devices that were down.
    pub crashed: usize,
    /// Devices that ran slower than nominal.
    pub stragglers: usize,
    /// Devices whose every upload attempt failed.
    pub abandoned_uploads: usize,
    /// Deliveries discarded for missing the deadline.
    pub deadline_misses: usize,
}

/// The machine's verdict when the round closes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedRound {
    /// The round that closed.
    pub round: u64,
    /// Devices whose updates won the race, ascending.
    pub accepted: Vec<usize>,
    /// Whether enough arrivals met the quorum to commit.
    pub quorum_met: bool,
    /// Fault tally accumulated over the offers.
    pub tally: RoundTally,
}

/// Event-driven decision machine for one round.
///
/// Lifecycle: [`RoundMachine::begin`] gates on quorum, each selected
/// device's outcome is fed through [`RoundMachine::offer`] (or
/// [`RoundMachine::offer_crashed`]), and [`RoundMachine::close`] ranks the
/// arrivals and returns the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundMachine {
    policy: RoundPolicy,
    round: u64,
    arrivals: Vec<(f64, usize)>,
    tally: RoundTally,
}

impl RoundMachine {
    /// Opens the round if `alive` devices satisfy the quorum.
    ///
    /// # Errors
    ///
    /// [`ProtoError::QuorumLost`] when fewer devices are up than the
    /// quorum requires — the round cannot possibly commit, so it must not
    /// open (the driver should re-plan or abort instead).
    pub fn begin(policy: RoundPolicy, round: u64, alive: usize) -> Result<Self, ProtoError> {
        if alive < policy.quorum {
            return Err(ProtoError::QuorumLost {
                round,
                alive,
                required: policy.quorum,
            });
        }
        Ok(Self {
            policy,
            round,
            arrivals: Vec::new(),
            tally: RoundTally::default(),
        })
    }

    /// The policy this round runs under.
    pub fn policy(&self) -> &RoundPolicy {
        &self.policy
    }

    /// The round in progress.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// How many devices the driver should select from a fleet of `n`.
    pub fn selection_width(&self, n: usize) -> usize {
        self.policy.selection_width(n)
    }

    /// Records a selected device that was down this round.
    pub fn offer_crashed(&mut self, _device: usize) -> DeviceFate {
        self.tally.crashed += 1;
        DeviceFate::Crashed
    }

    /// Feeds one live device's round outcome, deciding its fate: abandoned
    /// uploads and post-deadline deliveries are discarded, in-time arrivals
    /// enter the first-`K` race.
    pub fn offer(&mut self, device: usize, report: DeviceReport) -> DeviceFate {
        if report.straggle_factor > 1.0 {
            self.tally.stragglers += 1;
        }
        if !report.delivered {
            self.tally.abandoned_uploads += 1;
            return DeviceFate::AbandonedUpload;
        }
        if self
            .policy
            .deadline_s
            .is_some_and(|deadline| report.arrival_s > deadline)
        {
            self.tally.deadline_misses += 1;
            return DeviceFate::DeadlineMiss;
        }
        self.arrivals.push((report.arrival_s, device));
        DeviceFate::Arrived
    }

    /// Number of in-time arrivals so far.
    pub fn arrived(&self) -> usize {
        self.arrivals.len()
    }

    /// Closes the round: the first `K` arrivals win, ties broken by device
    /// id, and the winners are reported in ascending id order.
    pub fn close(self) -> ClosedRound {
        let accepted = first_k_by_arrival(self.arrivals, self.policy.k);
        let quorum_met = accepted.len() >= self.policy.quorum;
        ClosedRound {
            round: self.round,
            accepted,
            quorum_met,
            tally: self.tally,
        }
    }
}

/// Ranks `(arrival, device)` pairs by arrival time (ties by device id),
/// keeps the first `k`, and returns the winners sorted ascending by id —
/// the canonical ordering every engine and the frame-driven coordinator
/// share.
pub fn first_k_by_arrival(mut arrivals: Vec<(f64, usize)>, k: usize) -> Vec<usize> {
    arrivals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut winners: Vec<usize> = arrivals.iter().take(k).map(|&(_, device)| device).collect();
    winners.sort_unstable();
    winners
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(k: usize, quorum: usize, deadline_s: Option<f64>) -> RoundPolicy {
        RoundPolicy {
            k,
            over_select: 2,
            quorum,
            deadline_s,
        }
    }

    #[test]
    fn quorum_gates_the_open() {
        let err = RoundMachine::begin(policy(3, 4, None), 7, 3);
        assert_eq!(
            err,
            Err(ProtoError::QuorumLost {
                round: 7,
                alive: 3,
                required: 4
            })
        );
        assert!(RoundMachine::begin(policy(3, 4, None), 7, 4).is_ok());
    }

    #[test]
    fn selection_width_caps_at_fleet() {
        let p = policy(10, 1, None);
        assert_eq!(p.selection_width(20), 12);
        assert_eq!(p.selection_width(11), 11);
    }

    #[test]
    fn fates_are_classified_and_tallied() {
        let mut machine =
            RoundMachine::begin(policy(2, 1, Some(10.0)), 0, 5).expect("quorum satisfied");
        assert_eq!(machine.offer_crashed(0), DeviceFate::Crashed);
        assert_eq!(
            machine.offer(
                1,
                DeviceReport {
                    straggle_factor: 3.0,
                    delivered: true,
                    arrival_s: 30.0
                }
            ),
            DeviceFate::DeadlineMiss
        );
        assert_eq!(
            machine.offer(
                2,
                DeviceReport {
                    straggle_factor: 1.0,
                    delivered: false,
                    arrival_s: 5.0
                }
            ),
            DeviceFate::AbandonedUpload
        );
        assert_eq!(
            machine.offer(
                3,
                DeviceReport {
                    straggle_factor: 1.0,
                    delivered: true,
                    arrival_s: 5.0
                }
            ),
            DeviceFate::Arrived
        );
        let closed = machine.close();
        assert_eq!(
            closed.tally,
            RoundTally {
                crashed: 1,
                stragglers: 1,
                abandoned_uploads: 1,
                deadline_misses: 1,
            }
        );
        assert_eq!(closed.accepted, vec![3]);
        assert!(closed.quorum_met);
    }

    #[test]
    fn first_k_ranks_by_arrival_then_id_and_sorts_winners() {
        let arrivals = vec![(5.0, 9), (1.0, 4), (5.0, 2), (0.5, 7)];
        // Race order: 7 (0.5), 4 (1.0), 2 (5.0 ties → lower id), 9.
        assert_eq!(first_k_by_arrival(arrivals.clone(), 3), vec![2, 4, 7]);
        assert_eq!(first_k_by_arrival(arrivals, 10), vec![2, 4, 7, 9]);
    }

    #[test]
    fn arrival_exactly_at_deadline_is_admitted() {
        // The deadline is inclusive: `arrival > deadline` misses, equality
        // does not — mirroring the engines' admission test.
        let mut machine =
            RoundMachine::begin(policy(1, 1, Some(10.0)), 0, 2).expect("quorum satisfied");
        assert_eq!(
            machine.offer(
                0,
                DeviceReport {
                    straggle_factor: 1.0,
                    delivered: true,
                    arrival_s: 10.0
                }
            ),
            DeviceFate::Arrived
        );
    }

    #[test]
    fn quorum_miss_reports_uncommitted() {
        let machine = RoundMachine::begin(policy(3, 2, None), 1, 4).expect("quorum satisfied");
        let closed = machine.close();
        assert!(!closed.quorum_met);
        assert!(closed.accepted.is_empty());
    }
}
