//! Per-client heartbeat liveness tracking.
//!
//! The coordinator grants every joined client a heartbeat lease: the client
//! must beat at least every `timeout` ticks or it is expired and removed.
//! The boundary is pinned exactly: a client whose last beat was at tick `t`
//! is still live through tick `t + timeout - 1` and expired **at**
//! `t + timeout` — expiry lands on the deadline tick itself, not one past
//! it. Everything is integer arithmetic on the driver's virtual clock, so
//! expiry decisions are bit-replayable.

use std::collections::BTreeMap;

use crate::error::ProtoError;

/// Tracks the last heartbeat of every registered client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessTracker {
    /// Client id → tick of its last heartbeat (or registration).
    last_beat: BTreeMap<u64, u64>,
    /// Ticks of silence at which a client expires.
    timeout: u64,
}

impl LivenessTracker {
    /// Creates a tracker expiring clients after `timeout` silent ticks.
    ///
    /// # Panics
    ///
    /// Panics on a zero timeout — every client would be dead on arrival.
    pub fn new(timeout: u64) -> Self {
        assert!(timeout > 0, "heartbeat timeout must be positive");
        Self {
            last_beat: BTreeMap::new(),
            timeout,
        }
    }

    /// The configured expiry timeout, ticks.
    pub fn timeout(&self) -> u64 {
        self.timeout
    }

    /// Registers (or re-registers) a client; registration counts as a beat.
    pub fn register(&mut self, client: u64, now: u64) {
        self.last_beat.insert(client, now);
    }

    /// Removes a client regardless of lease state.
    pub fn remove(&mut self, client: u64) {
        self.last_beat.remove(&client);
    }

    /// Whether the client is currently registered (live or not).
    pub fn contains(&self, client: u64) -> bool {
        self.last_beat.contains_key(&client)
    }

    /// Records a heartbeat.
    ///
    /// # Errors
    ///
    /// [`ProtoError::UnknownClient`] when the client never joined or was
    /// already expired and removed — the sender should rejoin.
    pub fn beat(&mut self, client: u64, now: u64) -> Result<(), ProtoError> {
        match self.last_beat.get_mut(&client) {
            Some(last) => {
                // A beat never rewinds the lease: late or reordered
                // heartbeats cannot extend silence backwards.
                *last = (*last).max(now);
                Ok(())
            }
            None => Err(ProtoError::UnknownClient { client }),
        }
    }

    /// Whether `client` is registered and inside its lease at `now`.
    pub fn is_live(&self, client: u64, now: u64) -> bool {
        self.last_beat
            .get(&client)
            .is_some_and(|&last| now.saturating_sub(last) < self.timeout)
    }

    /// Removes every client whose lease lapsed by `now`, returning them in
    /// ascending id order.
    pub fn expire(&mut self, now: u64) -> Vec<u64> {
        let expired: Vec<u64> = self
            .last_beat
            .iter()
            .filter(|&(_, &last)| now.saturating_sub(last) >= self.timeout)
            .map(|(&client, _)| client)
            .collect();
        for client in &expired {
            self.last_beat.remove(client);
        }
        expired
    }

    /// Registered clients inside their lease at `now`, ascending.
    pub fn live_clients(&self, now: u64) -> Vec<u64> {
        self.last_beat
            .iter()
            .filter(|&(_, &last)| now.saturating_sub(last) < self.timeout)
            .map(|(&client, _)| client)
            .collect()
    }

    /// Number of live clients at `now`.
    pub fn live_count(&self, now: u64) -> usize {
        self.last_beat
            .values()
            .filter(|&&last| now.saturating_sub(last) < self.timeout)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expiry_lands_exactly_on_the_deadline_tick() {
        let mut tracker = LivenessTracker::new(10);
        tracker.register(1, 100);
        // One tick before the deadline: still live.
        assert!(tracker.is_live(1, 109));
        assert_eq!(tracker.expire(109), Vec::<u64>::new());
        // Exactly at the deadline tick: expired.
        assert!(!tracker.is_live(1, 110));
        assert_eq!(tracker.expire(110), vec![1]);
        assert!(!tracker.contains(1));
    }

    #[test]
    fn beats_renew_the_lease() {
        let mut tracker = LivenessTracker::new(5);
        tracker.register(3, 0);
        assert!(tracker.beat(3, 4).is_ok());
        assert!(tracker.is_live(3, 8));
        assert!(!tracker.is_live(3, 9));
    }

    #[test]
    fn reordered_beats_never_rewind() {
        let mut tracker = LivenessTracker::new(5);
        tracker.register(3, 0);
        assert!(tracker.beat(3, 7).is_ok());
        // A delayed beat stamped tick 2 arrives after the tick-7 one.
        assert!(tracker.beat(3, 2).is_ok());
        assert!(tracker.is_live(3, 11));
    }

    #[test]
    fn unknown_clients_are_typed() {
        let mut tracker = LivenessTracker::new(5);
        assert_eq!(
            tracker.beat(9, 0),
            Err(ProtoError::UnknownClient { client: 9 })
        );
    }

    #[test]
    fn expire_returns_ascending_and_removes() {
        let mut tracker = LivenessTracker::new(3);
        for client in [5u64, 1, 9] {
            tracker.register(client, 0);
        }
        tracker.register(2, 10);
        assert_eq!(tracker.expire(10), vec![1, 5, 9]);
        assert_eq!(tracker.live_clients(10), vec![2]);
        assert_eq!(tracker.live_count(10), 1);
    }

    #[test]
    fn expired_client_can_rejoin() {
        let mut tracker = LivenessTracker::new(3);
        tracker.register(1, 0);
        tracker.expire(3);
        assert_eq!(
            tracker.beat(1, 4),
            Err(ProtoError::UnknownClient { client: 1 })
        );
        tracker.register(1, 4);
        assert!(tracker.is_live(1, 5));
    }

    #[test]
    #[should_panic(expected = "timeout must be positive")]
    fn zero_timeout_is_rejected() {
        let _ = LivenessTracker::new(0);
    }
}
