//! Process supervision for the coordinator daemon.
//!
//! The [`Supervisor`] owns the coordinator's lifecycle as a *real OS
//! process*: it spawns the daemon through a [`ProcessFactory`], detects
//! death ([`ProcessHandle::is_alive`] via non-blocking reaping), kills it
//! on demand (SIGKILL semantics — no cleanup runs, the journal's fsync
//! discipline is what keeps state safe), and respawns it against the same
//! journal path after breaking the stale lock the dead incarnation left
//! behind. [`Supervisor::shutdown`] is the graceful path: it dials the
//! coordinator and sends a [`ControlFrame::Shutdown`] frame, which
//! cancels any open round ([`crate::AbortReason::Cancelled`]) before the
//! process exits on its own.
//!
//! The factory indirection keeps kill semantics behind one trait: tests
//! can supervise an in-process thread stand-in, while production spawns
//! `fei_coordinatord` via [`CommandFactory`].

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::Duration;

use fei_net::transport::FrameConn;

use crate::frames::ControlFrame;
use crate::store::DiskJournal;

/// Errors from the supervision layer.
#[derive(Debug)]
pub enum SupervisorError {
    /// Spawning, killing, or reaping the child failed at the OS level.
    Io {
        /// What the supervisor was doing.
        op: &'static str,
        /// The OS error text.
        message: String,
    },
    /// No child is currently under supervision.
    NotRunning,
    /// Breaking the dead incarnation's journal lock failed.
    Lock(crate::store::StoreError),
}

impl std::fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SupervisorError::Io { op, message } => {
                write!(f, "supervisor {op} failed: {message}")
            }
            SupervisorError::NotRunning => write!(f, "no supervised process is running"),
            SupervisorError::Lock(e) => write!(f, "breaking stale journal lock: {e}"),
        }
    }
}

impl std::error::Error for SupervisorError {}

fn io_err(op: &'static str) -> impl FnOnce(std::io::Error) -> SupervisorError {
    move |e| SupervisorError::Io {
        op,
        message: e.to_string(),
    }
}

/// A supervised child: alive-or-dead, and killable. The single trait the
/// kill semantics hide behind — OS process in production, anything with
/// equivalent death semantics in tests.
pub trait ProcessHandle {
    /// Whether the child is still running (must reap: a zombie counts as
    /// dead).
    fn is_alive(&mut self) -> bool;
    /// Kills the child immediately (SIGKILL semantics: no notice, no
    /// cleanup) and reaps it.
    ///
    /// # Errors
    ///
    /// [`SupervisorError::Io`] if the OS refuses.
    fn kill(&mut self) -> Result<(), SupervisorError>;
}

/// Builds one child per incarnation.
pub trait ProcessFactory {
    /// The handle type this factory produces.
    type Handle: ProcessHandle;
    /// Spawns incarnation `incarnation` (0-based).
    ///
    /// # Errors
    ///
    /// [`SupervisorError::Io`] when the spawn fails.
    fn spawn(&mut self, incarnation: u64) -> Result<Self::Handle, SupervisorError>;
}

/// [`ProcessHandle`] over a real OS [`Child`].
#[derive(Debug)]
pub struct ChildHandle {
    child: Child,
}

impl ChildHandle {
    /// Wraps a spawned child.
    pub fn new(child: Child) -> Self {
        Self { child }
    }

    /// The OS process id.
    pub fn pid(&self) -> u32 {
        self.child.id()
    }
}

impl ProcessHandle for ChildHandle {
    fn is_alive(&mut self) -> bool {
        // try_wait reaps on exit, so a dead child never lingers as a
        // zombie; an errored wait is treated as dead.
        matches!(self.child.try_wait(), Ok(None))
    }

    fn kill(&mut self) -> Result<(), SupervisorError> {
        // kill() on an already-exited child reports InvalidInput; that is
        // success for our purposes (the child is dead either way).
        match self.child.kill() {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::InvalidInput => {}
            Err(e) => return Err(io_err("kill")(e)),
        }
        self.child.wait().map_err(io_err("reap"))?;
        Ok(())
    }
}

/// A [`ProcessFactory`] that builds a fresh [`Command`] per incarnation
/// via a closure — the production path for spawning `fei_coordinatord`.
pub struct CommandFactory<B: FnMut(u64) -> Command> {
    build: B,
}

impl<B: FnMut(u64) -> Command> CommandFactory<B> {
    /// Wraps a command builder; the closure receives the incarnation
    /// number (0-based) so restarts can differ (e.g. a larger
    /// `--restart-lag`).
    pub fn new(build: B) -> Self {
        Self { build }
    }
}

impl<B: FnMut(u64) -> Command> ProcessFactory for CommandFactory<B> {
    type Handle = ChildHandle;

    fn spawn(&mut self, incarnation: u64) -> Result<ChildHandle, SupervisorError> {
        let mut command = (self.build)(incarnation);
        let child = command.spawn().map_err(io_err("spawn"))?;
        Ok(ChildHandle::new(child))
    }
}

/// Spawns, watches, kills, and respawns one coordinator child at a time,
/// breaking the stale journal lock a SIGKILLed incarnation leaves behind
/// before handing the journal path to the next one.
pub struct Supervisor<F: ProcessFactory> {
    factory: F,
    handle: Option<F::Handle>,
    incarnation: u64,
    kills: u64,
    respawns: u64,
    journal_path: Option<PathBuf>,
}

impl<F: ProcessFactory> Supervisor<F> {
    /// A supervisor with no journal management.
    pub fn new(factory: F) -> Self {
        Self {
            factory,
            handle: None,
            incarnation: 0,
            kills: 0,
            respawns: 0,
            journal_path: None,
        }
    }

    /// A supervisor that breaks the stale lock at `journal` before every
    /// respawn. Only safe because the supervisor *reaped* the previous
    /// incarnation first — the lock's single-writer guarantee holds.
    pub fn with_journal(factory: F, journal: PathBuf) -> Self {
        let mut s = Self::new(factory);
        s.journal_path = Some(journal);
        s
    }

    /// Spawns the first incarnation.
    ///
    /// # Errors
    ///
    /// The factory's spawn error.
    pub fn start(&mut self) -> Result<(), SupervisorError> {
        let handle = self.factory.spawn(self.incarnation)?;
        self.handle = Some(handle);
        Ok(())
    }

    /// Whether the current incarnation is alive (false when none was
    /// started).
    pub fn is_alive(&mut self) -> bool {
        match self.handle.as_mut() {
            Some(handle) => handle.is_alive(),
            None => false,
        }
    }

    /// Kills the current incarnation (SIGKILL semantics) and reaps it.
    ///
    /// # Errors
    ///
    /// [`SupervisorError::NotRunning`] when nothing is supervised.
    pub fn kill(&mut self) -> Result<(), SupervisorError> {
        match self.handle.as_mut() {
            Some(handle) => {
                handle.kill()?;
                self.handle = None;
                self.kills += 1;
                Ok(())
            }
            None => Err(SupervisorError::NotRunning),
        }
    }

    /// Spawns the next incarnation, breaking the journal's stale lock
    /// first (the previous incarnation is dead and reaped by now — see
    /// [`Supervisor::kill`] / [`Supervisor::ensure_alive`]).
    ///
    /// # Errors
    ///
    /// [`SupervisorError::Lock`] when the lock cannot be broken, or the
    /// factory's spawn error.
    pub fn respawn(&mut self) -> Result<(), SupervisorError> {
        if let Some(handle) = self.handle.as_mut() {
            if handle.is_alive() {
                // Never two writers: take the old one down first.
                handle.kill()?;
                self.kills += 1;
            }
            self.handle = None;
        }
        if let Some(path) = &self.journal_path {
            DiskJournal::break_lock(path).map_err(SupervisorError::Lock)?;
        }
        self.incarnation += 1;
        self.respawns += 1;
        let handle = self.factory.spawn(self.incarnation)?;
        self.handle = Some(handle);
        Ok(())
    }

    /// Detect-and-restart: if the child is dead (or never started),
    /// respawns it. Returns whether a respawn happened.
    ///
    /// # Errors
    ///
    /// As [`Supervisor::respawn`].
    pub fn ensure_alive(&mut self) -> Result<bool, SupervisorError> {
        if self.is_alive() {
            return Ok(false);
        }
        self.respawn()?;
        Ok(true)
    }

    /// Incarnations killed by the supervisor.
    pub fn kills(&self) -> u64 {
        self.kills
    }

    /// Respawns performed.
    pub fn respawns(&self) -> u64 {
        self.respawns
    }

    /// The current incarnation number (0-based).
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Graceful shutdown: dials `addr` and sends a
    /// [`ControlFrame::Shutdown`] frame. The coordinator cancels any open
    /// round and exits on its own; the caller waits for death via
    /// [`Supervisor::is_alive`].
    ///
    /// # Errors
    ///
    /// [`SupervisorError::Io`] when the dial or send fails.
    pub fn shutdown(addr: SocketAddr) -> Result<(), SupervisorError> {
        let mut conn = FrameConn::connect(addr).map_err(|e| SupervisorError::Io {
            op: "shutdown dial",
            message: e.to_string(),
        })?;
        conn.send(&ControlFrame::Shutdown.encode())
            .map_err(|e| SupervisorError::Io {
                op: "shutdown send",
                message: e.to_string(),
            })?;
        // Give the kernel a beat to flush before the connection drops.
        std::thread::sleep(Duration::from_millis(20));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use super::*;

    /// A fake child that dies when poked.
    struct FakeHandle {
        alive: bool,
        kills: Arc<AtomicU64>,
    }

    impl ProcessHandle for FakeHandle {
        fn is_alive(&mut self) -> bool {
            self.alive
        }

        fn kill(&mut self) -> Result<(), SupervisorError> {
            self.alive = false;
            self.kills.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    struct FakeFactory {
        spawned: Vec<u64>,
        kills: Arc<AtomicU64>,
    }

    impl ProcessFactory for FakeFactory {
        type Handle = FakeHandle;

        fn spawn(&mut self, incarnation: u64) -> Result<FakeHandle, SupervisorError> {
            self.spawned.push(incarnation);
            Ok(FakeHandle {
                alive: true,
                kills: self.kills.clone(),
            })
        }
    }

    #[test]
    fn kill_then_respawn_advances_the_incarnation() {
        let kills = Arc::new(AtomicU64::new(0));
        let factory = FakeFactory {
            spawned: Vec::new(),
            kills: kills.clone(),
        };
        let mut sup = Supervisor::new(factory);
        sup.start().expect("start");
        assert!(sup.is_alive());
        assert_eq!(sup.incarnation(), 0);

        sup.kill().expect("kill");
        assert!(!sup.is_alive());
        assert_eq!(kills.load(Ordering::Relaxed), 1);

        assert!(sup.ensure_alive().expect("ensure"));
        assert!(sup.is_alive());
        assert_eq!(sup.incarnation(), 1);
        assert_eq!(sup.kills(), 1);
        assert_eq!(sup.respawns(), 1);
        // Alive child: ensure_alive is a no-op.
        assert!(!sup.ensure_alive().expect("ensure"));
    }

    #[test]
    fn respawn_on_a_live_child_kills_it_first() {
        let kills = Arc::new(AtomicU64::new(0));
        let factory = FakeFactory {
            spawned: Vec::new(),
            kills: kills.clone(),
        };
        let mut sup = Supervisor::new(factory);
        sup.start().expect("start");
        sup.respawn().expect("respawn");
        assert_eq!(kills.load(Ordering::Relaxed), 1, "old child must die first");
        assert_eq!(sup.incarnation(), 1);
    }

    #[test]
    fn kill_without_a_child_is_a_typed_error() {
        let factory = FakeFactory {
            spawned: Vec::new(),
            kills: Arc::new(AtomicU64::new(0)),
        };
        let mut sup = Supervisor::new(factory);
        assert!(matches!(sup.kill(), Err(SupervisorError::NotRunning)));
        assert!(!sup.is_alive());
    }

    #[test]
    fn respawn_breaks_the_stale_journal_lock() {
        let path = std::env::temp_dir().join(format!(
            "fei-sup-lock-{}-{}.journal",
            std::process::id(),
            line!()
        ));
        // Simulate a SIGKILLed incarnation: lock file left behind.
        let lock = {
            let mut os = path.as_os_str().to_os_string();
            os.push(".lock");
            std::path::PathBuf::from(os)
        };
        std::fs::write(&lock, b"424242\n").expect("plant stale lock");

        let factory = FakeFactory {
            spawned: Vec::new(),
            kills: Arc::new(AtomicU64::new(0)),
        };
        let mut sup = Supervisor::with_journal(factory, path.clone());
        sup.respawn().expect("respawn breaks lock");
        assert!(!lock.exists(), "stale lock must be gone before the spawn");
        // And the journal is now openable by the next incarnation.
        let (store, prefix) = DiskJournal::open(&path).expect("journal reopens");
        assert!(prefix.is_empty());
        store.close().expect("close");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn process_handle_reaps_a_real_child() {
        // A real OS child via CommandFactory: spawn `sleep`, SIGKILL it,
        // observe death.
        let mut factory = CommandFactory::new(|_incarnation| {
            let mut c = Command::new("sleep");
            c.arg("30");
            c
        });
        let mut handle = factory.spawn(0).expect("spawn sleep");
        assert!(handle.is_alive());
        handle.kill().expect("kill sleep");
        assert!(!handle.is_alive());
    }
}
