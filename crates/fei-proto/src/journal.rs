//! The coordinator's write-ahead round journal.
//!
//! A [`RoundJournal`] is the coordinator's only durable state: an
//! append-only byte log of [`JournalRecord`]s, each encoded as a
//! CRC32-framed [`fei_net::codec`] frame under the journal tag space
//! (`0x20..`) with the same leading protocol-version byte as the control
//! plane. The coordinator appends a record at every state transition
//! *before* the transition's effects leave the machine, so a crash between
//! any two ticks loses nothing that was acknowledged.
//!
//! Replay is deterministic and idempotent: [`RoundJournal::replay`] decodes
//! the log back into records (tolerating a torn tail from a crash
//! mid-append, which is cut off cleanly), and [`JournalState::from_records`]
//! folds them into the recovered roster, epoch, and in-flight round state.
//! Folding a journal twice — or a journal in which any record was
//! duplicated — produces the same state, so recovery composes with the
//! at-least-once semantics of any real log device.

use std::collections::{BTreeMap, BTreeSet};

use fei_net::codec::{decode_frame, encode_frame, len_u32};
use fei_net::CodecError;

use crate::error::ProtoError;
use crate::frames::{AbortReason, PROTO_VERSION};

/// Journal tag space: a new coordinator epoch began (fresh start or
/// recovery).
pub const TAG_EPOCH_STARTED: u8 = 0x20;
/// A client joined the roster.
pub const TAG_CLIENT_JOINED: u8 = 0x21;
/// A client's heartbeat lease lapsed and it left the roster.
pub const TAG_CLIENT_EXPIRED: u8 = 0x22;
/// A round opened with a selection set and a deadline.
pub const TAG_ROUND_OPENED: u8 = 0x23;
/// An update was accepted into the open round's buffer.
pub const TAG_UPDATE_ACCEPTED: u8 = 0x24;
/// The open round committed.
pub const TAG_ROUND_COMMITTED: u8 = 0x25;
/// The open round aborted.
pub const TAG_ROUND_ABORTED: u8 = 0x26;

/// Every journal tag, in value order — the journal half of the tag table
/// documented in [`crate::frames`]. New record kinds must be added here
/// (the disjointness test below walks this array against
/// [`crate::frames::CONTROL_TAGS`]).
pub const JOURNAL_TAGS: [u8; 7] = [
    TAG_EPOCH_STARTED,
    TAG_CLIENT_JOINED,
    TAG_CLIENT_EXPIRED,
    TAG_ROUND_OPENED,
    TAG_UPDATE_ACCEPTED,
    TAG_ROUND_COMMITTED,
    TAG_ROUND_ABORTED,
];

/// One durable state transition of the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A coordinator incarnation began (epoch 0 is the first boot; each
    /// recovery bumps it).
    EpochStarted {
        /// The incarnation number.
        epoch: u64,
        /// Tick the incarnation started.
        tick: u64,
    },
    /// `client` joined the roster.
    ClientJoined {
        /// The joined client id.
        client: u64,
        /// Tick of the join.
        tick: u64,
    },
    /// `client`'s lease lapsed; it left the roster.
    ClientExpired {
        /// The expired client id.
        client: u64,
        /// Tick of the expiry.
        tick: u64,
    },
    /// A round opened.
    RoundOpened {
        /// The opened round.
        round: u64,
        /// Absolute submission deadline tick.
        deadline_tick: u64,
        /// Tick the round opened.
        tick: u64,
        /// Selected clients, ascending.
        selected: Vec<u64>,
    },
    /// An update entered the open round's buffer.
    UpdateAccepted {
        /// The round the update belongs to.
        round: u64,
        /// The submitting client.
        client: u64,
        /// Aggregation weight (local sample count).
        samples: u32,
        /// Arrival tick.
        tick: u64,
        /// The wire-v2 update payload, byte for byte.
        update: Vec<u8>,
    },
    /// The open round committed.
    RoundCommitted {
        /// The committed round.
        round: u64,
        /// Commit tick.
        tick: u64,
        /// Aggregated clients, ascending.
        accepted: Vec<u64>,
    },
    /// The open round aborted.
    RoundAborted {
        /// The aborted round.
        round: u64,
        /// Why.
        reason: AbortReason,
        /// Abort tick.
        tick: u64,
    },
}

impl JournalRecord {
    /// The journal tag this record is framed under.
    pub fn tag(&self) -> u8 {
        match self {
            JournalRecord::EpochStarted { .. } => TAG_EPOCH_STARTED,
            JournalRecord::ClientJoined { .. } => TAG_CLIENT_JOINED,
            JournalRecord::ClientExpired { .. } => TAG_CLIENT_EXPIRED,
            JournalRecord::RoundOpened { .. } => TAG_ROUND_OPENED,
            JournalRecord::UpdateAccepted { .. } => TAG_UPDATE_ACCEPTED,
            JournalRecord::RoundCommitted { .. } => TAG_ROUND_COMMITTED,
            JournalRecord::RoundAborted { .. } => TAG_ROUND_ABORTED,
        }
    }

    /// Human-readable record kind.
    pub fn name(&self) -> &'static str {
        match self {
            JournalRecord::EpochStarted { .. } => "EpochStarted",
            JournalRecord::ClientJoined { .. } => "ClientJoined",
            JournalRecord::ClientExpired { .. } => "ClientExpired",
            JournalRecord::RoundOpened { .. } => "RoundOpened",
            JournalRecord::UpdateAccepted { .. } => "UpdateAccepted",
            JournalRecord::RoundCommitted { .. } => "RoundCommitted",
            JournalRecord::RoundAborted { .. } => "RoundAborted",
        }
    }

    /// Serializes into one complete journal frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.push(PROTO_VERSION);
        match self {
            JournalRecord::EpochStarted { epoch, tick } => {
                payload.extend_from_slice(&epoch.to_be_bytes());
                payload.extend_from_slice(&tick.to_be_bytes());
            }
            JournalRecord::ClientJoined { client, tick }
            | JournalRecord::ClientExpired { client, tick } => {
                payload.extend_from_slice(&client.to_be_bytes());
                payload.extend_from_slice(&tick.to_be_bytes());
            }
            JournalRecord::RoundOpened {
                round,
                deadline_tick,
                tick,
                selected,
            } => {
                payload.extend_from_slice(&round.to_be_bytes());
                payload.extend_from_slice(&deadline_tick.to_be_bytes());
                payload.extend_from_slice(&tick.to_be_bytes());
                payload.extend_from_slice(&len_u32(selected.len()).to_be_bytes());
                for client in selected {
                    payload.extend_from_slice(&client.to_be_bytes());
                }
            }
            JournalRecord::UpdateAccepted {
                round,
                client,
                samples,
                tick,
                update,
            } => {
                payload.extend_from_slice(&round.to_be_bytes());
                payload.extend_from_slice(&client.to_be_bytes());
                payload.extend_from_slice(&samples.to_be_bytes());
                payload.extend_from_slice(&tick.to_be_bytes());
                payload.extend_from_slice(&len_u32(update.len()).to_be_bytes());
                payload.extend_from_slice(update);
            }
            JournalRecord::RoundCommitted {
                round,
                tick,
                accepted,
            } => {
                payload.extend_from_slice(&round.to_be_bytes());
                payload.extend_from_slice(&tick.to_be_bytes());
                payload.extend_from_slice(&len_u32(accepted.len()).to_be_bytes());
                for client in accepted {
                    payload.extend_from_slice(&client.to_be_bytes());
                }
            }
            JournalRecord::RoundAborted {
                round,
                reason,
                tick,
            } => {
                payload.extend_from_slice(&round.to_be_bytes());
                payload.push(reason.tag());
                payload.extend_from_slice(&tick.to_be_bytes());
            }
        }
        encode_frame(self.tag(), &payload).to_vec()
    }

    /// Decodes one journal record from the front of `bytes`, returning the
    /// record and the bytes consumed.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Codec`] on framing/CRC failures,
    /// [`ProtoError::UnknownFrameType`] on a tag outside the journal space,
    /// and [`ProtoError::VersionMismatch`] on a foreign version byte.
    pub fn decode(bytes: &[u8]) -> Result<(JournalRecord, usize), ProtoError> {
        let (frame, consumed) = decode_frame(bytes)?;
        let payload = &frame.payload[..];
        let mut reader = Reader::new(payload);
        let version = reader.u8()?;
        if version != PROTO_VERSION {
            return Err(ProtoError::VersionMismatch {
                expected: PROTO_VERSION,
                found: version,
            });
        }
        let record = match frame.msg_type {
            TAG_EPOCH_STARTED => JournalRecord::EpochStarted {
                epoch: reader.u64()?,
                tick: reader.u64()?,
            },
            TAG_CLIENT_JOINED => JournalRecord::ClientJoined {
                client: reader.u64()?,
                tick: reader.u64()?,
            },
            TAG_CLIENT_EXPIRED => JournalRecord::ClientExpired {
                client: reader.u64()?,
                tick: reader.u64()?,
            },
            TAG_ROUND_OPENED => {
                let round = reader.u64()?;
                let deadline_tick = reader.u64()?;
                let tick = reader.u64()?;
                let count = reader.u32()? as usize;
                let mut selected = Vec::with_capacity(count.min(payload.len() / 8));
                for _ in 0..count {
                    selected.push(reader.u64()?);
                }
                JournalRecord::RoundOpened {
                    round,
                    deadline_tick,
                    tick,
                    selected,
                }
            }
            TAG_UPDATE_ACCEPTED => {
                let round = reader.u64()?;
                let client = reader.u64()?;
                let samples = reader.u32()?;
                let tick = reader.u64()?;
                let len = reader.u32()? as usize;
                JournalRecord::UpdateAccepted {
                    round,
                    client,
                    samples,
                    tick,
                    update: reader.bytes(len)?.to_vec(),
                }
            }
            TAG_ROUND_COMMITTED => {
                let round = reader.u64()?;
                let tick = reader.u64()?;
                let count = reader.u32()? as usize;
                let mut accepted = Vec::with_capacity(count.min(payload.len() / 8));
                for _ in 0..count {
                    accepted.push(reader.u64()?);
                }
                JournalRecord::RoundCommitted {
                    round,
                    tick,
                    accepted,
                }
            }
            TAG_ROUND_ABORTED => {
                let round = reader.u64()?;
                let tag = reader.u8()?;
                let reason =
                    AbortReason::from_tag(tag).ok_or(ProtoError::UnknownFrameType { tag })?;
                JournalRecord::RoundAborted {
                    round,
                    reason,
                    tick: reader.u64()?,
                }
            }
            tag => return Err(ProtoError::UnknownFrameType { tag }),
        };
        Ok((record, consumed))
    }
}

/// Bounds-checked big-endian payload reader (journal twin of the
/// control-frame reader).
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.at..end];
                self.at = end;
                Ok(slice)
            }
            None => Err(ProtoError::Codec(CodecError::Truncated {
                needed: self.at.saturating_add(n),
                available: self.bytes.len(),
            })),
        }
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let raw = self.bytes(4)?;
        let mut buf = [0u8; 4];
        buf.copy_from_slice(raw);
        Ok(u32::from_be_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let raw = self.bytes(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(raw);
        Ok(u64::from_be_bytes(buf))
    }
}

/// The append-only write-ahead log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundJournal {
    bytes: Vec<u8>,
    records: u64,
}

/// What [`RoundJournal::replay`] recovered from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalReplay {
    /// Every intact record, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes of a torn trailing record cut off by a crash mid-append
    /// (zero on a clean log).
    pub torn_bytes: usize,
}

impl RoundJournal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adopts an existing durable log (e.g. the bytes that survived a
    /// coordinator crash).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        let records = Self::count_records(&bytes).unwrap_or_default();
        Self { bytes, records }
    }

    fn count_records(bytes: &[u8]) -> Result<u64, ProtoError> {
        let mut at = 0;
        let mut n = 0;
        while at < bytes.len() {
            let (_, consumed) = JournalRecord::decode(&bytes[at..])?;
            at += consumed;
            n += 1;
        }
        Ok(n)
    }

    /// Appends one record; the write is the transition's durability point.
    pub fn append(&mut self, record: &JournalRecord) {
        self.bytes.extend_from_slice(&record.encode());
        self.records += 1;
    }

    /// The durable log, byte for byte.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Total log size, bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Decodes the log back into records. A truncated trailing frame — the
    /// signature of a crash mid-append — is cut off cleanly and reported in
    /// [`JournalReplay::torn_bytes`]; any other malformation (CRC failure,
    /// foreign tag or version) is a hard error, because it means the log
    /// device corrupted acknowledged writes.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Codec`], [`ProtoError::UnknownFrameType`], or
    /// [`ProtoError::VersionMismatch`] on mid-log corruption.
    pub fn replay(&self) -> Result<JournalReplay, ProtoError> {
        let mut records = Vec::new();
        let mut at = 0;
        while at < self.bytes.len() {
            match JournalRecord::decode(&self.bytes[at..]) {
                Ok((record, consumed)) => {
                    records.push(record);
                    at += consumed;
                }
                // A torn tail is only acceptable as the *last* thing in the
                // log: the decode failed because the bytes ran out, not
                // because acknowledged bytes changed underneath us.
                Err(ProtoError::Codec(CodecError::Truncated { .. })) => {
                    return Ok(JournalReplay {
                        records,
                        torn_bytes: self.bytes.len() - at,
                    });
                }
                Err(e) => return Err(e),
            }
        }
        Ok(JournalReplay {
            records,
            torn_bytes: 0,
        })
    }
}

/// An in-flight round reconstructed from the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenRound {
    /// The round number.
    pub round: u64,
    /// Selected clients.
    pub selected: BTreeSet<u64>,
    /// Absolute submission deadline tick.
    pub deadline_tick: u64,
    /// Tick the round opened.
    pub opened_at: u64,
    /// Buffered updates: client → (samples, payload).
    pub updates: BTreeMap<u64, (u32, Vec<u8>)>,
    /// Arrival order of the buffered updates: `(tick, client)`.
    pub arrivals: Vec<(u64, u64)>,
}

/// Coordinator state folded out of a journal replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalState {
    /// The last incarnation recorded (0 when the log is empty).
    pub epoch: u64,
    /// Clients joined and not expired, ascending.
    pub roster: BTreeSet<u64>,
    /// The round the recovered coordinator should be at (the open round's
    /// number, or one past the last closed round).
    pub next_round: u64,
    /// The round that was in flight at the crash, if any.
    pub open_round: Option<OpenRound>,
}

impl JournalState {
    /// Folds records into recovered state. The fold is idempotent per
    /// record: duplicated records (an at-least-once log device) produce the
    /// same state as the originals.
    pub fn from_records(records: &[JournalRecord]) -> JournalState {
        let mut state = JournalState::default();
        for record in records {
            state.apply(record);
        }
        state
    }

    fn apply(&mut self, record: &JournalRecord) {
        match record {
            JournalRecord::EpochStarted { epoch, .. } => {
                self.epoch = (*epoch).max(self.epoch);
            }
            JournalRecord::ClientJoined { client, .. } => {
                self.roster.insert(*client);
            }
            JournalRecord::ClientExpired { client, .. } => {
                self.roster.remove(client);
            }
            JournalRecord::RoundOpened {
                round,
                deadline_tick,
                tick,
                selected,
            } => {
                // Re-opening the already-open round is a duplicate; a new
                // round supersedes (its predecessor must have closed, but a
                // torn verdict record makes the open marker authoritative).
                if self.open_round.as_ref().is_some_and(|o| o.round == *round) {
                    return;
                }
                self.open_round = Some(OpenRound {
                    round: *round,
                    selected: selected.iter().copied().collect(),
                    deadline_tick: *deadline_tick,
                    opened_at: *tick,
                    updates: BTreeMap::new(),
                    arrivals: Vec::new(),
                });
                self.next_round = self.next_round.max(*round);
            }
            JournalRecord::UpdateAccepted {
                round,
                client,
                samples,
                tick,
                update,
            } => {
                if let Some(open) = self.open_round.as_mut() {
                    if open.round == *round && !open.updates.contains_key(client) {
                        open.updates.insert(*client, (*samples, update.clone()));
                        open.arrivals.push((*tick, *client));
                    }
                }
            }
            JournalRecord::RoundCommitted { round, .. }
            | JournalRecord::RoundAborted { round, .. } => {
                if self.open_round.as_ref().is_some_and(|o| o.round == *round) {
                    self.open_round = None;
                }
                self.next_round = self.next_round.max(round + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_and_journal_tag_ranges_are_disjoint() {
        use crate::frames::{
            CONTROL_TAGS, TAG_EPOCH_NOTICE, TAG_HEARTBEAT, TAG_JOIN_ACK, TAG_JOIN_REQUEST,
            TAG_RESUME, TAG_RESUME_ACK, TAG_ROUND_ABORT, TAG_ROUND_COMMIT, TAG_SELECT,
            TAG_SHUTDOWN, TAG_UPDATE_SUBMIT,
        };
        // Name every tag explicitly: this is the executable twin of the
        // tag table in the frames.rs module docs, and the reference the
        // wire-schema lint's "named in a test" leg checks for.
        let control: [(u8, &str); 11] = [
            (TAG_JOIN_REQUEST, "TAG_JOIN_REQUEST"),
            (TAG_JOIN_ACK, "TAG_JOIN_ACK"),
            (TAG_HEARTBEAT, "TAG_HEARTBEAT"),
            (TAG_SELECT, "TAG_SELECT"),
            (TAG_UPDATE_SUBMIT, "TAG_UPDATE_SUBMIT"),
            (TAG_ROUND_ABORT, "TAG_ROUND_ABORT"),
            (TAG_ROUND_COMMIT, "TAG_ROUND_COMMIT"),
            (TAG_EPOCH_NOTICE, "TAG_EPOCH_NOTICE"),
            (TAG_RESUME, "TAG_RESUME"),
            (TAG_RESUME_ACK, "TAG_RESUME_ACK"),
            (TAG_SHUTDOWN, "TAG_SHUTDOWN"),
        ];
        let journal: [(u8, &str); 7] = [
            (TAG_EPOCH_STARTED, "TAG_EPOCH_STARTED"),
            (TAG_CLIENT_JOINED, "TAG_CLIENT_JOINED"),
            (TAG_CLIENT_EXPIRED, "TAG_CLIENT_EXPIRED"),
            (TAG_ROUND_OPENED, "TAG_ROUND_OPENED"),
            (TAG_UPDATE_ACCEPTED, "TAG_UPDATE_ACCEPTED"),
            (TAG_ROUND_COMMITTED, "TAG_ROUND_COMMITTED"),
            (TAG_ROUND_ABORTED, "TAG_ROUND_ABORTED"),
        ];
        let control_values: Vec<u8> = control.iter().map(|&(t, _)| t).collect();
        let journal_values: Vec<u8> = journal.iter().map(|&(t, _)| t).collect();
        assert_eq!(
            control_values, CONTROL_TAGS,
            "table drifted from CONTROL_TAGS"
        );
        assert_eq!(
            journal_values, JOURNAL_TAGS,
            "table drifted from JOURNAL_TAGS"
        );
        for (tag, name) in control {
            assert!(
                (0x10..=0x1A).contains(&tag),
                "{name} (0x{tag:02x}) outside the documented control range"
            );
        }
        for (tag, name) in journal {
            assert!(
                (0x20..=0x26).contains(&tag),
                "{name} (0x{tag:02x}) outside the documented journal range"
            );
        }
        let mut all: Vec<u8> = control_values.into_iter().chain(journal_values).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 18, "control and journal tag values overlap");
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::EpochStarted { epoch: 0, tick: 0 },
            JournalRecord::ClientJoined { client: 3, tick: 1 },
            JournalRecord::ClientJoined { client: 1, tick: 2 },
            JournalRecord::ClientJoined { client: 7, tick: 2 },
            JournalRecord::ClientExpired {
                client: 7,
                tick: 30,
            },
            JournalRecord::RoundOpened {
                round: 0,
                deadline_tick: 50,
                tick: 10,
                selected: vec![1, 3],
            },
            JournalRecord::UpdateAccepted {
                round: 0,
                client: 3,
                samples: 12,
                tick: 14,
                update: vec![9, 9, 9],
            },
            JournalRecord::RoundCommitted {
                round: 0,
                tick: 20,
                accepted: vec![3],
            },
            JournalRecord::RoundOpened {
                round: 1,
                deadline_tick: 90,
                tick: 40,
                selected: vec![1, 3],
            },
            JournalRecord::UpdateAccepted {
                round: 1,
                client: 1,
                samples: 5,
                tick: 44,
                update: vec![1, 2],
            },
        ]
    }

    fn journal_of(records: &[JournalRecord]) -> RoundJournal {
        let mut journal = RoundJournal::new();
        for record in records {
            journal.append(record);
        }
        journal
    }

    #[test]
    fn every_record_round_trips() {
        for record in sample_records() {
            let bytes = record.encode();
            let (decoded, consumed) = JournalRecord::decode(&bytes)
                .unwrap_or_else(|e| panic!("{} failed: {e}", record.name()));
            assert_eq!(decoded, record);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn replay_recovers_the_append_order() {
        let records = sample_records();
        let journal = journal_of(&records);
        let replay = journal.replay().expect("clean log");
        assert_eq!(replay.records, records);
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(journal.records(), records.len() as u64);
    }

    #[test]
    fn torn_tail_is_cut_cleanly() {
        let records = sample_records();
        let journal = journal_of(&records);
        // A crash mid-append leaves a partial trailing frame.
        let torn = RoundJournal::from_bytes(journal.bytes()[..journal.len() - 5].to_vec());
        let replay = torn.replay().expect("torn tail is not corruption");
        assert_eq!(replay.records.len(), records.len() - 1);
        assert!(replay.torn_bytes > 0);
    }

    #[test]
    fn mid_log_corruption_is_a_hard_error() {
        let journal = journal_of(&sample_records());
        let mut bytes = journal.bytes().to_vec();
        // Flip a byte inside the first record's payload.
        bytes[9] ^= 0xFF;
        let corrupt = RoundJournal::from_bytes(bytes);
        assert!(corrupt.replay().is_err());
    }

    #[test]
    fn state_fold_reconstructs_roster_and_open_round() {
        let state = JournalState::from_records(&sample_records());
        assert_eq!(state.epoch, 0);
        assert_eq!(state.roster.iter().copied().collect::<Vec<_>>(), vec![1, 3]);
        let open = state.open_round.expect("round 1 was in flight");
        assert_eq!(open.round, 1);
        assert_eq!(open.deadline_tick, 90);
        assert_eq!(open.updates.len(), 1);
        assert_eq!(open.arrivals, vec![(44, 1)]);
        assert_eq!(state.next_round, 1);
    }

    #[test]
    fn closed_rounds_advance_next_round() {
        let mut records = sample_records();
        records.push(JournalRecord::RoundAborted {
            round: 1,
            reason: AbortReason::CoordinatorCrash,
            tick: 60,
        });
        let state = JournalState::from_records(&records);
        assert!(state.open_round.is_none());
        assert_eq!(state.next_round, 2);
    }

    #[test]
    fn fold_is_idempotent_under_per_record_duplication() {
        let records = sample_records();
        let mut duplicated = Vec::new();
        for record in &records {
            duplicated.push(record.clone());
            duplicated.push(record.clone());
        }
        assert_eq!(
            JournalState::from_records(&records),
            JournalState::from_records(&duplicated)
        );
    }
}
