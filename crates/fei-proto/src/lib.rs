//! Coordinator protocol state machine for federated edge intelligence.
//!
//! `fei-proto` turns the workspace's federated-averaging loop into an
//! explicit, event-driven protocol in which wire frames are the *only*
//! channel between coordinator and devices:
//!
//! * [`ControlFrame`] — the control plane (join handshake with a wire
//!   version gate, heartbeats, selection notices, update submissions,
//!   commit/abort broadcasts), encoded through the same `fei-net` frame
//!   codec as model payloads;
//! * [`Coordinator`] — the server-side machine
//!   (`Idle → Rendezvous → Selected → Training → Aggregating →
//!   RoundClosed`) with heartbeat leases, round deadlines, quorum-gated
//!   partial close, and typed rejections for every malformed or mistimed
//!   frame;
//! * [`Participant`] — the device-side mirror with rejoin, heartbeating,
//!   and retransmit-with-backoff submission;
//! * [`RoundMachine`] — the round decision core (quorum gate, selection
//!   width, deadline admission, first-`K`-by-arrival ranking) shared with
//!   the in-process training engines so committed sets stay bit-identical
//!   across drivers;
//! * [`RoundJournal`] — the coordinator's write-ahead log, appended before
//!   every state transition; [`Coordinator::recover`] folds it back into
//!   roster, leases, and in-flight round state after a crash, resuming the
//!   round when quorum is still reachable in the deadline budget and
//!   aborting it cleanly otherwise;
//! * [`ChaosLink`] and [`Cluster`] — a deterministic lossy network and an
//!   in-process driver that audits the protocol's liveness (every opened
//!   round commits or aborts — across coordinator restarts, within a
//!   bounded recovery budget) and safety (no expired client's update is
//!   ever aggregated, no update aggregated twice across a restart) under
//!   seeded chaos, including seeded coordinator kill/restart events;
//! * [`DiskJournal`] — the journal pinned to disk with append+fsync before
//!   every transition effect, torn-tail truncation on open, and a
//!   lock-file single-writer guarantee;
//! * [`node`] — `CoordinatorNode`/`ParticipantNode`, which drive the same
//!   state machines from real localhost TCP sockets
//!   ([`fei_net::transport`]) while persisting a frame trace whose
//!   deterministic replay ([`replay_trace`]) must reproduce the live run's
//!   decisions bit for bit;
//! * [`Supervisor`] — spawns the coordinator as a real OS process, detects
//!   death, breaks the stale journal lock, and respawns against the same
//!   journal path.
//!
//! The simulation core stays deterministic: no wall clock, no ambient
//! randomness, no unordered iteration. Identical configurations and seeds
//! replay identical protocol histories, byte for byte. The socket runtime
//! in [`node`] is the one place scheduling nondeterminism enters — and the
//! frame trace pins it down again: replaying the trace through the same
//! decision core is required (and tested) to be bit-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod cluster;
pub mod coordinator;
pub mod error;
pub mod frames;
pub mod journal;
pub mod liveness;
pub mod node;
pub mod participant;
pub mod round;
pub mod store;
pub mod supervisor;

pub use chaos::{ChaosConfig, ChaosLink, ChaosStats, Envelope, COORDINATOR_ADDR};
pub use cluster::{Cluster, ClusterConfig, ClusterReport, CoordinatorCrash, RoundVerdict};
pub use coordinator::{
    AbortBreakdown, ControlStats, Coordinator, CoordinatorConfig, Effect, Phase,
};
pub use error::ProtoError;
pub use frames::{control_round_bytes, AbortReason, ControlFrame, PROTO_VERSION};
pub use journal::{JournalRecord, JournalReplay, JournalState, OpenRound, RoundJournal};
pub use liveness::LivenessTracker;
pub use node::{
    replay_trace, CoordinatorAddr, CoordinatorNode, CoordinatorNodeConfig, NodeAudit, NodeError,
    NodeReport, ParticipantNode, ParticipantNodeConfig, ParticipantReport, TraceEvent,
};
pub use participant::{Participant, ParticipantConfig, ParticipantPhase, ParticipantStats};
pub use round::{
    first_k_by_arrival, ClosedRound, DeviceFate, DeviceReport, RoundMachine, RoundPolicy,
    RoundTally,
};
pub use store::{DiskJournal, StoreError};
pub use supervisor::{
    ChildHandle, CommandFactory, ProcessFactory, ProcessHandle, Supervisor, SupervisorError,
};
