//! Typed protocol errors.
//!
//! Every way a control-plane frame can be rejected has a dedicated variant,
//! so drivers can distinguish recoverable conditions (retry after a
//! [`ProtoError::Codec`] checksum failure, rejoin after
//! [`ProtoError::UnknownClient`]) from contract violations
//! ([`ProtoError::ExpiredClient`] — the safety invariant that an expired
//! device's update never reaches aggregation).

use std::error::Error;
use std::fmt;

use fei_net::CodecError;

/// Why a control-plane frame or command was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The peer speaks a different protocol or wire-codec version. Raised
    /// from the version byte leading every control payload and from the
    /// codec version carried by the join handshake — *before* any
    /// CRC-dependent parsing of the body.
    VersionMismatch {
        /// The version this endpoint speaks.
        expected: u8,
        /// The version the peer declared.
        found: u8,
    },
    /// The byte stream failed frame- or wire-level decoding (truncation,
    /// bad magic, checksum mismatch, malformed payload).
    Codec(CodecError),
    /// A frame type this protocol does not define.
    UnknownFrameType {
        /// The frame tag found.
        tag: u8,
    },
    /// A legal frame arrived in a state that has no transition for it
    /// (e.g. an `UpdateSubmit` while the coordinator is idle).
    UnexpectedFrame {
        /// The receiving state machine's current state.
        state: &'static str,
        /// The frame kind that had no transition.
        frame: &'static str,
    },
    /// The client is not registered (never joined, or was expired and
    /// removed). The participant-side recovery is to rejoin.
    UnknownClient {
        /// The client id carried by the frame.
        client: u64,
    },
    /// The client's heartbeat lease had expired when its frame arrived.
    /// Updates rejected with this error are never aggregated.
    ExpiredClient {
        /// The expired client id.
        client: u64,
    },
    /// The frame references a round other than the one in progress.
    WrongRound {
        /// The round the receiver is in.
        current: u64,
        /// The round the frame referenced.
        got: u64,
    },
    /// An update arrived from a client that was not selected this round.
    NotSelected {
        /// The unselected client id.
        client: u64,
    },
    /// A second update from the same client in the same round (duplicate
    /// delivery, or a retransmission racing its original).
    DuplicateUpdate {
        /// The client id that already submitted.
        client: u64,
    },
    /// A frame addressed to a different client reached this participant.
    WrongRecipient {
        /// This participant's client id.
        client: u64,
        /// The addressee in the frame.
        got: u64,
    },
    /// Too few live clients to satisfy the round quorum.
    QuorumLost {
        /// The round that could not proceed.
        round: u64,
        /// Live clients remaining.
        alive: usize,
        /// Quorum required.
        required: usize,
    },
    /// The frame belongs to a round the coordinator abandoned during crash
    /// recovery. The work it carried is already billed as wasted; the
    /// participant should await the next selection.
    Recovered {
        /// The recovery-aborted round the frame referenced.
        round: u64,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::VersionMismatch { expected, found } => {
                write!(f, "version mismatch: speak {expected}, peer sent {found}")
            }
            ProtoError::Codec(e) => write!(f, "codec failure: {e}"),
            ProtoError::UnknownFrameType { tag } => {
                write!(f, "unknown control frame tag {tag:#04x}")
            }
            ProtoError::UnexpectedFrame { state, frame } => {
                write!(f, "no transition for {frame} in state {state}")
            }
            ProtoError::UnknownClient { client } => {
                write!(f, "client {client} is not registered")
            }
            ProtoError::ExpiredClient { client } => {
                write!(f, "client {client}'s heartbeat lease expired")
            }
            ProtoError::WrongRound { current, got } => {
                write!(f, "frame for round {got} during round {current}")
            }
            ProtoError::NotSelected { client } => {
                write!(f, "client {client} was not selected this round")
            }
            ProtoError::DuplicateUpdate { client } => {
                write!(f, "client {client} already submitted this round")
            }
            ProtoError::WrongRecipient { client, got } => {
                write!(f, "frame for client {got} delivered to client {client}")
            }
            ProtoError::QuorumLost {
                round,
                alive,
                required,
            } => write!(
                f,
                "round {round}: {alive} live clients below quorum {required}"
            ),
            ProtoError::Recovered { round } => {
                write!(f, "round {round} was abandoned by crash recovery")
            }
        }
    }
}

impl Error for ProtoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProtoError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for ProtoError {
    fn from(e: CodecError) -> Self {
        ProtoError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(ProtoError, &str)> = vec![
            (
                ProtoError::VersionMismatch {
                    expected: 1,
                    found: 9,
                },
                "version mismatch",
            ),
            (ProtoError::UnknownFrameType { tag: 0x7F }, "0x7f"),
            (
                ProtoError::UnexpectedFrame {
                    state: "Idle",
                    frame: "UpdateSubmit",
                },
                "Idle",
            ),
            (ProtoError::ExpiredClient { client: 3 }, "expired"),
            (
                ProtoError::QuorumLost {
                    round: 2,
                    alive: 1,
                    required: 4,
                },
                "quorum",
            ),
            (ProtoError::Recovered { round: 5 }, "crash recovery"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} missing {needle:?}");
        }
    }

    #[test]
    fn codec_errors_convert_and_chain() {
        let err: ProtoError = CodecError::BadMagic.into();
        assert_eq!(err, ProtoError::Codec(CodecError::BadMagic));
        assert!(err.source().is_some());
        assert!(ProtoError::UnknownClient { client: 0 }.source().is_none());
    }
}
