//! Deterministic in-process protocol cluster.
//!
//! A [`Cluster`] wires one [`Coordinator`] to a fleet of [`Participant`]s
//! through two [`ChaosLink`]s (uplink and downlink) and drives everything
//! on a single virtual clock. All traffic crosses the links as encoded
//! wire frames — the same bytes a real deployment would ship — so chaos
//! (drops, duplicates, reordering, corruption) hits the protocol exactly
//! where a lossy network would.
//!
//! The cluster also audits the protocol from outside:
//!
//! * **liveness** — the run either closes its target number of rounds
//!   (each committed or aborted) or reports itself `stuck`;
//! * **safety** — an independent shadow of every heartbeat actually
//!   delivered to the coordinator cross-checks each commit: an accepted
//!   client whose lease had lapsed is counted as a
//!   [`ClusterReport::safety_violations`].

use std::collections::BTreeMap;

use crate::chaos::{ChaosConfig, ChaosLink, ChaosStats, Envelope, COORDINATOR_ADDR};
use crate::coordinator::{ControlStats, Coordinator, CoordinatorConfig, Effect, Phase};
use crate::error::ProtoError;
use crate::frames::ControlFrame;
use crate::participant::{Participant, ParticipantConfig, ParticipantStats};

/// Full description of one cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Coordinator protocol parameters.
    pub coordinator: CoordinatorConfig,
    /// The participant fleet (client ids should be unique).
    pub participants: Vec<ParticipantConfig>,
    /// Chaos profile of the participant → coordinator direction.
    pub uplink: ChaosConfig,
    /// Chaos profile of the coordinator → participant direction.
    pub downlink: ChaosConfig,
    /// Rounds to close (committed or aborted) before the run ends.
    pub target_rounds: u64,
    /// Tick budget; hitting it before the target marks the run stuck.
    pub max_ticks: u64,
    /// Global-model payload shipped in selection notices.
    pub global_payload: Vec<u8>,
}

impl ClusterConfig {
    /// A quiet-network cluster of `n` well-behaved participants.
    pub fn quiet(coordinator: CoordinatorConfig, n: u64, target_rounds: u64) -> Self {
        Self {
            coordinator,
            participants: (0..n).map(|c| ParticipantConfig::new(c, 3)).collect(),
            uplink: ChaosConfig::quiet(1),
            downlink: ChaosConfig::quiet(2),
            target_rounds,
            max_ticks: 10_000,
            global_payload: vec![0xAB; 64],
        }
    }
}

/// One closed round as the cluster observed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundVerdict {
    /// The round number.
    pub round: u64,
    /// Whether it committed (false = aborted).
    pub committed: bool,
    /// Accepted clients (empty on abort), ascending.
    pub accepted: Vec<u64>,
    /// Tick the verdict landed.
    pub closed_at: u64,
}

/// What one cluster run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Rounds that committed.
    pub committed: u64,
    /// Rounds that aborted.
    pub aborted: u64,
    /// Ticks consumed.
    pub ticks: u64,
    /// True when the tick budget ran out before the round target — a
    /// liveness failure.
    pub stuck: bool,
    /// Commits that accepted a client whose delivered-heartbeat shadow had
    /// lapsed — a safety failure. Must be zero.
    pub safety_violations: u64,
    /// `(round, alive)` fleet-shrink events, in emission order — each is a
    /// cue for the driver to re-plan `(K*, E*)` for the surviving fleet.
    pub replan_events: Vec<(u64, usize)>,
    /// Chronological verdict log.
    pub round_log: Vec<RoundVerdict>,
    /// Uplink misbehaviour counters.
    pub uplink: ChaosStats,
    /// Downlink misbehaviour counters.
    pub downlink: ChaosStats,
    /// Control bytes offered upstream (pre-chaos, sender-side).
    pub control_bytes_up: u64,
    /// Control bytes offered downstream (pre-chaos, sender-side).
    pub control_bytes_down: u64,
    /// Coordinator traffic counters.
    pub coordinator: ControlStats,
    /// Per-participant traffic counters, in fleet order.
    pub participants: Vec<ParticipantStats>,
}

impl ClusterReport {
    /// Whether every targeted round closed within the tick budget.
    pub fn liveness_ok(&self) -> bool {
        !self.stuck
    }

    /// Whether no expired client's update was ever aggregated.
    pub fn safety_ok(&self) -> bool {
        self.safety_violations == 0
    }

    /// Total control-plane bytes offered to the wire, both directions.
    pub fn control_bytes(&self) -> u64 {
        self.control_bytes_up + self.control_bytes_down
    }
}

/// The in-process cluster driver.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    coordinator: Coordinator,
    participants: Vec<Participant>,
    uplink: ChaosLink,
    downlink: ChaosLink,
    /// Independent record of the last tick each client's join/heartbeat was
    /// actually *delivered* to the coordinator — the safety cross-check.
    shadow_beat: BTreeMap<u64, u64>,
    report: ClusterReport,
}

impl Cluster {
    /// Builds a cluster; nothing runs until [`Cluster::run`].
    pub fn new(config: ClusterConfig) -> Self {
        let mut coordinator = Coordinator::new(config.coordinator.clone());
        coordinator.set_global(config.global_payload.clone());
        let participants: Vec<Participant> = config
            .participants
            .iter()
            .map(|p| Participant::new(p.clone()))
            .collect();
        let report = ClusterReport {
            committed: 0,
            aborted: 0,
            ticks: 0,
            stuck: false,
            safety_violations: 0,
            replan_events: Vec::new(),
            round_log: Vec::new(),
            uplink: ChaosStats::default(),
            downlink: ChaosStats::default(),
            control_bytes_up: 0,
            control_bytes_down: 0,
            coordinator: ControlStats::default(),
            participants: Vec::new(),
        };
        Self {
            uplink: ChaosLink::new(config.uplink),
            downlink: ChaosLink::new(config.downlink),
            config,
            coordinator,
            participants,
            shadow_beat: BTreeMap::new(),
            report,
        }
    }

    /// Runs the cluster to its round target (or tick budget) and reports.
    pub fn run(mut self) -> ClusterReport {
        self.coordinator
            .open_rendezvous()
            .expect("invariant: a fresh coordinator is idle");
        let mut inbox: Vec<Envelope> = Vec::new();
        // Tick 0: the whole fleet fires its join handshake.
        for i in 0..self.participants.len() {
            let join = self.participants[i].start(0);
            self.send_up(join, &mut inbox);
        }
        let mut tick = 0;
        while tick < self.config.max_ticks {
            // 1. Participants act on the current tick.
            for i in 0..self.participants.len() {
                for frame in self.participants[i].tick(tick) {
                    self.send_up(frame, &mut inbox);
                }
            }
            self.uplink.drain(&mut inbox);
            // 2. Deliver upstream traffic to the coordinator.
            let deliveries = std::mem::take(&mut inbox);
            let mut outbox: Vec<Envelope> = Vec::new();
            for envelope in deliveries {
                self.deliver_up(envelope, tick, &mut inbox, &mut outbox);
            }
            // 3. Open the next round whenever the coordinator is between
            //    rounds and the target is still ahead.
            if self.rounds_closed() < self.config.target_rounds
                && matches!(
                    self.coordinator.phase(),
                    Phase::Rendezvous | Phase::RoundClosed
                )
            {
                // Quorum not yet live (joins still in flight, or the fleet
                // shrank): wait a tick and retry. The phase gate above makes
                // any other rejection impossible, so it is safe to wait on
                // those too rather than panic.
                if let Ok(effects) = self.coordinator.start_round(tick) {
                    self.absorb(effects, tick, &mut outbox);
                }
            }
            // 4. Advance the coordinator clock: expiry, collapse, deadline.
            let effects = self.coordinator.tick(tick);
            self.absorb(effects, tick, &mut outbox);
            // 5. Deliver downstream traffic.
            self.downlink.drain(&mut outbox);
            for envelope in outbox {
                self.deliver_down(envelope, tick);
            }
            self.report.ticks = tick + 1;
            if self.rounds_closed() >= self.config.target_rounds {
                break;
            }
            tick += 1;
        }
        self.report.stuck = self.rounds_closed() < self.config.target_rounds;
        self.report.uplink = self.uplink.stats();
        self.report.downlink = self.downlink.stats();
        self.report.coordinator = self.coordinator.stats();
        self.report.participants = self.participants.iter().map(|p| p.stats()).collect();
        self.report
    }

    fn rounds_closed(&self) -> u64 {
        self.report.committed + self.report.aborted
    }

    /// Encodes and offers one upstream frame to the uplink, charging its
    /// bytes at the sender (duplicates are the network's doing, not the
    /// device's radio).
    fn send_up(&mut self, frame: ControlFrame, inbox: &mut Vec<Envelope>) {
        let bytes = frame.encode();
        self.report.control_bytes_up += bytes.len() as u64;
        self.uplink.push(
            Envelope {
                to: COORDINATOR_ADDR,
                bytes,
            },
            inbox,
        );
    }

    /// Delivers one upstream envelope to the coordinator, maintaining the
    /// shadow liveness record and bouncing unknown clients into a rejoin.
    fn deliver_up(
        &mut self,
        envelope: Envelope,
        tick: u64,
        inbox: &mut Vec<Envelope>,
        outbox: &mut Vec<Envelope>,
    ) {
        // Shadow the liveness-bearing frames *as delivered*, independently
        // of the coordinator's own bookkeeping.
        if let Ok((
            ControlFrame::JoinRequest { client, .. } | ControlFrame::Heartbeat { client, .. },
            _,
        )) = ControlFrame::decode(&envelope.bytes)
        {
            let entry = self.shadow_beat.entry(client).or_insert(tick);
            *entry = (*entry).max(tick);
        }
        match self.coordinator.handle_frame(&envelope.bytes, tick) {
            Ok(effects) => self.absorb(effects, tick, outbox),
            // A heartbeat from a client the coordinator already expired:
            // the driver kicks that participant back into the handshake.
            Err(ProtoError::UnknownClient { client }) => {
                if let Some(i) = self.participant_index(client) {
                    let rejoin = self.participants[i].start(tick);
                    self.send_up(rejoin, inbox);
                }
            }
            // Everything else — corrupted frames, stale rounds, duplicate
            // or expired submissions — is a typed rejection the protocol
            // absorbs by design.
            Err(_) => {}
        }
    }

    /// Routes one downstream envelope to its participant.
    fn deliver_down(&mut self, envelope: Envelope, tick: u64) {
        if let Some(i) = self.participant_index(envelope.to) {
            // Typed rejections (corruption, stale rounds, misroutes) are
            // absorbed; responses flow out on the next tick.
            let _ = self.participants[i].handle_frame(&envelope.bytes, tick);
        }
    }

    fn participant_index(&self, client: u64) -> Option<usize> {
        self.participants.iter().position(|p| p.client() == client)
    }

    /// Folds coordinator effects into the report and the downlink.
    fn absorb(&mut self, effects: Vec<Effect>, tick: u64, outbox: &mut Vec<Envelope>) {
        for effect in effects {
            match effect {
                Effect::Send { to, frame } => {
                    let bytes = frame.encode();
                    self.report.control_bytes_down += bytes.len() as u64;
                    self.downlink.push(Envelope { to, bytes }, outbox);
                }
                Effect::RoundCommitted { round, accepted } => {
                    self.audit_commit(&accepted, tick);
                    self.report.committed += 1;
                    self.report.round_log.push(RoundVerdict {
                        round,
                        committed: true,
                        accepted,
                        closed_at: tick,
                    });
                }
                Effect::RoundAborted { round, .. } => {
                    self.report.aborted += 1;
                    self.report.round_log.push(RoundVerdict {
                        round,
                        committed: false,
                        accepted: Vec::new(),
                        closed_at: tick,
                    });
                }
                Effect::FleetShrunk { round, alive } => {
                    self.report.replan_events.push((round, alive));
                }
            }
        }
    }

    /// The independent safety audit: every accepted client must have had a
    /// join or heartbeat *delivered* within the lease window ending at the
    /// commit tick.
    fn audit_commit(&mut self, accepted: &[u64], tick: u64) {
        let timeout = self.config.coordinator.heartbeat_timeout;
        for client in accepted {
            let live = self
                .shadow_beat
                .get(client)
                .is_some_and(|&last| tick.saturating_sub(last) < timeout);
            if !live {
                self.report.safety_violations += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coordinator_config() -> CoordinatorConfig {
        CoordinatorConfig {
            k: 2,
            over_select: 1,
            quorum: 2,
            epochs: 5,
            heartbeat_interval: 5,
            heartbeat_timeout: 20,
            round_deadline: 40,
        }
    }

    #[test]
    fn quiet_cluster_commits_every_round() {
        let report = Cluster::new(ClusterConfig::quiet(coordinator_config(), 4, 5)).run();
        assert!(report.liveness_ok(), "{report:?}");
        assert!(report.safety_ok(), "{report:?}");
        assert_eq!(report.committed, 5);
        assert_eq!(report.aborted, 0);
        for verdict in &report.round_log {
            assert_eq!(verdict.accepted.len(), 2, "K = 2 winners per round");
        }
        assert!(report.control_bytes() > 0);
    }

    #[test]
    fn quiet_cluster_is_deterministic() {
        let a = Cluster::new(ClusterConfig::quiet(coordinator_config(), 4, 5)).run();
        let b = Cluster::new(ClusterConfig::quiet(coordinator_config(), 4, 5)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn chaotic_cluster_still_closes_every_round() {
        let chaos = ChaosConfig {
            drop_prob: 0.1,
            dup_prob: 0.1,
            reorder_prob: 0.1,
            corrupt_prob: 0.05,
            seed: 42,
        };
        let mut config = ClusterConfig::quiet(coordinator_config(), 5, 8);
        config.uplink = chaos;
        config.downlink = ChaosConfig { seed: 43, ..chaos };
        let report = Cluster::new(config).run();
        assert!(report.liveness_ok(), "{report:?}");
        assert!(report.safety_ok(), "{report:?}");
        assert_eq!(report.committed + report.aborted, 8);
    }

    #[test]
    fn muted_participants_are_never_aggregated_after_expiry() {
        // Three honest clients and two that never heartbeat: the mutes'
        // leases lapse 20 ticks after joining, while the round deadline is
        // 40 — any update of theirs buffered early must be voided.
        let mut config = ClusterConfig::quiet(coordinator_config(), 3, 6);
        for client in [3u64, 4] {
            config.participants.push(ParticipantConfig {
                mute_heartbeats: true,
                ..ParticipantConfig::new(client, 3)
            });
        }
        config.max_ticks = 5_000;
        let report = Cluster::new(config).run();
        assert!(report.safety_ok(), "{report:?}");
        assert!(report.liveness_ok(), "{report:?}");
        // After the mutes expire, later commits only ever accept 0..=2.
        let last = report.round_log.last().expect("rounds closed");
        assert!(last.accepted.iter().all(|&c| c < 3), "{report:?}");
    }

    #[test]
    fn fleet_shrink_emits_replan_cues() {
        // K = 3 but only 2 participants ever join: every round opens with
        // a shrunken fleet and cues a re-plan.
        let config = CoordinatorConfig {
            k: 3,
            over_select: 0,
            quorum: 2,
            epochs: 5,
            heartbeat_interval: 5,
            heartbeat_timeout: 20,
            round_deadline: 40,
        };
        let report = Cluster::new(ClusterConfig::quiet(config, 2, 3)).run();
        assert!(report.liveness_ok(), "{report:?}");
        assert!(!report.replan_events.is_empty());
        assert!(report.replan_events.iter().all(|&(_, alive)| alive == 2));
    }
}
