//! Deterministic in-process protocol cluster.
//!
//! A [`Cluster`] wires one [`Coordinator`] to a fleet of [`Participant`]s
//! through two [`ChaosLink`]s (uplink and downlink) and drives everything
//! on a single virtual clock. All traffic crosses the links as encoded
//! wire frames — the same bytes a real deployment would ship — so chaos
//! (drops, duplicates, reordering, corruption) hits the protocol exactly
//! where a lossy network would.
//!
//! The cluster also audits the protocol from outside:
//!
//! * **liveness** — the run either closes its target number of rounds
//!   (each committed or aborted) or reports itself `stuck`;
//! * **safety** — an independent shadow of every heartbeat actually
//!   delivered to the coordinator cross-checks each commit: an accepted
//!   client whose lease had lapsed is counted as a
//!   [`ClusterReport::safety_violations`];
//! * **crash-recovery** — scheduled [`CoordinatorCrash`] events kill the
//!   coordinator (keeping only its durable journal bytes) and restart it
//!   via [`Coordinator::recover`]; the audit then also checks that no
//!   update is ever aggregated twice across a restart
//!   ([`ClusterReport::double_aggregations`]) and that every round open at
//!   a crash commits or aborts within one recovery budget of the restart
//!   ([`ClusterReport::recovery_violations`]).

use std::collections::{BTreeMap, BTreeSet};

use crate::chaos::{ChaosConfig, ChaosLink, ChaosStats, Envelope, COORDINATOR_ADDR};
use crate::coordinator::{ControlStats, Coordinator, CoordinatorConfig, Effect, Phase};
use crate::error::ProtoError;
use crate::frames::{AbortReason, ControlFrame};
use crate::participant::{Participant, ParticipantConfig, ParticipantStats};

/// One scheduled coordinator failure: the process dies at `at_tick`
/// (losing all volatile state; only the journal bytes survive) and
/// restarts `down_ticks` later via [`Coordinator::recover`].
///
/// Crash ticks landing while the coordinator is already down are skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordinatorCrash {
    /// Tick the coordinator dies.
    pub at_tick: u64,
    /// Ticks of downtime before the restart (minimum 1).
    pub down_ticks: u64,
}

/// Full description of one cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Coordinator protocol parameters.
    pub coordinator: CoordinatorConfig,
    /// The participant fleet (client ids should be unique).
    pub participants: Vec<ParticipantConfig>,
    /// Chaos profile of the participant → coordinator direction.
    pub uplink: ChaosConfig,
    /// Chaos profile of the coordinator → participant direction.
    pub downlink: ChaosConfig,
    /// Rounds to close (committed or aborted) before the run ends.
    pub target_rounds: u64,
    /// Tick budget; hitting it before the target marks the run stuck.
    pub max_ticks: u64,
    /// Global-model payload shipped in selection notices.
    pub global_payload: Vec<u8>,
    /// Scheduled coordinator kill/restart events, in tick order.
    pub crashes: Vec<CoordinatorCrash>,
}

impl ClusterConfig {
    /// A quiet-network cluster of `n` well-behaved participants.
    pub fn quiet(coordinator: CoordinatorConfig, n: u64, target_rounds: u64) -> Self {
        Self {
            coordinator,
            participants: (0..n).map(|c| ParticipantConfig::new(c, 3)).collect(),
            uplink: ChaosConfig::quiet(1),
            downlink: ChaosConfig::quiet(2),
            target_rounds,
            max_ticks: 10_000,
            global_payload: vec![0xAB; 64],
            crashes: Vec::new(),
        }
    }
}

/// One closed round as the cluster observed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundVerdict {
    /// The round number.
    pub round: u64,
    /// Whether it committed (false = aborted).
    pub committed: bool,
    /// Accepted clients (empty on abort), ascending.
    pub accepted: Vec<u64>,
    /// Tick the verdict landed.
    pub closed_at: u64,
    /// Why it aborted (`None` on commit).
    pub reason: Option<AbortReason>,
}

/// What one cluster run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Rounds that committed.
    pub committed: u64,
    /// Rounds that aborted.
    pub aborted: u64,
    /// Ticks consumed.
    pub ticks: u64,
    /// True when the tick budget ran out before the round target — a
    /// liveness failure.
    pub stuck: bool,
    /// Commits that accepted a client whose delivered-heartbeat shadow had
    /// lapsed — a safety failure. Must be zero.
    pub safety_violations: u64,
    /// Coordinator crashes actually executed (scheduled crashes landing
    /// during downtime are skipped).
    pub coordinator_crashes: u64,
    /// Rounds open at a crash that failed to commit or abort within one
    /// `round_deadline` of the restart — a recovery-liveness failure. Must
    /// be zero.
    pub recovery_violations: u64,
    /// `(round, client)` pairs aggregated more than once, or rounds
    /// committed twice, across restarts — a recovery-safety failure. Must
    /// be zero.
    pub double_aggregations: u64,
    /// `(round, alive)` fleet-shrink events, in emission order — each is a
    /// cue for the driver to re-plan `(K*, E*)` for the surviving fleet.
    pub replan_events: Vec<(u64, usize)>,
    /// Chronological verdict log.
    pub round_log: Vec<RoundVerdict>,
    /// Uplink misbehaviour counters.
    pub uplink: ChaosStats,
    /// Downlink misbehaviour counters.
    pub downlink: ChaosStats,
    /// Control bytes offered upstream (pre-chaos, sender-side).
    pub control_bytes_up: u64,
    /// Control bytes offered downstream (pre-chaos, sender-side).
    pub control_bytes_down: u64,
    /// Coordinator traffic counters.
    pub coordinator: ControlStats,
    /// Per-participant traffic counters, in fleet order.
    pub participants: Vec<ParticipantStats>,
}

impl ClusterReport {
    /// Whether every targeted round closed within the tick budget.
    pub fn liveness_ok(&self) -> bool {
        !self.stuck
    }

    /// Whether no expired client's update was ever aggregated.
    pub fn safety_ok(&self) -> bool {
        self.safety_violations == 0
    }

    /// Whether every crash recovered cleanly: no double aggregation, and
    /// every pre-crash round settled within the recovery budget.
    pub fn recovery_ok(&self) -> bool {
        self.recovery_violations == 0 && self.double_aggregations == 0
    }

    /// Total control-plane bytes offered to the wire, both directions.
    pub fn control_bytes(&self) -> u64 {
        self.control_bytes_up + self.control_bytes_down
    }
}

/// The in-process cluster driver.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    coordinator: Coordinator,
    participants: Vec<Participant>,
    uplink: ChaosLink,
    downlink: ChaosLink,
    /// Independent record of the last tick each client's join/heartbeat was
    /// actually *delivered* to the coordinator — the safety cross-check.
    shadow_beat: BTreeMap<u64, u64>,
    /// `(round, client)` pairs already aggregated — the double-aggregation
    /// cross-check across restarts.
    aggregated: BTreeSet<(u64, u64)>,
    /// Round numbers already committed — no round may commit twice.
    committed_rounds: BTreeSet<u64>,
    /// Counters from pre-crash coordinator incarnations, folded into the
    /// final report alongside the live instance's stats.
    stats_carry: ControlStats,
    /// `(round, settle_by)` recovery budget for the round that was open at
    /// the most recent crash; cleared when its verdict lands in time.
    recovery_watch: Option<(u64, u64)>,
    report: ClusterReport,
}

impl Cluster {
    /// Builds a cluster; nothing runs until [`Cluster::run`].
    pub fn new(config: ClusterConfig) -> Self {
        let mut coordinator = Coordinator::new(config.coordinator.clone());
        coordinator.set_global(config.global_payload.clone());
        let participants: Vec<Participant> = config
            .participants
            .iter()
            .map(|p| Participant::new(p.clone()))
            .collect();
        let report = ClusterReport {
            committed: 0,
            aborted: 0,
            ticks: 0,
            stuck: false,
            safety_violations: 0,
            coordinator_crashes: 0,
            recovery_violations: 0,
            double_aggregations: 0,
            replan_events: Vec::new(),
            round_log: Vec::new(),
            uplink: ChaosStats::default(),
            downlink: ChaosStats::default(),
            control_bytes_up: 0,
            control_bytes_down: 0,
            coordinator: ControlStats::default(),
            participants: Vec::new(),
        };
        Self {
            uplink: ChaosLink::new(config.uplink),
            downlink: ChaosLink::new(config.downlink),
            config,
            coordinator,
            participants,
            shadow_beat: BTreeMap::new(),
            aggregated: BTreeSet::new(),
            committed_rounds: BTreeSet::new(),
            stats_carry: ControlStats::default(),
            recovery_watch: None,
            report,
        }
    }

    /// Runs the cluster to its round target (or tick budget) and reports.
    pub fn run(mut self) -> ClusterReport {
        self.coordinator
            .open_rendezvous()
            .expect("invariant: a fresh coordinator is idle");
        let mut crashes = self.config.crashes.clone();
        crashes.sort_by_key(|c| c.at_tick);
        let mut next_crash = 0usize;
        let mut outage: Option<Outage> = None;
        let mut inbox: Vec<Envelope> = Vec::new();
        // Tick 0: the whole fleet fires its join handshake.
        for i in 0..self.participants.len() {
            let join = self.participants[i].start(0);
            self.send_up(join, &mut inbox);
        }
        let mut tick = 0;
        while tick < self.config.max_ticks {
            let mut outbox: Vec<Envelope> = Vec::new();
            // 0a. Restart a downed coordinator once its outage has elapsed:
            //     recover from the surviving journal bytes.
            if outage.as_ref().is_some_and(|o| tick >= o.restart) {
                let o = outage.take().expect("invariant: checked above");
                self.restart_coordinator(&o, tick, &mut outbox);
            }
            // 0b. Kill the coordinator at its scheduled crash tick. Only
            //     the durable journal bytes survive; crashes scheduled
            //     while it is already down are skipped.
            while next_crash < crashes.len() && crashes[next_crash].at_tick <= tick {
                let crash = crashes[next_crash];
                next_crash += 1;
                if outage.is_some() || crash.at_tick < tick {
                    continue;
                }
                let open_round =
                    matches!(self.coordinator.phase(), Phase::Selected | Phase::Training)
                        .then(|| self.coordinator.round());
                self.stats_carry.absorb(self.coordinator.stats());
                outage = Some(Outage {
                    restart: tick + crash.down_ticks.max(1),
                    crash_tick: tick,
                    journal: self.coordinator.journal().bytes().to_vec(),
                    open_round,
                });
                self.report.coordinator_crashes += 1;
            }
            // 1. Participants act on the current tick.
            for i in 0..self.participants.len() {
                for frame in self.participants[i].tick(tick) {
                    self.send_up(frame, &mut inbox);
                }
            }
            self.uplink.drain(&mut inbox);
            // 2. Deliver upstream traffic to the coordinator. While it is
            //    down, delivered frames are lost on the floor — and they do
            //    not count as shadow beats either.
            let deliveries = std::mem::take(&mut inbox);
            if outage.is_none() {
                for envelope in deliveries {
                    self.deliver_up(envelope, tick, &mut inbox, &mut outbox);
                }
                // 3. Open the next round whenever the coordinator is between
                //    rounds and the target is still ahead.
                if self.rounds_closed() < self.config.target_rounds
                    && matches!(
                        self.coordinator.phase(),
                        Phase::Rendezvous | Phase::RoundClosed
                    )
                {
                    // Quorum not yet live (joins still in flight, or the
                    // fleet shrank): wait a tick and retry. The phase gate
                    // above makes any other rejection impossible, so it is
                    // safe to wait on those too rather than panic.
                    if let Ok(effects) = self.coordinator.start_round(tick) {
                        self.absorb(effects, tick, &mut outbox);
                    }
                }
                // 4. Advance the coordinator clock: expiry, collapse,
                //    deadline.
                let effects = self.coordinator.tick(tick);
                self.absorb(effects, tick, &mut outbox);
            }
            // 5. Deliver downstream traffic (frames already in flight keep
            //    arriving even while the coordinator is down).
            self.downlink.drain(&mut outbox);
            for envelope in outbox {
                self.deliver_down(envelope, tick, &mut inbox);
            }
            self.report.ticks = tick + 1;
            if self.rounds_closed() >= self.config.target_rounds {
                break;
            }
            tick += 1;
        }
        self.report.stuck = self.rounds_closed() < self.config.target_rounds;
        // A pre-crash round that never settled within its budget is a
        // recovery-liveness failure (only judged once the budget elapsed).
        if let Some((_, settle_by)) = self.recovery_watch {
            if self.report.ticks > settle_by {
                self.report.recovery_violations += 1;
            }
        }
        self.report.uplink = self.uplink.stats();
        self.report.downlink = self.downlink.stats();
        let mut stats = self.stats_carry;
        stats.absorb(self.coordinator.stats());
        self.report.coordinator = stats;
        self.report.participants = self.participants.iter().map(|p| p.stats()).collect();
        self.report
    }

    /// Rebuilds the coordinator from durable journal bytes and re-syncs the
    /// shadow audit with the recovered leases.
    fn restart_coordinator(&mut self, outage: &Outage, tick: u64, outbox: &mut Vec<Envelope>) {
        let (coordinator, effects) =
            Coordinator::recover(self.config.coordinator.clone(), &outage.journal, tick)
                .expect("invariant: our own journal bytes replay cleanly");
        self.coordinator = coordinator;
        self.coordinator
            .set_global(self.config.global_payload.clone());
        // Recovery re-arms every surviving roster lease at the restart
        // tick; grant the shadow the same grace — but only to clients whose
        // shadow lease had not already lapsed when the crash hit.
        let timeout = self.config.coordinator.heartbeat_timeout;
        for last in self.shadow_beat.values_mut() {
            if outage.crash_tick.saturating_sub(*last) < timeout {
                *last = (*last).max(tick);
            }
        }
        // The round open at the crash must settle within one deadline
        // budget of the restart, whether it resumes or aborts.
        if let Some(round) = outage.open_round {
            self.recovery_watch = Some((round, tick + self.config.coordinator.round_deadline));
        }
        self.absorb(effects, tick, outbox);
    }

    fn rounds_closed(&self) -> u64 {
        self.report.committed + self.report.aborted
    }

    /// Encodes and offers one upstream frame to the uplink, charging its
    /// bytes at the sender (duplicates are the network's doing, not the
    /// device's radio).
    fn send_up(&mut self, frame: ControlFrame, inbox: &mut Vec<Envelope>) {
        let bytes = frame.encode();
        self.report.control_bytes_up += bytes.len() as u64;
        self.uplink.push(
            Envelope {
                to: COORDINATOR_ADDR,
                bytes,
            },
            inbox,
        );
    }

    /// Delivers one upstream envelope to the coordinator, maintaining the
    /// shadow liveness record and bouncing unknown clients into a rejoin.
    fn deliver_up(
        &mut self,
        envelope: Envelope,
        tick: u64,
        inbox: &mut Vec<Envelope>,
        outbox: &mut Vec<Envelope>,
    ) {
        // Shadow the liveness-bearing frames *as delivered*, independently
        // of the coordinator's own bookkeeping.
        if let Ok((
            ControlFrame::JoinRequest { client, .. } | ControlFrame::Heartbeat { client, .. },
            _,
        )) = ControlFrame::decode(&envelope.bytes)
        {
            let entry = self.shadow_beat.entry(client).or_insert(tick);
            *entry = (*entry).max(tick);
        }
        match self.coordinator.handle_frame(&envelope.bytes, tick) {
            Ok(effects) => self.absorb(effects, tick, outbox),
            // A heartbeat from a client the coordinator already expired:
            // the driver kicks that participant back into the handshake.
            Err(ProtoError::UnknownClient { client }) => {
                if let Some(i) = self.participant_index(client) {
                    let rejoin = self.participants[i].start(tick);
                    self.send_up(rejoin, inbox);
                }
            }
            // Everything else — corrupted frames, stale rounds, duplicate
            // or expired submissions — is a typed rejection the protocol
            // absorbs by design.
            Err(_) => {}
        }
    }

    /// Routes one downstream envelope to its participant, pushing any
    /// response (resume requests, rejoin handshakes) back onto the uplink.
    fn deliver_down(&mut self, envelope: Envelope, tick: u64, inbox: &mut Vec<Envelope>) {
        if let Some(i) = self.participant_index(envelope.to) {
            // Typed rejections (corruption, stale rounds, misroutes) are
            // absorbed by the protocol.
            if let Ok(frames) = self.participants[i].handle_frame(&envelope.bytes, tick) {
                for frame in frames {
                    self.send_up(frame, inbox);
                }
            }
        }
    }

    fn participant_index(&self, client: u64) -> Option<usize> {
        self.participants.iter().position(|p| p.client() == client)
    }

    /// Folds coordinator effects into the report and the downlink.
    fn absorb(&mut self, effects: Vec<Effect>, tick: u64, outbox: &mut Vec<Envelope>) {
        for effect in effects {
            match effect {
                Effect::Send { to, frame } => {
                    let bytes = frame.encode();
                    self.report.control_bytes_down += bytes.len() as u64;
                    self.downlink.push(Envelope { to, bytes }, outbox);
                }
                Effect::RoundCommitted { round, accepted } => {
                    self.audit_commit(&accepted, tick);
                    self.audit_once(round, &accepted);
                    self.settle_recovery(round, tick);
                    self.report.committed += 1;
                    self.report.round_log.push(RoundVerdict {
                        round,
                        committed: true,
                        accepted,
                        closed_at: tick,
                        reason: None,
                    });
                }
                Effect::RoundAborted { round, reason } => {
                    self.settle_recovery(round, tick);
                    self.report.aborted += 1;
                    self.report.round_log.push(RoundVerdict {
                        round,
                        committed: false,
                        accepted: Vec::new(),
                        closed_at: tick,
                        reason: Some(reason),
                    });
                }
                Effect::FleetShrunk { round, alive } => {
                    self.report.replan_events.push((round, alive));
                }
            }
        }
    }

    /// The independent safety audit: every accepted client must have had a
    /// join or heartbeat *delivered* within the lease window ending at the
    /// commit tick.
    fn audit_commit(&mut self, accepted: &[u64], tick: u64) {
        let timeout = self.config.coordinator.heartbeat_timeout;
        for client in accepted {
            let live = self
                .shadow_beat
                .get(client)
                .is_some_and(|&last| tick.saturating_sub(last) < timeout);
            if !live {
                self.report.safety_violations += 1;
            }
        }
    }

    /// The recovery-safety audit: no round commits twice, and no
    /// `(round, client)` update is aggregated twice — even across restarts.
    fn audit_once(&mut self, round: u64, accepted: &[u64]) {
        if !self.committed_rounds.insert(round) {
            self.report.double_aggregations += 1;
        }
        for &client in accepted {
            if !self.aggregated.insert((round, client)) {
                self.report.double_aggregations += 1;
            }
        }
    }

    /// The recovery-liveness audit: a round open at a crash must settle
    /// (commit or abort) within one `round_deadline` of the restart.
    fn settle_recovery(&mut self, round: u64, tick: u64) {
        if let Some((watched, settle_by)) = self.recovery_watch {
            if watched == round {
                if tick > settle_by {
                    self.report.recovery_violations += 1;
                }
                self.recovery_watch = None;
            }
        }
    }
}

/// Volatile bookkeeping for one coordinator outage: what survives the
/// crash (the journal bytes) and when the process comes back.
#[derive(Debug)]
struct Outage {
    restart: u64,
    crash_tick: u64,
    journal: Vec<u8>,
    open_round: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coordinator_config() -> CoordinatorConfig {
        CoordinatorConfig {
            k: 2,
            over_select: 1,
            quorum: 2,
            epochs: 5,
            heartbeat_interval: 5,
            heartbeat_timeout: 20,
            round_deadline: 40,
        }
    }

    #[test]
    fn quiet_cluster_commits_every_round() {
        let report = Cluster::new(ClusterConfig::quiet(coordinator_config(), 4, 5)).run();
        assert!(report.liveness_ok(), "{report:?}");
        assert!(report.safety_ok(), "{report:?}");
        assert_eq!(report.committed, 5);
        assert_eq!(report.aborted, 0);
        for verdict in &report.round_log {
            assert_eq!(verdict.accepted.len(), 2, "K = 2 winners per round");
        }
        assert!(report.control_bytes() > 0);
    }

    #[test]
    fn quiet_cluster_is_deterministic() {
        let a = Cluster::new(ClusterConfig::quiet(coordinator_config(), 4, 5)).run();
        let b = Cluster::new(ClusterConfig::quiet(coordinator_config(), 4, 5)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn chaotic_cluster_still_closes_every_round() {
        let chaos = ChaosConfig {
            drop_prob: 0.1,
            dup_prob: 0.1,
            reorder_prob: 0.1,
            corrupt_prob: 0.05,
            seed: 42,
        };
        let mut config = ClusterConfig::quiet(coordinator_config(), 5, 8);
        config.uplink = chaos;
        config.downlink = ChaosConfig { seed: 43, ..chaos };
        let report = Cluster::new(config).run();
        assert!(report.liveness_ok(), "{report:?}");
        assert!(report.safety_ok(), "{report:?}");
        assert_eq!(report.committed + report.aborted, 8);
    }

    #[test]
    fn muted_participants_are_never_aggregated_after_expiry() {
        // Three honest clients and two that never heartbeat: the mutes'
        // leases lapse 20 ticks after joining, while the round deadline is
        // 40 — any update of theirs buffered early must be voided.
        let mut config = ClusterConfig::quiet(coordinator_config(), 3, 6);
        for client in [3u64, 4] {
            config.participants.push(ParticipantConfig {
                mute_heartbeats: true,
                ..ParticipantConfig::new(client, 3)
            });
        }
        config.max_ticks = 5_000;
        let report = Cluster::new(config).run();
        assert!(report.safety_ok(), "{report:?}");
        assert!(report.liveness_ok(), "{report:?}");
        // After the mutes expire, later commits only ever accept 0..=2.
        let last = report.round_log.last().expect("rounds closed");
        assert!(last.accepted.iter().all(|&c| c < 3), "{report:?}");
    }

    /// A quiet fleet whose training times are staggered, so uploads
    /// straggle in over several ticks and every round stays open long
    /// enough for a crash to land mid-round with updates buffered.
    fn staggered_config(target_rounds: u64) -> ClusterConfig {
        let mut config = ClusterConfig::quiet(coordinator_config(), 4, target_rounds);
        for (i, p) in config.participants.iter_mut().enumerate() {
            p.train_ticks = 2 + 4 * i as u64;
        }
        config
    }

    #[test]
    fn coordinator_crash_mid_round_recovers_live_and_safe() {
        let mut config = staggered_config(5);
        config.crashes = vec![CoordinatorCrash {
            at_tick: 5,
            down_ticks: 5,
        }];
        let report = Cluster::new(config).run();
        assert_eq!(report.coordinator_crashes, 1, "{report:?}");
        assert!(report.liveness_ok(), "{report:?}");
        assert!(report.safety_ok(), "{report:?}");
        assert!(report.recovery_ok(), "{report:?}");
        assert_eq!(report.committed + report.aborted, 5);
        // The fleet answered the restart's epoch notices with session
        // resumes, and the recovered coordinator accepted them.
        assert!(report.coordinator.resumes_accepted > 0, "{report:?}");
    }

    #[test]
    fn crash_runs_replay_bit_identically() {
        let build = || {
            let mut config = ClusterConfig::quiet(coordinator_config(), 4, 5);
            config.crashes = vec![
                CoordinatorCrash {
                    at_tick: 12,
                    down_ticks: 4,
                },
                CoordinatorCrash {
                    at_tick: 33,
                    down_ticks: 7,
                },
            ];
            config
        };
        let a = Cluster::new(build()).run();
        let b = Cluster::new(build()).run();
        assert_eq!(a, b);
    }

    #[test]
    fn crash_scheduled_during_downtime_is_skipped() {
        let mut config = staggered_config(5);
        config.crashes = vec![
            CoordinatorCrash {
                at_tick: 4,
                down_ticks: 10,
            },
            CoordinatorCrash {
                at_tick: 8,
                down_ticks: 10,
            },
        ];
        let report = Cluster::new(config).run();
        assert_eq!(report.coordinator_crashes, 1, "{report:?}");
        assert!(report.liveness_ok() && report.safety_ok() && report.recovery_ok());
    }

    #[test]
    fn long_outage_aborts_the_open_round_within_the_recovery_budget() {
        // The outage outlives the round deadline: the pre-crash round can
        // never resume, so recovery must abort it — and the run still
        // closes every remaining round.
        let mut config = staggered_config(4);
        config.crashes = vec![CoordinatorCrash {
            at_tick: 5,
            down_ticks: 60,
        }];
        let report = Cluster::new(config).run();
        assert!(report.liveness_ok(), "{report:?}");
        assert!(report.recovery_ok(), "{report:?}");
        let crash_aborts: Vec<_> = report
            .round_log
            .iter()
            .filter(|v| v.reason == Some(AbortReason::CoordinatorCrash))
            .collect();
        assert_eq!(crash_aborts.len(), 1, "{report:?}");
        assert_eq!(report.coordinator.aborts.coordinator_crash, 1);
        // The abandoned round's buffered uploads are billed as waste.
        assert!(report.coordinator.wasted_update_bytes > 0, "{report:?}");
    }

    #[test]
    fn chaotic_cluster_survives_coordinator_crashes() {
        let chaos = ChaosConfig {
            drop_prob: 0.1,
            dup_prob: 0.1,
            reorder_prob: 0.1,
            corrupt_prob: 0.05,
            seed: 42,
        };
        let mut config = ClusterConfig::quiet(coordinator_config(), 5, 8);
        config.uplink = chaos;
        config.downlink = ChaosConfig { seed: 43, ..chaos };
        config.crashes = vec![
            CoordinatorCrash {
                at_tick: 18,
                down_ticks: 6,
            },
            CoordinatorCrash {
                at_tick: 90,
                down_ticks: 12,
            },
        ];
        let report = Cluster::new(config).run();
        assert!(report.liveness_ok(), "{report:?}");
        assert!(report.safety_ok(), "{report:?}");
        assert!(report.recovery_ok(), "{report:?}");
        assert_eq!(report.committed + report.aborted, 8);
    }

    #[test]
    fn fleet_shrink_emits_replan_cues() {
        // K = 3 but only 2 participants ever join: every round opens with
        // a shrunken fleet and cues a re-plan.
        let config = CoordinatorConfig {
            k: 3,
            over_select: 0,
            quorum: 2,
            epochs: 5,
            heartbeat_interval: 5,
            heartbeat_timeout: 20,
            round_deadline: 40,
        };
        let report = Cluster::new(ClusterConfig::quiet(config, 2, 3)).run();
        assert!(report.liveness_ok(), "{report:?}");
        assert!(!report.replan_events.is_empty());
        assert!(report.replan_events.iter().all(|&(_, alive)| alive == 2));
    }
}
