//! The frame-driven coordinator state machine.
//!
//! An event-driven coordinator that speaks **only** control-plane frames
//! ([`crate::ControlFrame`]) and advances through
//! `Idle → Rendezvous → Selected → Training → Aggregating → RoundClosed`.
//! It owns no transport and no clock: drivers push decoded byte frames via
//! [`Coordinator::handle_frame`] and advance virtual time via
//! [`Coordinator::tick`]; the machine answers with [`Effect`]s (frames to
//! send, rounds committed or aborted, re-plan hooks). Identical inputs
//! produce identical outputs — the chaos campaign leans on that to replay
//! fault schedules bit-for-bit.
//!
//! Robustness contract:
//!
//! * **liveness** — every opened round reaches `RoundClosed` by its
//!   deadline tick at the latest, committing a quorum-satisfying partial
//!   set or aborting;
//! * **safety** — an update from a client whose heartbeat lease has
//!   expired is never aggregated: late submissions are rejected with
//!   [`ProtoError::ExpiredClient`], and buffered updates are discarded the
//!   moment their sender expires.

use std::collections::{BTreeMap, BTreeSet};

use fei_net::wire::WIRE_VERSION;

use crate::error::ProtoError;
use crate::frames::{update_submit_frame_len, AbortReason, ControlFrame};
use crate::journal::{JournalRecord, JournalState, RoundJournal};
use crate::liveness::LivenessTracker;
use crate::round::{first_k_by_arrival, RoundPolicy};

/// Protocol states of the coordinator (and mirrored by participants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Not yet accepting anyone.
    Idle,
    /// Accepting joins; no round open.
    Rendezvous,
    /// Selection notices sent; waiting for the first update.
    Selected,
    /// At least one update arrived; collecting the rest.
    Training,
    /// Ranking arrivals and deciding commit-or-abort (transient).
    Aggregating,
    /// The round ended; ready to open the next.
    RoundClosed,
}

impl Phase {
    /// Human-readable state name, used in typed rejections.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Idle => "Idle",
            Phase::Rendezvous => "Rendezvous",
            Phase::Selected => "Selected",
            Phase::Training => "Training",
            Phase::Aggregating => "Aggregating",
            Phase::RoundClosed => "RoundClosed",
        }
    }
}

/// Static configuration of a coordinator.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinatorConfig {
    /// Updates aggregated per round (`K`).
    pub k: usize,
    /// Extra selections beyond `K` as a dropout hedge.
    pub over_select: usize,
    /// Minimum aggregated updates for a round to commit.
    pub quorum: usize,
    /// Local epochs announced in selection notices.
    pub epochs: u32,
    /// Ticks between heartbeats participants must send.
    pub heartbeat_interval: u64,
    /// Silent ticks after which a participant is expired.
    pub heartbeat_timeout: u64,
    /// Ticks from round open to the submission deadline.
    pub round_deadline: u64,
}

impl CoordinatorConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when `k` or `quorum` is zero, the quorum exceeds what
    /// selection can deliver, the heartbeat contract is degenerate
    /// (zero interval/timeout, or a timeout not beyond the interval), or
    /// the round deadline is zero.
    pub fn validated(self) -> Self {
        assert!(self.k > 0, "K must be at least 1");
        assert!(self.quorum > 0, "quorum must be at least 1");
        assert!(
            self.quorum <= self.k + self.over_select,
            "quorum {} cannot exceed the selection width {}",
            self.quorum,
            self.k + self.over_select
        );
        assert!(
            self.heartbeat_interval > 0,
            "heartbeat interval must be positive"
        );
        assert!(
            self.heartbeat_timeout > self.heartbeat_interval,
            "heartbeat timeout must exceed the interval, or every client flaps"
        );
        assert!(self.round_deadline > 0, "round deadline must be positive");
        self
    }
}

/// What the coordinator asks its driver to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Send `frame` to client `to`.
    Send {
        /// Destination client id.
        to: u64,
        /// The frame to deliver.
        frame: ControlFrame,
    },
    /// A round committed with these aggregated clients (ascending).
    RoundCommitted {
        /// The committed round.
        round: u64,
        /// Clients whose updates were aggregated.
        accepted: Vec<u64>,
    },
    /// A round closed without commit.
    RoundAborted {
        /// The aborted round.
        round: u64,
        /// Why.
        reason: AbortReason,
    },
    /// The live fleet is smaller than the planned `K` — the driver should
    /// re-plan `(K*, E*)` for the surviving fleet.
    FleetShrunk {
        /// The round about to open (or in progress).
        round: u64,
        /// Live clients remaining.
        alive: usize,
    },
}

/// Per-reason round-abort counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbortBreakdown {
    /// Rounds aborted for missing quorum at the deadline.
    pub quorum_miss: u64,
    /// Rounds aborted because the live fleet collapsed mid-round.
    pub fleet_collapse: u64,
    /// Rounds cancelled by the driver.
    pub cancelled: u64,
    /// Rounds abandoned by crash recovery.
    pub coordinator_crash: u64,
}

impl AbortBreakdown {
    /// Counts one abort under its reason.
    pub fn record(&mut self, reason: AbortReason) {
        match reason {
            AbortReason::QuorumMiss => self.quorum_miss += 1,
            AbortReason::FleetCollapse => self.fleet_collapse += 1,
            AbortReason::Cancelled => self.cancelled += 1,
            AbortReason::CoordinatorCrash => self.coordinator_crash += 1,
        }
    }

    /// The counter for one reason.
    pub fn count(&self, reason: AbortReason) -> u64 {
        match reason {
            AbortReason::QuorumMiss => self.quorum_miss,
            AbortReason::FleetCollapse => self.fleet_collapse,
            AbortReason::Cancelled => self.cancelled,
            AbortReason::CoordinatorCrash => self.coordinator_crash,
        }
    }

    /// All aborts, any reason.
    pub fn total(&self) -> u64 {
        AbortReason::ALL.iter().map(|&r| self.count(r)).sum()
    }

    /// Folds another breakdown into this one.
    pub fn absorb(&mut self, other: AbortBreakdown) {
        self.quorum_miss += other.quorum_miss;
        self.fleet_collapse += other.fleet_collapse;
        self.cancelled += other.cancelled;
        self.coordinator_crash += other.coordinator_crash;
    }
}

/// Control-plane traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Frames accepted by `handle_frame`.
    pub frames_in: u64,
    /// Bytes of accepted inbound frames.
    pub bytes_in: u64,
    /// Frames emitted via `Send` effects.
    pub frames_out: u64,
    /// Bytes of emitted frames.
    pub bytes_out: u64,
    /// Frames rejected with a typed error.
    pub rejected: u64,
    /// Updates rejected because their sender's lease had expired.
    pub expired_rejections: u64,
    /// Rounds that committed.
    pub committed_rounds: u64,
    /// Rounds that aborted (any reason; see [`ControlStats::aborts`]).
    pub aborted_rounds: u64,
    /// Abort-reason breakdown of [`ControlStats::aborted_rounds`].
    pub aborts: AbortBreakdown,
    /// In-flight rounds carried across a crash by [`Coordinator::recover`].
    pub resumed_rounds: u64,
    /// Resume requests answered with a session resume.
    pub resumes_accepted: u64,
    /// Resume requests bounced into a full rejoin.
    pub resumes_rejoined: u64,
    /// Updates rejected because their round was abandoned by recovery.
    pub recovered_rejections: u64,
    /// Upload bytes whose rounds were abandoned by recovery — pre-crash
    /// work the energy ledger should bill as wasted.
    pub wasted_update_bytes: u64,
}

impl ControlStats {
    /// Folds another incarnation's counters into this one — how a driver
    /// totals traffic across coordinator restarts.
    pub fn absorb(&mut self, other: ControlStats) {
        self.frames_in += other.frames_in;
        self.bytes_in += other.bytes_in;
        self.frames_out += other.frames_out;
        self.bytes_out += other.bytes_out;
        self.rejected += other.rejected;
        self.expired_rejections += other.expired_rejections;
        self.committed_rounds += other.committed_rounds;
        self.aborted_rounds += other.aborted_rounds;
        self.aborts.absorb(other.aborts);
        self.resumed_rounds += other.resumed_rounds;
        self.resumes_accepted += other.resumes_accepted;
        self.resumes_rejoined += other.resumes_rejoined;
        self.recovered_rejections += other.recovered_rejections;
        self.wasted_update_bytes += other.wasted_update_bytes;
    }
}

/// The coordinator state machine.
#[derive(Debug, Clone)]
pub struct Coordinator {
    config: CoordinatorConfig,
    phase: Phase,
    round: u64,
    /// Incarnation number: 0 on first boot, bumped by every recovery.
    epoch: u64,
    liveness: LivenessTracker,
    /// Wire-v2 payload of the current global model, shipped in `Select`.
    global: Vec<u8>,
    /// Clients selected for the open round.
    selected: BTreeSet<u64>,
    /// In-time submissions, in arrival order: `(tick, client)`.
    received: Vec<(u64, u64)>,
    /// Buffered update payloads: client → (samples, wire payload).
    payloads: BTreeMap<u64, (u32, Vec<u8>)>,
    /// Tick after which the open round closes.
    deadline_tick: u64,
    /// The write-ahead log: appended before any transition's effects leave
    /// the machine, so `recover` can rebuild this exact state.
    journal: RoundJournal,
    /// The round recovery abandoned, if any — late frames for it get a
    /// typed [`ProtoError::Recovered`] rather than a confusing
    /// `WrongRound`.
    recovered_round: Option<u64>,
    stats: ControlStats,
}

impl Coordinator {
    /// Creates an idle coordinator.
    ///
    /// # Panics
    ///
    /// Same validation as [`CoordinatorConfig::validated`].
    pub fn new(config: CoordinatorConfig) -> Self {
        let config = config.validated();
        let liveness = LivenessTracker::new(config.heartbeat_timeout);
        Self {
            config,
            phase: Phase::Idle,
            round: 0,
            epoch: 0,
            liveness,
            global: Vec::new(),
            selected: BTreeSet::new(),
            received: Vec::new(),
            payloads: BTreeMap::new(),
            deadline_tick: 0,
            journal: RoundJournal::new(),
            recovered_round: None,
            stats: ControlStats::default(),
        }
    }

    /// Rebuilds a coordinator from the durable journal of a crashed
    /// incarnation, at tick `now`.
    ///
    /// The roster and epoch are folded out of the journal; every surviving
    /// roster member gets its lease re-armed at `now` (they will be
    /// re-expired on their usual timeout if they do not answer the epoch
    /// notice). If a round was in flight, it is **resumed** — selection,
    /// deadline, and buffered updates restored exactly — when its deadline
    /// has not passed and enough selected clients survive in the roster to
    /// still reach quorum; otherwise it is **aborted** with
    /// [`AbortReason::CoordinatorCrash`], its buffered upload bytes are
    /// counted into [`ControlStats::wasted_update_bytes`], and late frames
    /// for it are rejected with [`ProtoError::Recovered`]. Either way the
    /// verdict lands within one recovery step of the restart.
    ///
    /// The returned effects carry the abort broadcast (if any) and an
    /// [`ControlFrame::EpochNotice`] to every roster member; participants
    /// answer with [`ControlFrame::Resume`] or a fresh join.
    ///
    /// # Errors
    ///
    /// Journal decode errors ([`ProtoError::Codec`] and friends) on
    /// mid-log corruption; a torn trailing record from the crash itself is
    /// tolerated and cut off.
    ///
    /// # Panics
    ///
    /// Same configuration validation as [`CoordinatorConfig::validated`].
    pub fn recover(
        config: CoordinatorConfig,
        journal_bytes: &[u8],
        now: u64,
    ) -> Result<(Self, Vec<Effect>), ProtoError> {
        let journal = RoundJournal::from_bytes(journal_bytes.to_vec());
        let replay = journal.replay()?;
        let state = JournalState::from_records(&replay.records);
        let mut c = Self::new(config);
        c.journal = journal;
        c.epoch = state.epoch + 1;
        c.round = state.next_round;
        for &client in &state.roster {
            c.liveness.register(client, now);
        }
        c.journal.append(&JournalRecord::EpochStarted {
            epoch: c.epoch,
            tick: now,
        });
        c.phase = Phase::Rendezvous;

        let mut effects = Vec::new();
        if let Some(open) = state.open_round {
            c.round = open.round;
            let live_selected = open
                .selected
                .iter()
                .filter(|client| state.roster.contains(client))
                .count();
            if now < open.deadline_tick && live_selected >= c.config.quorum {
                // Resume: re-journal the open marker under the new
                // incarnation (the fold treats it as a duplicate) and put
                // the round back exactly where the crash left it.
                c.journal.append(&JournalRecord::RoundOpened {
                    round: open.round,
                    deadline_tick: open.deadline_tick,
                    tick: now,
                    selected: open.selected.iter().copied().collect(),
                });
                c.phase = if open.updates.is_empty() {
                    Phase::Selected
                } else {
                    Phase::Training
                };
                c.selected = open.selected;
                c.received = open.arrivals;
                c.payloads = open.updates;
                c.deadline_tick = open.deadline_tick;
                c.stats.resumed_rounds += 1;
            } else {
                // Abort cleanly: the pre-crash upload bytes are wasted
                // work for the energy ledger to bill.
                for (_, payload) in open.updates.values() {
                    c.stats.wasted_update_bytes += update_submit_frame_len(payload.len()) as u64;
                }
                c.selected = open.selected;
                c.recovered_round = Some(open.round);
                effects.extend(c.close_round(now, Some(AbortReason::CoordinatorCrash)));
            }
        }
        let roster: Vec<u64> = state.roster.iter().copied().collect();
        for client in roster {
            let notice = ControlFrame::EpochNotice {
                epoch: c.epoch,
                round: c.round,
            };
            effects.push(c.send(client, notice));
        }
        Ok((c, effects))
    }

    /// Current protocol state.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The round in progress (or the next to open).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The incarnation number (0 until the first recovery).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The write-ahead journal. A driver modelling a durable log snapshots
    /// [`RoundJournal::bytes`] and feeds them to [`Coordinator::recover`].
    pub fn journal(&self) -> &RoundJournal {
        &self.journal
    }

    /// The round abandoned by the last recovery, if any.
    pub fn recovered_round(&self) -> Option<u64> {
        self.recovered_round
    }

    /// The configuration.
    pub fn config(&self) -> &CoordinatorConfig {
        &self.config
    }

    /// Traffic counters.
    pub fn stats(&self) -> ControlStats {
        self.stats
    }

    /// Live clients at `now`, ascending.
    pub fn live_clients(&self, now: u64) -> Vec<u64> {
        self.liveness.live_clients(now)
    }

    /// Whether `client` is registered and inside its lease.
    pub fn is_live(&self, client: u64, now: u64) -> bool {
        self.liveness.is_live(client, now)
    }

    /// Buffered update payloads of the open round (client → samples,
    /// wire-v2 bytes), for drivers that aggregate on commit.
    pub fn update_payloads(&self) -> &BTreeMap<u64, (u32, Vec<u8>)> {
        &self.payloads
    }

    /// Replaces the global-model payload shipped in selection notices.
    pub fn set_global(&mut self, payload: Vec<u8>) {
        self.global = payload;
    }

    /// Opens the rendezvous: joins are now accepted.
    ///
    /// # Errors
    ///
    /// [`ProtoError::UnexpectedFrame`] unless the coordinator is idle.
    pub fn open_rendezvous(&mut self) -> Result<(), ProtoError> {
        match self.phase {
            Phase::Idle => {
                self.journal.append(&JournalRecord::EpochStarted {
                    epoch: self.epoch,
                    tick: 0,
                });
                self.phase = Phase::Rendezvous;
                Ok(())
            }
            other => Err(ProtoError::UnexpectedFrame {
                state: other.name(),
                frame: "open_rendezvous",
            }),
        }
    }

    /// Opens the next round at `now`: expires stale leases, checks the
    /// quorum against the live fleet, and emits a selection notice to the
    /// first `min(K + m, alive)` live clients in id order.
    ///
    /// # Errors
    ///
    /// [`ProtoError::UnexpectedFrame`] when no round can open from the
    /// current state, [`ProtoError::QuorumLost`] when too few clients are
    /// live (the state is unchanged; the driver may re-plan and retry).
    pub fn start_round(&mut self, now: u64) -> Result<Vec<Effect>, ProtoError> {
        if !matches!(self.phase, Phase::Rendezvous | Phase::RoundClosed) {
            return Err(ProtoError::UnexpectedFrame {
                state: self.phase.name(),
                frame: "start_round",
            });
        }
        for client in self.liveness.expire(now) {
            self.journal
                .append(&JournalRecord::ClientExpired { client, tick: now });
        }
        let live = self.liveness.live_clients(now);
        let policy = self.policy();
        if live.len() < policy.quorum {
            return Err(ProtoError::QuorumLost {
                round: self.round,
                alive: live.len(),
                required: policy.quorum,
            });
        }
        let mut effects = Vec::new();
        if live.len() < self.config.k {
            effects.push(Effect::FleetShrunk {
                round: self.round,
                alive: live.len(),
            });
        }
        let width = policy.selection_width(live.len());
        self.selected = live.iter().copied().take(width).collect();
        self.received.clear();
        self.payloads.clear();
        self.deadline_tick = now + self.config.round_deadline;
        let selected: Vec<u64> = self.selected.iter().copied().collect();
        self.journal.append(&JournalRecord::RoundOpened {
            round: self.round,
            deadline_tick: self.deadline_tick,
            tick: now,
            selected: selected.clone(),
        });
        self.phase = Phase::Selected;
        for client in selected {
            effects.push(self.send(
                client,
                ControlFrame::Select {
                    round: self.round,
                    client,
                    epochs: self.config.epochs,
                    deadline_tick: self.deadline_tick,
                    global: self.global.clone(),
                },
            ));
        }
        Ok(effects)
    }

    /// Feeds one inbound byte frame at `now`.
    ///
    /// Every frame in every state has exactly one defined outcome: a
    /// transition (possibly emitting effects) or a typed rejection. This
    /// function never panics on wire input.
    ///
    /// # Errors
    ///
    /// Any [`ProtoError`]; rejected frames are counted in
    /// [`ControlStats::rejected`] and leave the round state unchanged.
    pub fn handle_frame(&mut self, bytes: &[u8], now: u64) -> Result<Vec<Effect>, ProtoError> {
        let (frame, consumed) = ControlFrame::decode(bytes).inspect_err(|_| {
            self.stats.rejected += 1;
        })?;
        self.stats.frames_in += 1;
        self.stats.bytes_in += consumed as u64;
        self.handle_control(frame, now)
    }

    /// Feeds one decoded control frame at `now` (the typed twin of
    /// [`Coordinator::handle_frame`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Coordinator::handle_frame`].
    pub fn handle_control(
        &mut self,
        frame: ControlFrame,
        now: u64,
    ) -> Result<Vec<Effect>, ProtoError> {
        self.dispatch(frame, now).inspect_err(|_| {
            self.stats.rejected += 1;
        })
    }

    fn dispatch(&mut self, frame: ControlFrame, now: u64) -> Result<Vec<Effect>, ProtoError> {
        match frame {
            ControlFrame::JoinRequest {
                client,
                wire_version,
            } => self.on_join(client, wire_version, now),
            ControlFrame::Heartbeat { client, .. } => {
                self.liveness.beat(client, now)?;
                Ok(Vec::new())
            }
            ControlFrame::UpdateSubmit {
                round,
                client,
                samples,
                update,
            } => self.on_update(round, client, samples, update, now),
            ControlFrame::Resume { client, epoch, .. } => self.on_resume(client, epoch, now),
            ControlFrame::Shutdown => Ok(self.cancel_round(now)),
            // Downstream frames have no coordinator-side transition in any
            // state.
            other => Err(ProtoError::UnexpectedFrame {
                state: self.phase.name(),
                frame: other.name(),
            }),
        }
    }

    /// Advances virtual time: expires leases (discarding any buffered
    /// update of an expired client), aborts the round if the live fleet
    /// collapses below quorum, and closes the round at its deadline tick.
    pub fn tick(&mut self, now: u64) -> Vec<Effect> {
        let mut effects = Vec::new();
        let expired = self.liveness.expire(now);
        for client in &expired {
            self.journal.append(&JournalRecord::ClientExpired {
                client: *client,
                tick: now,
            });
            // Safety invariant: an expired client's update never survives
            // to aggregation.
            self.payloads.remove(client);
            self.received.retain(|&(_, c)| c != *client);
        }
        if matches!(self.phase, Phase::Selected | Phase::Training) {
            let alive = self.liveness.live_count(now);
            if alive < self.config.quorum {
                effects.push(Effect::FleetShrunk {
                    round: self.round,
                    alive,
                });
                effects.extend(self.close_round(now, Some(AbortReason::FleetCollapse)));
                return effects;
            }
            if now >= self.deadline_tick {
                effects.extend(self.close_round(now, None));
            }
        }
        effects
    }

    /// Cancels the open round for a graceful shutdown (the
    /// [`ControlFrame::Shutdown`] path): the abort is journaled as
    /// [`AbortReason::Cancelled`] and broadcast to every selected client
    /// before the caller exits, so participants stop training instead of
    /// burning energy on a round nobody will aggregate. With no round open
    /// this is a no-op — the coordinator can exit without ceremony.
    pub fn cancel_round(&mut self, now: u64) -> Vec<Effect> {
        if matches!(self.phase, Phase::Selected | Phase::Training) {
            self.close_round(now, Some(AbortReason::Cancelled))
        } else {
            Vec::new()
        }
    }

    /// The round policy derived from the configuration. Deadline admission
    /// runs on ticks here, so the policy itself carries no deadline.
    fn policy(&self) -> RoundPolicy {
        RoundPolicy {
            k: self.config.k,
            over_select: self.config.over_select,
            quorum: self.config.quorum,
            deadline_s: None,
        }
    }

    fn on_join(
        &mut self,
        client: u64,
        wire_version: u8,
        now: u64,
    ) -> Result<Vec<Effect>, ProtoError> {
        if self.phase == Phase::Idle {
            return Err(ProtoError::UnexpectedFrame {
                state: self.phase.name(),
                frame: "JoinRequest",
            });
        }
        // The handshake version gate: a client encoding payloads with a
        // different wire codec is rejected before it can ship any.
        if wire_version != WIRE_VERSION {
            return Err(ProtoError::VersionMismatch {
                expected: WIRE_VERSION,
                found: wire_version,
            });
        }
        if !self.liveness.contains(client) {
            self.journal
                .append(&JournalRecord::ClientJoined { client, tick: now });
        }
        self.liveness.register(client, now);
        let ack = self.send(
            client,
            ControlFrame::JoinAck {
                client,
                heartbeat_interval: self.config.heartbeat_interval as u32,
                heartbeat_timeout: self.config.heartbeat_timeout as u32,
            },
        );
        Ok(vec![ack])
    }

    /// Answers a session-resume request: resume when the journal roster
    /// still knows the client and its observed epoch is not ahead of ours,
    /// otherwise order a fresh join handshake.
    fn on_resume(&mut self, client: u64, epoch: u64, now: u64) -> Result<Vec<Effect>, ProtoError> {
        if self.phase == Phase::Idle {
            return Err(ProtoError::UnexpectedFrame {
                state: self.phase.name(),
                frame: "Resume",
            });
        }
        let resume = self.liveness.contains(client) && epoch <= self.epoch;
        if resume {
            self.stats.resumes_accepted += 1;
            self.liveness.register(client, now);
        } else {
            self.stats.resumes_rejoined += 1;
        }
        let ack = self.send(
            client,
            ControlFrame::ResumeAck {
                client,
                epoch: self.epoch,
                resume,
            },
        );
        Ok(vec![ack])
    }

    fn on_update(
        &mut self,
        round: u64,
        client: u64,
        samples: u32,
        update: Vec<u8>,
        now: u64,
    ) -> Result<Vec<Effect>, ProtoError> {
        if self.recovered_round == Some(round) && round != self.round {
            self.stats.recovered_rejections += 1;
            return Err(ProtoError::Recovered { round });
        }
        if !matches!(self.phase, Phase::Selected | Phase::Training) {
            return Err(ProtoError::UnexpectedFrame {
                state: self.phase.name(),
                frame: "UpdateSubmit",
            });
        }
        if round != self.round {
            return Err(ProtoError::WrongRound {
                current: self.round,
                got: round,
            });
        }
        if !self.selected.contains(&client) {
            return Err(ProtoError::NotSelected { client });
        }
        if !self.liveness.is_live(client, now) {
            self.stats.expired_rejections += 1;
            return Err(ProtoError::ExpiredClient { client });
        }
        if self.payloads.contains_key(&client) {
            return Err(ProtoError::DuplicateUpdate { client });
        }
        let record = JournalRecord::UpdateAccepted {
            round,
            client,
            samples,
            tick: now,
            update: update.clone(),
        };
        self.journal.append(&record);
        self.phase = Phase::Training;
        self.received.push((now, client));
        self.payloads.insert(client, (samples, update));
        // Early close: every selected client delivered; no reason to wait
        // for the deadline.
        if self.payloads.len() == self.selected.len() {
            return Ok(self.close_round(now, None));
        }
        Ok(Vec::new())
    }

    /// Closes the open round: ranks the surviving arrivals through the
    /// shared decision core, commits a quorum-satisfying set or aborts,
    /// and broadcasts the verdict to every selected client.
    fn close_round(&mut self, now: u64, forced: Option<AbortReason>) -> Vec<Effect> {
        // Only arrivals whose sender is *still live* survive to ranking —
        // expiry between submission and close voids the update.
        let arrivals: Vec<(f64, usize)> = self
            .received
            .iter()
            .filter(|&&(_, client)| {
                self.liveness.is_live(client, now) && self.payloads.contains_key(&client)
            })
            .map(|&(tick, client)| (tick as f64, client as usize))
            .collect();
        let accepted: Vec<u64> = first_k_by_arrival(arrivals, self.config.k)
            .into_iter()
            .map(|c| c as u64)
            .collect();
        self.payloads.retain(|client, _| accepted.contains(client));

        let verdict = match forced {
            Some(reason) => Err(reason),
            None if accepted.len() >= self.config.quorum => Ok(()),
            None => Err(AbortReason::QuorumMiss),
        };
        // The verdict is durable before any verdict effect leaves the
        // machine: a crash from here on replays as a closed round.
        let record = match verdict {
            Ok(()) => JournalRecord::RoundCommitted {
                round: self.round,
                tick: now,
                accepted: accepted.clone(),
            },
            Err(reason) => JournalRecord::RoundAborted {
                round: self.round,
                reason,
                tick: now,
            },
        };
        self.journal.append(&record);
        self.phase = Phase::Aggregating;
        let effects = self.verdict_effects(verdict, accepted);
        self.phase = Phase::RoundClosed;
        self.round += 1;
        effects
    }

    /// Builds the commit-or-abort broadcast and driver effect for the
    /// closing round, and counts the verdict in the stats.
    fn verdict_effects(
        &mut self,
        verdict: Result<(), AbortReason>,
        accepted: Vec<u64>,
    ) -> Vec<Effect> {
        let mut effects = Vec::new();
        let selected: Vec<u64> = self.selected.iter().copied().collect();
        match verdict {
            Ok(()) => {
                self.stats.committed_rounds += 1;
                for &client in &selected {
                    effects.push(self.send(
                        client,
                        ControlFrame::RoundCommit {
                            round: self.round,
                            accepted: accepted.clone(),
                        },
                    ));
                }
                effects.push(Effect::RoundCommitted {
                    round: self.round,
                    accepted,
                });
            }
            Err(reason) => {
                self.stats.aborted_rounds += 1;
                self.stats.aborts.record(reason);
                self.payloads.clear();
                for &client in &selected {
                    effects.push(self.send(
                        client,
                        ControlFrame::RoundAbort {
                            round: self.round,
                            reason,
                        },
                    ));
                }
                effects.push(Effect::RoundAborted {
                    round: self.round,
                    reason,
                });
            }
        }
        effects
    }

    fn send(&mut self, to: u64, frame: ControlFrame) -> Effect {
        self.stats.frames_out += 1;
        self.stats.bytes_out += frame.encoded_len() as u64;
        Effect::Send { to, frame }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn config() -> CoordinatorConfig {
        CoordinatorConfig {
            k: 2,
            over_select: 1,
            quorum: 2,
            epochs: 5,
            heartbeat_interval: 5,
            heartbeat_timeout: 20,
            round_deadline: 50,
        }
    }

    fn joined(n: u64) -> Coordinator {
        let mut coordinator = Coordinator::new(config());
        coordinator.open_rendezvous().expect("idle coordinator");
        for client in 0..n {
            let effects = coordinator
                .handle_control(
                    ControlFrame::JoinRequest {
                        client,
                        wire_version: WIRE_VERSION,
                    },
                    0,
                )
                .expect("join accepted");
            assert!(matches!(
                effects[0],
                Effect::Send {
                    frame: ControlFrame::JoinAck { .. },
                    ..
                }
            ));
        }
        coordinator
    }

    fn submit(client: u64, round: u64) -> ControlFrame {
        ControlFrame::UpdateSubmit {
            round,
            client,
            samples: 10,
            update: vec![client as u8],
        }
    }

    #[test]
    fn happy_path_walks_all_phases() {
        let mut c = joined(3);
        assert_eq!(c.phase(), Phase::Rendezvous);
        let effects = c.start_round(10).expect("quorum of 3");
        assert_eq!(c.phase(), Phase::Selected);
        // k + over_select = 3 selection notices.
        assert_eq!(effects.len(), 3);
        c.handle_control(submit(0, 0), 12).expect("first update");
        assert_eq!(c.phase(), Phase::Training);
        c.handle_control(submit(1, 0), 13).expect("second update");
        // Third delivery closes early with a full commit.
        let effects = c.handle_control(submit(2, 0), 14).expect("third update");
        assert_eq!(c.phase(), Phase::RoundClosed);
        let committed = effects.iter().find_map(|e| match e {
            Effect::RoundCommitted { round, accepted } => Some((*round, accepted.clone())),
            _ => None,
        });
        // First K = 2 arrivals win: clients 0 and 1.
        assert_eq!(committed, Some((0, vec![0, 1])));
        assert_eq!(c.round(), 1);
    }

    #[test]
    fn shutdown_frame_cancels_open_round() {
        let mut c = joined(3);
        c.start_round(10).expect("quorum of 3");
        c.handle_control(submit(0, 0), 12).expect("first update");
        assert_eq!(c.phase(), Phase::Training);
        let effects = c
            .handle_control(ControlFrame::Shutdown, 15)
            .expect("shutdown is always accepted");
        assert_eq!(c.phase(), Phase::RoundClosed);
        assert!(effects.iter().any(|e| matches!(
            e,
            Effect::RoundAborted {
                round: 0,
                reason: AbortReason::Cancelled,
            }
        )));
        // The abort is broadcast to every selected client.
        let aborts = effects
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Effect::Send {
                        frame: ControlFrame::RoundAbort {
                            reason: AbortReason::Cancelled,
                            ..
                        },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(aborts, 3);
        assert_eq!(c.stats().aborts.count(AbortReason::Cancelled), 1);
        // Durable: the journaled verdict replays as a cancelled round.
        let replay = c.journal().replay().expect("clean journal");
        let state = crate::journal::JournalState::from_records(&replay.records);
        assert!(state.open_round.is_none());
    }

    #[test]
    fn shutdown_between_rounds_is_a_quiet_no_op() {
        let mut c = joined(2);
        assert_eq!(c.phase(), Phase::Rendezvous);
        let effects = c
            .handle_control(ControlFrame::Shutdown, 5)
            .expect("shutdown accepted in rendezvous");
        assert!(effects.is_empty());
        assert_eq!(c.phase(), Phase::Rendezvous);
        assert_eq!(c.stats().aborted_rounds, 0);
    }

    #[test]
    fn deadline_closes_with_quorum_partial() {
        let mut c = joined(3);
        c.start_round(0).expect("quorum of 3");
        c.handle_control(submit(0, 0), 5).expect("update 0");
        c.handle_control(submit(1, 0), 6).expect("update 1");
        // Client 2 never submits; everyone keeps heartbeating.
        for client in 0..3 {
            c.handle_control(ControlFrame::Heartbeat { client, tick: 40 }, 40)
                .expect("beat");
        }
        assert!(c.tick(49).is_empty(), "before the deadline nothing closes");
        let effects = c.tick(50);
        let committed = effects.iter().any(
            |e| matches!(e, Effect::RoundCommitted { accepted, .. } if accepted == &vec![0, 1]),
        );
        assert!(
            committed,
            "partial close must commit the quorum: {effects:?}"
        );
    }

    #[test]
    fn deadline_without_quorum_aborts() {
        let mut c = joined(3);
        c.start_round(0).expect("quorum of 3");
        c.handle_control(submit(0, 0), 5).expect("update 0");
        for client in 0..3 {
            c.handle_control(ControlFrame::Heartbeat { client, tick: 40 }, 40)
                .expect("beat");
        }
        let effects = c.tick(50);
        assert!(
            effects.iter().any(|e| matches!(
                e,
                Effect::RoundAborted {
                    reason: AbortReason::QuorumMiss,
                    ..
                }
            )),
            "{effects:?}"
        );
        assert_eq!(c.phase(), Phase::RoundClosed);
    }

    #[test]
    fn expired_client_update_is_rejected_and_never_aggregated() {
        let mut c = joined(3);
        c.start_round(0).expect("quorum of 3");
        // Clients 0 and 1 keep their leases alive; client 2 goes silent.
        for tick in [10u64, 19] {
            for client in [0u64, 1] {
                c.handle_control(ControlFrame::Heartbeat { client, tick }, tick)
                    .expect("beat");
            }
        }
        // Client 2's lease (registered at 0, timeout 20) lapses at tick 20.
        let err = c.handle_control(submit(2, 0), 20);
        assert_eq!(err, Err(ProtoError::ExpiredClient { client: 2 }));
        assert_eq!(c.stats().expired_rejections, 1);
        // The others commit without it.
        c.handle_control(submit(0, 0), 21).expect("update 0");
        c.handle_control(submit(1, 0), 22).expect("update 1");
        for client in [0u64, 1] {
            c.handle_control(ControlFrame::Heartbeat { client, tick: 38 }, 38)
                .expect("beat");
        }
        let effects = c.tick(50);
        let accepted = effects.iter().find_map(|e| match e {
            Effect::RoundCommitted { accepted, .. } => Some(accepted.clone()),
            _ => None,
        });
        assert_eq!(accepted, Some(vec![0, 1]));
    }

    #[test]
    fn buffered_update_is_discarded_when_its_sender_expires() {
        let mut c = joined(3);
        c.start_round(0).expect("quorum of 3");
        // Client 2 submits while live, then goes silent past its lease.
        c.handle_control(submit(2, 0), 1).expect("in-time update");
        for tick in [10u64, 19, 28, 37, 46] {
            for client in [0u64, 1] {
                c.handle_control(ControlFrame::Heartbeat { client, tick }, tick)
                    .expect("beat");
            }
        }
        c.handle_control(submit(0, 0), 30).expect("update 0");
        // Every selected client has now delivered, so this submission
        // closes the round early — at tick 31, past client 2's lease.
        let effects = c.handle_control(submit(1, 0), 31).expect("update 1");
        let accepted = effects.iter().find_map(|e| match e {
            Effect::RoundCommitted { accepted, .. } => Some(accepted.clone()),
            _ => None,
        });
        // Client 2 expired at tick 20 < 31: its buffered update is void.
        assert_eq!(accepted, Some(vec![0, 1]));
        assert!(!c.update_payloads().contains_key(&2));
    }

    #[test]
    fn fleet_collapse_aborts_and_requests_replan() {
        let mut c = joined(2);
        c.start_round(0).expect("exactly at quorum");
        // Nobody heartbeats: both leases lapse at tick 20.
        let effects = c.tick(20);
        assert!(effects
            .iter()
            .any(|e| matches!(e, Effect::FleetShrunk { alive: 0, .. })));
        assert!(effects.iter().any(|e| matches!(
            e,
            Effect::RoundAborted {
                reason: AbortReason::FleetCollapse,
                ..
            }
        )));
    }

    #[test]
    fn shrunken_fleet_triggers_replan_hook_on_open() {
        let mut c = joined(1);
        // quorum is 2 > 1 live → cannot open.
        assert_eq!(
            c.start_round(5),
            Err(ProtoError::QuorumLost {
                round: 0,
                alive: 1,
                required: 2
            })
        );
        // Relax to a 1-quorum coordinator: opening with 1 < k = 2 live
        // clients emits the re-plan hook.
        let mut config = config();
        config.quorum = 1;
        let mut c = Coordinator::new(config);
        c.open_rendezvous().expect("idle");
        c.handle_control(
            ControlFrame::JoinRequest {
                client: 0,
                wire_version: WIRE_VERSION,
            },
            0,
        )
        .expect("join");
        let effects = c.start_round(1).expect("1-quorum");
        assert!(effects
            .iter()
            .any(|e| matches!(e, Effect::FleetShrunk { alive: 1, .. })));
    }

    #[test]
    fn wrong_wire_version_is_rejected_at_the_handshake() {
        let mut c = Coordinator::new(config());
        c.open_rendezvous().expect("idle");
        let err = c.handle_control(
            ControlFrame::JoinRequest {
                client: 0,
                wire_version: WIRE_VERSION + 1,
            },
            0,
        );
        assert_eq!(
            err,
            Err(ProtoError::VersionMismatch {
                expected: WIRE_VERSION,
                found: WIRE_VERSION + 1,
            })
        );
    }

    #[test]
    fn typed_rejections_cover_the_update_path() {
        let mut c = joined(3);
        c.start_round(0).expect("quorum");
        assert_eq!(
            c.handle_control(submit(0, 7), 1),
            Err(ProtoError::WrongRound { current: 0, got: 7 })
        );
        assert_eq!(
            c.handle_control(submit(9, 0), 1),
            Err(ProtoError::NotSelected { client: 9 })
        );
        c.handle_control(submit(0, 0), 1).expect("first");
        assert_eq!(
            c.handle_control(submit(0, 0), 2),
            Err(ProtoError::DuplicateUpdate { client: 0 })
        );
        // Downstream frames bounce with the state name.
        assert_eq!(
            c.handle_control(
                ControlFrame::RoundCommit {
                    round: 0,
                    accepted: vec![]
                },
                3
            ),
            Err(ProtoError::UnexpectedFrame {
                state: "Training",
                frame: "RoundCommit"
            })
        );
        assert_eq!(c.stats().rejected, 4);
    }

    #[test]
    fn recover_resumes_an_in_deadline_round_exactly() {
        let mut c = joined(3);
        c.start_round(10).expect("quorum of 3");
        c.handle_control(submit(0, 0), 12).expect("update 0");
        let snapshot = c.journal().bytes().to_vec();

        // Crash + restart well inside the deadline (10 + 50 = 60).
        let (mut r, effects) = Coordinator::recover(config(), &snapshot, 20).expect("clean log");
        assert_eq!(r.phase(), Phase::Training);
        assert_eq!(r.round(), 0);
        assert_eq!(r.epoch(), 1);
        assert_eq!(r.stats().resumed_rounds, 1);
        assert!(r.update_payloads().contains_key(&0), "buffer restored");
        // Every roster member is notified of the new incarnation.
        let notices = effects
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Effect::Send {
                        frame: ControlFrame::EpochNotice { epoch: 1, round: 0 },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(notices, 3);

        // No double-aggregation: client 0 retransmitting its pre-crash
        // update is a duplicate, not a second buffer entry.
        assert_eq!(
            r.handle_control(submit(0, 0), 21),
            Err(ProtoError::DuplicateUpdate { client: 0 })
        );
        // The round still commits on the survivors' updates.
        r.handle_control(submit(1, 0), 22).expect("update 1");
        let effects = r.handle_control(submit(2, 0), 23).expect("update 2");
        let accepted = effects.iter().find_map(|e| match e {
            Effect::RoundCommitted { accepted, .. } => Some(accepted.clone()),
            _ => None,
        });
        assert_eq!(accepted, Some(vec![0, 1]));
        assert_eq!(r.stats().committed_rounds, 1);
    }

    #[test]
    fn recover_aborts_a_round_past_its_deadline() {
        let mut c = joined(3);
        c.start_round(10).expect("quorum of 3");
        c.handle_control(submit(0, 0), 12).expect("update 0");
        let snapshot = c.journal().bytes().to_vec();

        // Restart after the deadline: resume is impossible in budget.
        let (mut r, effects) = Coordinator::recover(config(), &snapshot, 70).expect("clean log");
        assert!(effects.iter().any(|e| matches!(
            e,
            Effect::RoundAborted {
                round: 0,
                reason: AbortReason::CoordinatorCrash,
            }
        )));
        assert_eq!(r.round(), 1);
        assert_eq!(r.recovered_round(), Some(0));
        assert_eq!(r.stats().aborts.coordinator_crash, 1);
        // Client 0's pre-crash upload is billed as wasted bytes.
        assert_eq!(
            r.stats().wasted_update_bytes,
            crate::frames::update_submit_frame_len(1) as u64
        );
        // A late frame for the abandoned round gets the typed rejection.
        assert_eq!(
            r.handle_control(submit(1, 0), 71),
            Err(ProtoError::Recovered { round: 0 })
        );
        assert_eq!(r.stats().recovered_rejections, 1);
    }

    #[test]
    fn recover_replays_idempotently() {
        let mut c = joined(3);
        c.start_round(10).expect("quorum of 3");
        c.handle_control(submit(0, 0), 12).expect("update 0");
        let snapshot = c.journal().bytes().to_vec();
        let (a, ea) = Coordinator::recover(config(), &snapshot, 20).expect("clean log");
        let (b, eb) = Coordinator::recover(config(), &snapshot, 20).expect("clean log");
        assert_eq!(ea, eb);
        assert_eq!(a.phase(), b.phase());
        assert_eq!(a.journal().bytes(), b.journal().bytes());
        // Recovering from the recovered journal converges to the same
        // round state (one epoch later).
        let (c2, _) = Coordinator::recover(config(), a.journal().bytes(), 20).expect("clean log");
        assert_eq!(c2.round(), a.round());
        assert_eq!(c2.epoch(), a.epoch() + 1);
        assert_eq!(c2.update_payloads(), a.update_payloads());
    }

    #[test]
    fn resume_requests_split_on_roster_membership() {
        let mut c = joined(2);
        c.start_round(5).expect("at quorum");
        let snapshot = c.journal().bytes().to_vec();
        let (mut r, _) = Coordinator::recover(config(), &snapshot, 10).expect("clean log");

        // A roster member resumes; its lease is re-armed.
        let effects = r
            .handle_control(
                ControlFrame::Resume {
                    client: 0,
                    epoch: 0,
                    last_round: 0,
                },
                11,
            )
            .expect("resume answered");
        assert!(matches!(
            effects[0],
            Effect::Send {
                to: 0,
                frame: ControlFrame::ResumeAck {
                    client: 0,
                    epoch: 1,
                    resume: true,
                },
            }
        ));
        // A stranger is bounced into the join handshake.
        let effects = r
            .handle_control(
                ControlFrame::Resume {
                    client: 99,
                    epoch: 0,
                    last_round: 0,
                },
                11,
            )
            .expect("resume answered");
        assert!(matches!(
            effects[0],
            Effect::Send {
                to: 99,
                frame: ControlFrame::ResumeAck { resume: false, .. },
            }
        ));
        assert_eq!(r.stats().resumes_accepted, 1);
        assert_eq!(r.stats().resumes_rejoined, 1);
    }

    #[test]
    fn abort_breakdown_counts_by_reason() {
        let mut c = joined(3);
        c.start_round(0).expect("quorum of 3");
        for client in 0..3 {
            c.handle_control(ControlFrame::Heartbeat { client, tick: 40 }, 40)
                .expect("beat");
        }
        c.tick(50); // quorum miss: nobody submitted
        assert_eq!(c.stats().aborted_rounds, 1);
        assert_eq!(c.stats().aborts.quorum_miss, 1);
        assert_eq!(c.stats().aborts.total(), 1);

        c.start_round(51).expect("still live");
        c.tick(75); // all leases lapse at 60 → fleet collapse
        assert_eq!(c.stats().aborts.fleet_collapse, 1);
        assert_eq!(c.stats().aborted_rounds, 2);
        assert_eq!(c.stats().committed_rounds, 0);
    }

    #[test]
    fn byte_frames_round_trip_through_handle_frame() {
        let mut c = joined(3);
        c.start_round(0).expect("quorum");
        let bytes = submit(0, 0).encode();
        let before = c.stats();
        c.handle_frame(&bytes, 1).expect("framed update");
        let after = c.stats();
        assert_eq!(after.frames_in, before.frames_in + 1);
        assert_eq!(after.bytes_in - before.bytes_in, bytes.len() as u64);
        // Garbage bytes are a typed codec rejection, not a panic.
        assert!(matches!(
            c.handle_frame(&[0x00, 0x01, 0x02], 2),
            Err(ProtoError::Codec(_))
        ));
    }
}
