//! The frame-driven coordinator state machine.
//!
//! An event-driven coordinator that speaks **only** control-plane frames
//! ([`crate::ControlFrame`]) and advances through
//! `Idle → Rendezvous → Selected → Training → Aggregating → RoundClosed`.
//! It owns no transport and no clock: drivers push decoded byte frames via
//! [`Coordinator::handle_frame`] and advance virtual time via
//! [`Coordinator::tick`]; the machine answers with [`Effect`]s (frames to
//! send, rounds committed or aborted, re-plan hooks). Identical inputs
//! produce identical outputs — the chaos campaign leans on that to replay
//! fault schedules bit-for-bit.
//!
//! Robustness contract:
//!
//! * **liveness** — every opened round reaches `RoundClosed` by its
//!   deadline tick at the latest, committing a quorum-satisfying partial
//!   set or aborting;
//! * **safety** — an update from a client whose heartbeat lease has
//!   expired is never aggregated: late submissions are rejected with
//!   [`ProtoError::ExpiredClient`], and buffered updates are discarded the
//!   moment their sender expires.

use std::collections::{BTreeMap, BTreeSet};

use fei_net::wire::WIRE_VERSION;

use crate::error::ProtoError;
use crate::frames::{AbortReason, ControlFrame};
use crate::liveness::LivenessTracker;
use crate::round::{first_k_by_arrival, RoundPolicy};

/// Protocol states of the coordinator (and mirrored by participants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Not yet accepting anyone.
    Idle,
    /// Accepting joins; no round open.
    Rendezvous,
    /// Selection notices sent; waiting for the first update.
    Selected,
    /// At least one update arrived; collecting the rest.
    Training,
    /// Ranking arrivals and deciding commit-or-abort (transient).
    Aggregating,
    /// The round ended; ready to open the next.
    RoundClosed,
}

impl Phase {
    /// Human-readable state name, used in typed rejections.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Idle => "Idle",
            Phase::Rendezvous => "Rendezvous",
            Phase::Selected => "Selected",
            Phase::Training => "Training",
            Phase::Aggregating => "Aggregating",
            Phase::RoundClosed => "RoundClosed",
        }
    }
}

/// Static configuration of a coordinator.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinatorConfig {
    /// Updates aggregated per round (`K`).
    pub k: usize,
    /// Extra selections beyond `K` as a dropout hedge.
    pub over_select: usize,
    /// Minimum aggregated updates for a round to commit.
    pub quorum: usize,
    /// Local epochs announced in selection notices.
    pub epochs: u32,
    /// Ticks between heartbeats participants must send.
    pub heartbeat_interval: u64,
    /// Silent ticks after which a participant is expired.
    pub heartbeat_timeout: u64,
    /// Ticks from round open to the submission deadline.
    pub round_deadline: u64,
}

impl CoordinatorConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when `k` or `quorum` is zero, the quorum exceeds what
    /// selection can deliver, the heartbeat contract is degenerate
    /// (zero interval/timeout, or a timeout not beyond the interval), or
    /// the round deadline is zero.
    pub fn validated(self) -> Self {
        assert!(self.k > 0, "K must be at least 1");
        assert!(self.quorum > 0, "quorum must be at least 1");
        assert!(
            self.quorum <= self.k + self.over_select,
            "quorum {} cannot exceed the selection width {}",
            self.quorum,
            self.k + self.over_select
        );
        assert!(
            self.heartbeat_interval > 0,
            "heartbeat interval must be positive"
        );
        assert!(
            self.heartbeat_timeout > self.heartbeat_interval,
            "heartbeat timeout must exceed the interval, or every client flaps"
        );
        assert!(self.round_deadline > 0, "round deadline must be positive");
        self
    }
}

/// What the coordinator asks its driver to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Send `frame` to client `to`.
    Send {
        /// Destination client id.
        to: u64,
        /// The frame to deliver.
        frame: ControlFrame,
    },
    /// A round committed with these aggregated clients (ascending).
    RoundCommitted {
        /// The committed round.
        round: u64,
        /// Clients whose updates were aggregated.
        accepted: Vec<u64>,
    },
    /// A round closed without commit.
    RoundAborted {
        /// The aborted round.
        round: u64,
        /// Why.
        reason: AbortReason,
    },
    /// The live fleet is smaller than the planned `K` — the driver should
    /// re-plan `(K*, E*)` for the surviving fleet.
    FleetShrunk {
        /// The round about to open (or in progress).
        round: u64,
        /// Live clients remaining.
        alive: usize,
    },
}

/// Control-plane traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Frames accepted by `handle_frame`.
    pub frames_in: u64,
    /// Bytes of accepted inbound frames.
    pub bytes_in: u64,
    /// Frames emitted via `Send` effects.
    pub frames_out: u64,
    /// Bytes of emitted frames.
    pub bytes_out: u64,
    /// Frames rejected with a typed error.
    pub rejected: u64,
    /// Updates rejected because their sender's lease had expired.
    pub expired_rejections: u64,
}

/// The coordinator state machine.
#[derive(Debug, Clone)]
pub struct Coordinator {
    config: CoordinatorConfig,
    phase: Phase,
    round: u64,
    liveness: LivenessTracker,
    /// Wire-v2 payload of the current global model, shipped in `Select`.
    global: Vec<u8>,
    /// Clients selected for the open round.
    selected: BTreeSet<u64>,
    /// In-time submissions, in arrival order: `(tick, client)`.
    received: Vec<(u64, u64)>,
    /// Buffered update payloads: client → (samples, wire payload).
    payloads: BTreeMap<u64, (u32, Vec<u8>)>,
    /// Tick after which the open round closes.
    deadline_tick: u64,
    stats: ControlStats,
}

impl Coordinator {
    /// Creates an idle coordinator.
    ///
    /// # Panics
    ///
    /// Same validation as [`CoordinatorConfig::validated`].
    pub fn new(config: CoordinatorConfig) -> Self {
        let config = config.validated();
        let liveness = LivenessTracker::new(config.heartbeat_timeout);
        Self {
            config,
            phase: Phase::Idle,
            round: 0,
            liveness,
            global: Vec::new(),
            selected: BTreeSet::new(),
            received: Vec::new(),
            payloads: BTreeMap::new(),
            deadline_tick: 0,
            stats: ControlStats::default(),
        }
    }

    /// Current protocol state.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The round in progress (or the next to open).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The configuration.
    pub fn config(&self) -> &CoordinatorConfig {
        &self.config
    }

    /// Traffic counters.
    pub fn stats(&self) -> ControlStats {
        self.stats
    }

    /// Live clients at `now`, ascending.
    pub fn live_clients(&self, now: u64) -> Vec<u64> {
        self.liveness.live_clients(now)
    }

    /// Whether `client` is registered and inside its lease.
    pub fn is_live(&self, client: u64, now: u64) -> bool {
        self.liveness.is_live(client, now)
    }

    /// Buffered update payloads of the open round (client → samples,
    /// wire-v2 bytes), for drivers that aggregate on commit.
    pub fn update_payloads(&self) -> &BTreeMap<u64, (u32, Vec<u8>)> {
        &self.payloads
    }

    /// Replaces the global-model payload shipped in selection notices.
    pub fn set_global(&mut self, payload: Vec<u8>) {
        self.global = payload;
    }

    /// Opens the rendezvous: joins are now accepted.
    ///
    /// # Errors
    ///
    /// [`ProtoError::UnexpectedFrame`] unless the coordinator is idle.
    pub fn open_rendezvous(&mut self) -> Result<(), ProtoError> {
        match self.phase {
            Phase::Idle => {
                self.phase = Phase::Rendezvous;
                Ok(())
            }
            other => Err(ProtoError::UnexpectedFrame {
                state: other.name(),
                frame: "open_rendezvous",
            }),
        }
    }

    /// Opens the next round at `now`: expires stale leases, checks the
    /// quorum against the live fleet, and emits a selection notice to the
    /// first `min(K + m, alive)` live clients in id order.
    ///
    /// # Errors
    ///
    /// [`ProtoError::UnexpectedFrame`] when no round can open from the
    /// current state, [`ProtoError::QuorumLost`] when too few clients are
    /// live (the state is unchanged; the driver may re-plan and retry).
    pub fn start_round(&mut self, now: u64) -> Result<Vec<Effect>, ProtoError> {
        if !matches!(self.phase, Phase::Rendezvous | Phase::RoundClosed) {
            return Err(ProtoError::UnexpectedFrame {
                state: self.phase.name(),
                frame: "start_round",
            });
        }
        self.liveness.expire(now);
        let live = self.liveness.live_clients(now);
        let policy = self.policy();
        if live.len() < policy.quorum {
            return Err(ProtoError::QuorumLost {
                round: self.round,
                alive: live.len(),
                required: policy.quorum,
            });
        }
        let mut effects = Vec::new();
        if live.len() < self.config.k {
            effects.push(Effect::FleetShrunk {
                round: self.round,
                alive: live.len(),
            });
        }
        let width = policy.selection_width(live.len());
        self.selected = live.iter().copied().take(width).collect();
        self.received.clear();
        self.payloads.clear();
        self.deadline_tick = now + self.config.round_deadline;
        let selected: Vec<u64> = self.selected.iter().copied().collect();
        for client in selected {
            effects.push(self.send(
                client,
                ControlFrame::Select {
                    round: self.round,
                    client,
                    epochs: self.config.epochs,
                    deadline_tick: self.deadline_tick,
                    global: self.global.clone(),
                },
            ));
        }
        self.phase = Phase::Selected;
        Ok(effects)
    }

    /// Feeds one inbound byte frame at `now`.
    ///
    /// Every frame in every state has exactly one defined outcome: a
    /// transition (possibly emitting effects) or a typed rejection. This
    /// function never panics on wire input.
    ///
    /// # Errors
    ///
    /// Any [`ProtoError`]; rejected frames are counted in
    /// [`ControlStats::rejected`] and leave the round state unchanged.
    pub fn handle_frame(&mut self, bytes: &[u8], now: u64) -> Result<Vec<Effect>, ProtoError> {
        let (frame, consumed) = ControlFrame::decode(bytes).inspect_err(|_| {
            self.stats.rejected += 1;
        })?;
        self.stats.frames_in += 1;
        self.stats.bytes_in += consumed as u64;
        self.handle_control(frame, now)
    }

    /// Feeds one decoded control frame at `now` (the typed twin of
    /// [`Coordinator::handle_frame`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Coordinator::handle_frame`].
    pub fn handle_control(
        &mut self,
        frame: ControlFrame,
        now: u64,
    ) -> Result<Vec<Effect>, ProtoError> {
        self.dispatch(frame, now).inspect_err(|_| {
            self.stats.rejected += 1;
        })
    }

    fn dispatch(&mut self, frame: ControlFrame, now: u64) -> Result<Vec<Effect>, ProtoError> {
        match frame {
            ControlFrame::JoinRequest {
                client,
                wire_version,
            } => self.on_join(client, wire_version, now),
            ControlFrame::Heartbeat { client, .. } => {
                self.liveness.beat(client, now)?;
                Ok(Vec::new())
            }
            ControlFrame::UpdateSubmit {
                round,
                client,
                samples,
                update,
            } => self.on_update(round, client, samples, update, now),
            // Downstream frames have no coordinator-side transition in any
            // state.
            other => Err(ProtoError::UnexpectedFrame {
                state: self.phase.name(),
                frame: other.name(),
            }),
        }
    }

    /// Advances virtual time: expires leases (discarding any buffered
    /// update of an expired client), aborts the round if the live fleet
    /// collapses below quorum, and closes the round at its deadline tick.
    pub fn tick(&mut self, now: u64) -> Vec<Effect> {
        let mut effects = Vec::new();
        let expired = self.liveness.expire(now);
        for client in &expired {
            // Safety invariant: an expired client's update never survives
            // to aggregation.
            self.payloads.remove(client);
            self.received.retain(|&(_, c)| c != *client);
        }
        if matches!(self.phase, Phase::Selected | Phase::Training) {
            let alive = self.liveness.live_count(now);
            if alive < self.config.quorum {
                effects.push(Effect::FleetShrunk {
                    round: self.round,
                    alive,
                });
                effects.extend(self.close_round(now, Some(AbortReason::FleetCollapse)));
                return effects;
            }
            if now >= self.deadline_tick {
                effects.extend(self.close_round(now, None));
            }
        }
        effects
    }

    /// The round policy derived from the configuration. Deadline admission
    /// runs on ticks here, so the policy itself carries no deadline.
    fn policy(&self) -> RoundPolicy {
        RoundPolicy {
            k: self.config.k,
            over_select: self.config.over_select,
            quorum: self.config.quorum,
            deadline_s: None,
        }
    }

    fn on_join(
        &mut self,
        client: u64,
        wire_version: u8,
        now: u64,
    ) -> Result<Vec<Effect>, ProtoError> {
        if self.phase == Phase::Idle {
            return Err(ProtoError::UnexpectedFrame {
                state: self.phase.name(),
                frame: "JoinRequest",
            });
        }
        // The handshake version gate: a client encoding payloads with a
        // different wire codec is rejected before it can ship any.
        if wire_version != WIRE_VERSION {
            return Err(ProtoError::VersionMismatch {
                expected: WIRE_VERSION,
                found: wire_version,
            });
        }
        self.liveness.register(client, now);
        let ack = self.send(
            client,
            ControlFrame::JoinAck {
                client,
                heartbeat_interval: self.config.heartbeat_interval as u32,
                heartbeat_timeout: self.config.heartbeat_timeout as u32,
            },
        );
        Ok(vec![ack])
    }

    fn on_update(
        &mut self,
        round: u64,
        client: u64,
        samples: u32,
        update: Vec<u8>,
        now: u64,
    ) -> Result<Vec<Effect>, ProtoError> {
        if !matches!(self.phase, Phase::Selected | Phase::Training) {
            return Err(ProtoError::UnexpectedFrame {
                state: self.phase.name(),
                frame: "UpdateSubmit",
            });
        }
        if round != self.round {
            return Err(ProtoError::WrongRound {
                current: self.round,
                got: round,
            });
        }
        if !self.selected.contains(&client) {
            return Err(ProtoError::NotSelected { client });
        }
        if !self.liveness.is_live(client, now) {
            self.stats.expired_rejections += 1;
            return Err(ProtoError::ExpiredClient { client });
        }
        if self.payloads.contains_key(&client) {
            return Err(ProtoError::DuplicateUpdate { client });
        }
        self.phase = Phase::Training;
        self.received.push((now, client));
        self.payloads.insert(client, (samples, update));
        // Early close: every selected client delivered; no reason to wait
        // for the deadline.
        if self.payloads.len() == self.selected.len() {
            return Ok(self.close_round(now, None));
        }
        Ok(Vec::new())
    }

    /// Closes the open round: ranks the surviving arrivals through the
    /// shared decision core, commits a quorum-satisfying set or aborts,
    /// and broadcasts the verdict to every selected client.
    fn close_round(&mut self, now: u64, forced: Option<AbortReason>) -> Vec<Effect> {
        self.phase = Phase::Aggregating;
        // Only arrivals whose sender is *still live* survive to ranking —
        // expiry between submission and close voids the update.
        let arrivals: Vec<(f64, usize)> = self
            .received
            .iter()
            .filter(|&&(_, client)| {
                self.liveness.is_live(client, now) && self.payloads.contains_key(&client)
            })
            .map(|&(tick, client)| (tick as f64, client as usize))
            .collect();
        let accepted: Vec<u64> = first_k_by_arrival(arrivals, self.config.k)
            .into_iter()
            .map(|c| c as u64)
            .collect();
        self.payloads.retain(|client, _| accepted.contains(client));

        let verdict = match forced {
            Some(reason) => Err(reason),
            None if accepted.len() >= self.config.quorum => Ok(()),
            None => Err(AbortReason::QuorumMiss),
        };
        let mut effects = Vec::new();
        let selected: Vec<u64> = self.selected.iter().copied().collect();
        match verdict {
            Ok(()) => {
                for &client in &selected {
                    effects.push(self.send(
                        client,
                        ControlFrame::RoundCommit {
                            round: self.round,
                            accepted: accepted.clone(),
                        },
                    ));
                }
                effects.push(Effect::RoundCommitted {
                    round: self.round,
                    accepted,
                });
            }
            Err(reason) => {
                self.payloads.clear();
                for &client in &selected {
                    effects.push(self.send(
                        client,
                        ControlFrame::RoundAbort {
                            round: self.round,
                            reason,
                        },
                    ));
                }
                effects.push(Effect::RoundAborted {
                    round: self.round,
                    reason,
                });
            }
        }
        self.phase = Phase::RoundClosed;
        self.round += 1;
        effects
    }

    fn send(&mut self, to: u64, frame: ControlFrame) -> Effect {
        self.stats.frames_out += 1;
        self.stats.bytes_out += frame.encoded_len() as u64;
        Effect::Send { to, frame }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn config() -> CoordinatorConfig {
        CoordinatorConfig {
            k: 2,
            over_select: 1,
            quorum: 2,
            epochs: 5,
            heartbeat_interval: 5,
            heartbeat_timeout: 20,
            round_deadline: 50,
        }
    }

    fn joined(n: u64) -> Coordinator {
        let mut coordinator = Coordinator::new(config());
        coordinator.open_rendezvous().expect("idle coordinator");
        for client in 0..n {
            let effects = coordinator
                .handle_control(
                    ControlFrame::JoinRequest {
                        client,
                        wire_version: WIRE_VERSION,
                    },
                    0,
                )
                .expect("join accepted");
            assert!(matches!(
                effects[0],
                Effect::Send {
                    frame: ControlFrame::JoinAck { .. },
                    ..
                }
            ));
        }
        coordinator
    }

    fn submit(client: u64, round: u64) -> ControlFrame {
        ControlFrame::UpdateSubmit {
            round,
            client,
            samples: 10,
            update: vec![client as u8],
        }
    }

    #[test]
    fn happy_path_walks_all_phases() {
        let mut c = joined(3);
        assert_eq!(c.phase(), Phase::Rendezvous);
        let effects = c.start_round(10).expect("quorum of 3");
        assert_eq!(c.phase(), Phase::Selected);
        // k + over_select = 3 selection notices.
        assert_eq!(effects.len(), 3);
        c.handle_control(submit(0, 0), 12).expect("first update");
        assert_eq!(c.phase(), Phase::Training);
        c.handle_control(submit(1, 0), 13).expect("second update");
        // Third delivery closes early with a full commit.
        let effects = c.handle_control(submit(2, 0), 14).expect("third update");
        assert_eq!(c.phase(), Phase::RoundClosed);
        let committed = effects.iter().find_map(|e| match e {
            Effect::RoundCommitted { round, accepted } => Some((*round, accepted.clone())),
            _ => None,
        });
        // First K = 2 arrivals win: clients 0 and 1.
        assert_eq!(committed, Some((0, vec![0, 1])));
        assert_eq!(c.round(), 1);
    }

    #[test]
    fn deadline_closes_with_quorum_partial() {
        let mut c = joined(3);
        c.start_round(0).expect("quorum of 3");
        c.handle_control(submit(0, 0), 5).expect("update 0");
        c.handle_control(submit(1, 0), 6).expect("update 1");
        // Client 2 never submits; everyone keeps heartbeating.
        for client in 0..3 {
            c.handle_control(ControlFrame::Heartbeat { client, tick: 40 }, 40)
                .expect("beat");
        }
        assert!(c.tick(49).is_empty(), "before the deadline nothing closes");
        let effects = c.tick(50);
        let committed = effects.iter().any(
            |e| matches!(e, Effect::RoundCommitted { accepted, .. } if accepted == &vec![0, 1]),
        );
        assert!(
            committed,
            "partial close must commit the quorum: {effects:?}"
        );
    }

    #[test]
    fn deadline_without_quorum_aborts() {
        let mut c = joined(3);
        c.start_round(0).expect("quorum of 3");
        c.handle_control(submit(0, 0), 5).expect("update 0");
        for client in 0..3 {
            c.handle_control(ControlFrame::Heartbeat { client, tick: 40 }, 40)
                .expect("beat");
        }
        let effects = c.tick(50);
        assert!(
            effects.iter().any(|e| matches!(
                e,
                Effect::RoundAborted {
                    reason: AbortReason::QuorumMiss,
                    ..
                }
            )),
            "{effects:?}"
        );
        assert_eq!(c.phase(), Phase::RoundClosed);
    }

    #[test]
    fn expired_client_update_is_rejected_and_never_aggregated() {
        let mut c = joined(3);
        c.start_round(0).expect("quorum of 3");
        // Clients 0 and 1 keep their leases alive; client 2 goes silent.
        for tick in [10u64, 19] {
            for client in [0u64, 1] {
                c.handle_control(ControlFrame::Heartbeat { client, tick }, tick)
                    .expect("beat");
            }
        }
        // Client 2's lease (registered at 0, timeout 20) lapses at tick 20.
        let err = c.handle_control(submit(2, 0), 20);
        assert_eq!(err, Err(ProtoError::ExpiredClient { client: 2 }));
        assert_eq!(c.stats().expired_rejections, 1);
        // The others commit without it.
        c.handle_control(submit(0, 0), 21).expect("update 0");
        c.handle_control(submit(1, 0), 22).expect("update 1");
        for client in [0u64, 1] {
            c.handle_control(ControlFrame::Heartbeat { client, tick: 38 }, 38)
                .expect("beat");
        }
        let effects = c.tick(50);
        let accepted = effects.iter().find_map(|e| match e {
            Effect::RoundCommitted { accepted, .. } => Some(accepted.clone()),
            _ => None,
        });
        assert_eq!(accepted, Some(vec![0, 1]));
    }

    #[test]
    fn buffered_update_is_discarded_when_its_sender_expires() {
        let mut c = joined(3);
        c.start_round(0).expect("quorum of 3");
        // Client 2 submits while live, then goes silent past its lease.
        c.handle_control(submit(2, 0), 1).expect("in-time update");
        for tick in [10u64, 19, 28, 37, 46] {
            for client in [0u64, 1] {
                c.handle_control(ControlFrame::Heartbeat { client, tick }, tick)
                    .expect("beat");
            }
        }
        c.handle_control(submit(0, 0), 30).expect("update 0");
        // Every selected client has now delivered, so this submission
        // closes the round early — at tick 31, past client 2's lease.
        let effects = c.handle_control(submit(1, 0), 31).expect("update 1");
        let accepted = effects.iter().find_map(|e| match e {
            Effect::RoundCommitted { accepted, .. } => Some(accepted.clone()),
            _ => None,
        });
        // Client 2 expired at tick 20 < 31: its buffered update is void.
        assert_eq!(accepted, Some(vec![0, 1]));
        assert!(!c.update_payloads().contains_key(&2));
    }

    #[test]
    fn fleet_collapse_aborts_and_requests_replan() {
        let mut c = joined(2);
        c.start_round(0).expect("exactly at quorum");
        // Nobody heartbeats: both leases lapse at tick 20.
        let effects = c.tick(20);
        assert!(effects
            .iter()
            .any(|e| matches!(e, Effect::FleetShrunk { alive: 0, .. })));
        assert!(effects.iter().any(|e| matches!(
            e,
            Effect::RoundAborted {
                reason: AbortReason::FleetCollapse,
                ..
            }
        )));
    }

    #[test]
    fn shrunken_fleet_triggers_replan_hook_on_open() {
        let mut c = joined(1);
        // quorum is 2 > 1 live → cannot open.
        assert_eq!(
            c.start_round(5),
            Err(ProtoError::QuorumLost {
                round: 0,
                alive: 1,
                required: 2
            })
        );
        // Relax to a 1-quorum coordinator: opening with 1 < k = 2 live
        // clients emits the re-plan hook.
        let mut config = config();
        config.quorum = 1;
        let mut c = Coordinator::new(config);
        c.open_rendezvous().expect("idle");
        c.handle_control(
            ControlFrame::JoinRequest {
                client: 0,
                wire_version: WIRE_VERSION,
            },
            0,
        )
        .expect("join");
        let effects = c.start_round(1).expect("1-quorum");
        assert!(effects
            .iter()
            .any(|e| matches!(e, Effect::FleetShrunk { alive: 1, .. })));
    }

    #[test]
    fn wrong_wire_version_is_rejected_at_the_handshake() {
        let mut c = Coordinator::new(config());
        c.open_rendezvous().expect("idle");
        let err = c.handle_control(
            ControlFrame::JoinRequest {
                client: 0,
                wire_version: WIRE_VERSION + 1,
            },
            0,
        );
        assert_eq!(
            err,
            Err(ProtoError::VersionMismatch {
                expected: WIRE_VERSION,
                found: WIRE_VERSION + 1,
            })
        );
    }

    #[test]
    fn typed_rejections_cover_the_update_path() {
        let mut c = joined(3);
        c.start_round(0).expect("quorum");
        assert_eq!(
            c.handle_control(submit(0, 7), 1),
            Err(ProtoError::WrongRound { current: 0, got: 7 })
        );
        assert_eq!(
            c.handle_control(submit(9, 0), 1),
            Err(ProtoError::NotSelected { client: 9 })
        );
        c.handle_control(submit(0, 0), 1).expect("first");
        assert_eq!(
            c.handle_control(submit(0, 0), 2),
            Err(ProtoError::DuplicateUpdate { client: 0 })
        );
        // Downstream frames bounce with the state name.
        assert_eq!(
            c.handle_control(
                ControlFrame::RoundCommit {
                    round: 0,
                    accepted: vec![]
                },
                3
            ),
            Err(ProtoError::UnexpectedFrame {
                state: "Training",
                frame: "RoundCommit"
            })
        );
        assert_eq!(c.stats().rejected, 4);
    }

    #[test]
    fn byte_frames_round_trip_through_handle_frame() {
        let mut c = joined(3);
        c.start_round(0).expect("quorum");
        let bytes = submit(0, 0).encode();
        let before = c.stats();
        c.handle_frame(&bytes, 1).expect("framed update");
        let after = c.stats();
        assert_eq!(after.frames_in, before.frames_in + 1);
        assert_eq!(after.bytes_in - before.bytes_in, bytes.len() as u64);
        // Garbage bytes are a typed codec rejection, not a panic.
        assert!(matches!(
            c.handle_frame(&[0x00, 0x01, 0x02], 2),
            Err(ProtoError::Codec(_))
        ));
    }
}
