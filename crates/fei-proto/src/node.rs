//! Socket-driven protocol nodes and the frame-trace oracle.
//!
//! This module converts the simulated protocol into a runnable distributed
//! system: [`CoordinatorNode`] and [`ParticipantNode`] drive the *same*
//! [`Coordinator`]/[`Participant`] state machines the deterministic
//! [`crate::Cluster`] drives, but from real localhost TCP sockets
//! ([`fei_net::transport`]) instead of scripted ticks. The OS scheduler and
//! the kernel's read boundaries introduce nondeterminism — and the **frame
//! trace** pins it back down:
//!
//! * every input the coordinator's decision core consumes (delivered
//!   frames, round-open attempts, tick advances, recoveries) is recorded
//!   as a [`TraceEvent`] *before* it is applied;
//! * [`replay_trace`] re-drives a fresh decision core from the recorded
//!   events alone, with no sockets, producing a [`NodeAudit`];
//! * the conformance tests assert the live run's audit and the replayed
//!   audit are **bit-identical** — journal bytes, committed model bytes,
//!   round verdicts, and [`ControlStats`] — and cross-check the round
//!   outcomes against a matched deterministic [`crate::Cluster`] run.
//!
//! ## Crash-consistency protocol
//!
//! With a disk journal ([`crate::DiskJournal`]) and a trace file attached,
//! the per-event ordering is: trace append → apply → (if the journal grew)
//! trace fsync, then journal append + fsync → effects leave the node. The
//! trace is therefore always *ahead of or equal to* the journal on disk,
//! so a restarted coordinator first replays its own trace prefix through a
//! fresh core, verifies the disk journal is a byte prefix of the replayed
//! journal, and records a [`TraceEvent::Recover`] carrying the disk
//! journal's surviving length — which is exactly how the oracle replays
//! the same recovery later: by truncating its own (bit-identical) journal
//! to that length and handing it to [`Coordinator::recover`].
//!
//! Determinism hygiene: nodes pace themselves with cycle counters and
//! `thread::sleep`; there is no wall clock anywhere in this module, so the
//! `det-wallclock` lint holds for the whole crate.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use fei_net::codec::{decode_frame, encode_frame, len_u32, CodecError};
use fei_net::transport::{FrameConn, RawFrame};

use crate::cluster::RoundVerdict;
use crate::coordinator::{ControlStats, Coordinator, CoordinatorConfig, Effect};
use crate::error::ProtoError;
use crate::frames::{ControlFrame, PROTO_VERSION};
use crate::participant::{Participant, ParticipantConfig, ParticipantStats};
use crate::store::{DiskJournal, StoreError};

/// Trace record: the coordinator opened its rendezvous (fresh boot).
pub const TAG_TRACE_OPEN: u8 = 0x30;
/// Trace record: one inbound frame was delivered to the decision core.
pub const TAG_TRACE_DELIVER: u8 = 0x31;
/// Trace record: the node attempted to open the next round.
pub const TAG_TRACE_START_ROUND: u8 = 0x32;
/// Trace record: the node advanced the decision core's virtual clock.
pub const TAG_TRACE_TICK: u8 = 0x33;
/// Trace record: a restarted node recovered from the disk journal.
pub const TAG_TRACE_RECOVER: u8 = 0x34;

/// Every trace tag, in value order (disjoint from the control and journal
/// ranges — see the tag table in [`crate::frames`]).
pub const TRACE_TAGS: [u8; 5] = [
    TAG_TRACE_OPEN,
    TAG_TRACE_DELIVER,
    TAG_TRACE_START_ROUND,
    TAG_TRACE_TICK,
    TAG_TRACE_RECOVER,
];

/// One recorded input to the coordinator's decision core. The trace of
/// these events is a complete, replayable account of a socket run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Fresh boot: the rendezvous opened (always the first event).
    Open,
    /// An inbound frame, byte for byte as it arrived off the socket.
    Deliver {
        /// The node's tick when the frame was applied.
        tick: u64,
        /// The complete encoded frame.
        bytes: Vec<u8>,
    },
    /// A round-open attempt (recorded even when it fails quorum: the
    /// attempt expires leases, mutating the journal).
    StartRound {
        /// The tick of the attempt.
        tick: u64,
    },
    /// A virtual-clock advance (deadline and lease checks run here).
    Tick {
        /// The new tick.
        tick: u64,
    },
    /// A restarted node ran [`Coordinator::recover`] against the disk
    /// journal. `journal_len` is the length of the valid journal prefix
    /// that survived on disk — replay truncates its own journal to this
    /// length to reproduce the exact recovery input.
    Recover {
        /// The restarted node's starting tick.
        tick: u64,
        /// Bytes of journal that survived on disk (post torn-tail cut).
        journal_len: u64,
    },
}

fn take<'a>(bytes: &'a [u8], at: &mut usize, n: usize) -> Result<&'a [u8], ProtoError> {
    let end = at.checked_add(n).filter(|&end| end <= bytes.len());
    match end {
        Some(end) => {
            let slice = &bytes[*at..end];
            *at = end;
            Ok(slice)
        }
        None => Err(ProtoError::Codec(CodecError::Truncated {
            needed: at.saturating_add(n),
            available: bytes.len(),
        })),
    }
}

fn take_u64(bytes: &[u8], at: &mut usize) -> Result<u64, ProtoError> {
    let raw = take(bytes, at, 8)?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(raw);
    Ok(u64::from_be_bytes(buf))
}

impl TraceEvent {
    /// The frame-codec tag this event is persisted under.
    pub fn tag(&self) -> u8 {
        match self {
            TraceEvent::Open => TAG_TRACE_OPEN,
            TraceEvent::Deliver { .. } => TAG_TRACE_DELIVER,
            TraceEvent::StartRound { .. } => TAG_TRACE_START_ROUND,
            TraceEvent::Tick { .. } => TAG_TRACE_TICK,
            TraceEvent::Recover { .. } => TAG_TRACE_RECOVER,
        }
    }

    /// Human-readable event kind.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Open => "Open",
            TraceEvent::Deliver { .. } => "Deliver",
            TraceEvent::StartRound { .. } => "StartRound",
            TraceEvent::Tick { .. } => "Tick",
            TraceEvent::Recover { .. } => "Recover",
        }
    }

    /// The tick the event carries (0 for [`TraceEvent::Open`]).
    pub fn tick(&self) -> u64 {
        match self {
            TraceEvent::Open => 0,
            TraceEvent::Deliver { tick, .. }
            | TraceEvent::StartRound { tick }
            | TraceEvent::Tick { tick }
            | TraceEvent::Recover { tick, .. } => *tick,
        }
    }

    /// Serializes into a complete CRC32 frame (same container as control
    /// frames and journal records, so torn-tail detection is uniform).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = vec![PROTO_VERSION];
        match self {
            TraceEvent::Open => {}
            TraceEvent::Deliver { tick, bytes } => {
                payload.extend_from_slice(&tick.to_be_bytes());
                payload.extend_from_slice(&len_u32(bytes.len()).to_be_bytes());
                payload.extend_from_slice(bytes);
            }
            TraceEvent::StartRound { tick } | TraceEvent::Tick { tick } => {
                payload.extend_from_slice(&tick.to_be_bytes());
            }
            TraceEvent::Recover { tick, journal_len } => {
                payload.extend_from_slice(&tick.to_be_bytes());
                payload.extend_from_slice(&journal_len.to_be_bytes());
            }
        }
        encode_frame(self.tag(), &payload).to_vec()
    }

    /// Decodes one trace event from the front of `bytes`, returning the
    /// event and the bytes consumed.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Codec`] on framing/CRC failures,
    /// [`ProtoError::UnknownFrameType`] on a tag outside the trace space,
    /// [`ProtoError::VersionMismatch`] on a foreign version byte.
    pub fn decode(bytes: &[u8]) -> Result<(TraceEvent, usize), ProtoError> {
        let (frame, consumed) = decode_frame(bytes)?;
        let payload = &frame.payload[..];
        let mut at = 0;
        let version = take(payload, &mut at, 1)?[0];
        if version != PROTO_VERSION {
            return Err(ProtoError::VersionMismatch {
                expected: PROTO_VERSION,
                found: version,
            });
        }
        let event = match frame.msg_type {
            TAG_TRACE_OPEN => TraceEvent::Open,
            TAG_TRACE_DELIVER => {
                let tick = take_u64(payload, &mut at)?;
                let len_raw = take(payload, &mut at, 4)?;
                let mut len_buf = [0u8; 4];
                len_buf.copy_from_slice(len_raw);
                let len = u32::from_be_bytes(len_buf) as usize;
                TraceEvent::Deliver {
                    tick,
                    bytes: take(payload, &mut at, len)?.to_vec(),
                }
            }
            TAG_TRACE_START_ROUND => TraceEvent::StartRound {
                tick: take_u64(payload, &mut at)?,
            },
            TAG_TRACE_TICK => TraceEvent::Tick {
                tick: take_u64(payload, &mut at)?,
            },
            TAG_TRACE_RECOVER => TraceEvent::Recover {
                tick: take_u64(payload, &mut at)?,
                journal_len: take_u64(payload, &mut at)?,
            },
            tag => return Err(ProtoError::UnknownFrameType { tag }),
        };
        Ok((event, consumed))
    }
}

/// Errors from the socket nodes.
#[derive(Debug)]
pub enum NodeError {
    /// An OS-level error, tagged with the operation that failed.
    Io {
        /// What the node was doing.
        op: &'static str,
        /// The OS error text.
        message: String,
    },
    /// The disk journal store failed.
    Store(StoreError),
    /// A protocol-level failure that is not an ordinary frame rejection
    /// (e.g. a corrupt trace file, or recovery from a corrupt journal).
    Proto(ProtoError),
    /// The node exhausted its cycle budget before reaching its target —
    /// the liveness guard that keeps CI from hanging.
    CycleBudget {
        /// Cycles spent.
        cycles: u64,
    },
    /// The disk journal is not a byte prefix of the journal reconstructed
    /// by replaying the persisted trace: the two histories diverged and
    /// recovery must not guess.
    TraceDiverged {
        /// Valid journal bytes found on disk.
        journal_len: usize,
        /// Journal bytes the trace replay produced.
        replayed_len: usize,
    },
    /// A malformed daemon command-line argument.
    BadArg {
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Io { op, message } => write!(f, "node {op} failed: {message}"),
            NodeError::Store(e) => write!(f, "journal store: {e}"),
            NodeError::Proto(e) => write!(f, "protocol: {e}"),
            NodeError::CycleBudget { cycles } => {
                write!(f, "cycle budget exhausted after {cycles} cycles")
            }
            NodeError::TraceDiverged {
                journal_len,
                replayed_len,
            } => write!(
                f,
                "disk journal ({journal_len} bytes) is not a prefix of the \
                 trace-replayed journal ({replayed_len} bytes)"
            ),
            NodeError::BadArg { message } => write!(f, "bad argument: {message}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<StoreError> for NodeError {
    fn from(e: StoreError) -> Self {
        NodeError::Store(e)
    }
}

impl From<ProtoError> for NodeError {
    fn from(e: ProtoError) -> Self {
        NodeError::Proto(e)
    }
}

fn io_err(op: &'static str) -> impl FnOnce(std::io::Error) -> NodeError {
    move |e| NodeError::Io {
        op,
        message: e.to_string(),
    }
}

/// Append-only, torn-tail-aware persistence for the frame trace.
#[derive(Debug)]
pub struct TraceSink {
    file: File,
}

impl TraceSink {
    /// Creates (truncating) a fresh trace file.
    ///
    /// # Errors
    ///
    /// [`NodeError::Io`] on OS failures.
    pub fn create(path: &Path) -> Result<Self, NodeError> {
        let file = File::create(path).map_err(io_err("trace create"))?;
        Ok(Self { file })
    }

    /// Reopens an existing trace for appending: reads the surviving
    /// events, cuts a torn trailing record (truncating the file to the
    /// valid prefix), and returns the sink plus the prefix events.
    ///
    /// # Errors
    ///
    /// [`NodeError::Proto`] on mid-file corruption, [`NodeError::Io`] on
    /// OS failures.
    pub fn open_resume(path: &Path) -> Result<(Self, Vec<TraceEvent>), NodeError> {
        let bytes = std::fs::read(path).map_err(io_err("trace read"))?;
        let (events, valid) = decode_trace(&bytes)?;
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(io_err("trace open"))?;
        file.set_len(valid as u64)
            .map_err(io_err("trace truncate"))?;
        let mut file = file;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::Start(valid as u64))
            .map_err(io_err("trace seek"))?;
        Ok((Self { file }, events))
    }

    /// Appends one event (buffered; call [`TraceSink::sync`] to make it
    /// durable — the node does so before every journal fsync).
    ///
    /// # Errors
    ///
    /// [`NodeError::Io`] on OS failures.
    pub fn append(&mut self, event: &TraceEvent) -> Result<(), NodeError> {
        self.file
            .write_all(&event.encode())
            .map_err(io_err("trace append"))
    }

    /// `fdatasync`s the trace file.
    ///
    /// # Errors
    ///
    /// [`NodeError::Io`] on OS failures.
    pub fn sync(&mut self) -> Result<(), NodeError> {
        self.file.sync_data().map_err(io_err("trace fsync"))
    }
}

/// Decodes a byte buffer of trace records, tolerating a torn tail.
/// Returns the events and the valid prefix length.
fn decode_trace(bytes: &[u8]) -> Result<(Vec<TraceEvent>, usize), NodeError> {
    let mut events = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        match TraceEvent::decode(&bytes[at..]) {
            Ok((event, consumed)) => {
                events.push(event);
                at += consumed;
            }
            Err(ProtoError::Codec(CodecError::Truncated { .. })) => break,
            Err(e) => return Err(NodeError::Proto(e)),
        }
    }
    Ok((events, at))
}

/// Reads a trace file, tolerating a torn tail (reported as leftover
/// bytes). The file is not modified.
///
/// # Errors
///
/// [`NodeError::Io`] when the file cannot be read, [`NodeError::Proto`]
/// on mid-file corruption.
pub fn read_trace(path: &Path) -> Result<(Vec<TraceEvent>, usize), NodeError> {
    let bytes = std::fs::read(path).map_err(io_err("trace read"))?;
    let (events, valid) = decode_trace(&bytes)?;
    Ok((events, bytes.len() - valid))
}

/// Everything a run's coordinator decided, in comparable form. Two audits
/// being `==` means the underlying decision histories were bit-identical:
/// same journal bytes, same committed model payloads, same round verdicts,
/// same traffic counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeAudit {
    /// Traffic and verdict counters, folded across incarnations.
    pub stats: ControlStats,
    /// The write-ahead journal, byte for byte.
    pub journal: Vec<u8>,
    /// Every round verdict, in close order.
    pub round_log: Vec<RoundVerdict>,
    /// Committed model payloads: round → (client → (samples, bytes)),
    /// snapshotted at the commit instant.
    pub committed_models: BTreeMap<u64, BTreeMap<u64, (u32, Vec<u8>)>>,
    /// The final incarnation number.
    pub epoch: u64,
}

/// The shared decision core: a [`Coordinator`] plus the bookkeeping that
/// makes runs comparable ([`NodeAudit`]). Both the live socket node and
/// the trace-replay oracle drive **this** type with the same
/// [`TraceEvent`]s — conformance is structural, not aspirational.
#[derive(Debug)]
pub struct CoordinatorCore {
    config: CoordinatorConfig,
    global: Vec<u8>,
    coordinator: Coordinator,
    /// Stats of previous incarnations (folded in at each recovery).
    carry: ControlStats,
    round_log: Vec<RoundVerdict>,
    committed_models: BTreeMap<u64, BTreeMap<u64, (u32, Vec<u8>)>>,
}

impl CoordinatorCore {
    /// A fresh core (coordinator idle, rendezvous not yet open).
    pub fn new(config: CoordinatorConfig, global: Vec<u8>) -> Self {
        let mut coordinator = Coordinator::new(config.clone());
        coordinator.set_global(global.clone());
        Self {
            config,
            global,
            coordinator,
            carry: ControlStats::default(),
            round_log: Vec::new(),
            committed_models: BTreeMap::new(),
        }
    }

    /// The live coordinator.
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// Rounds that have closed (committed or aborted) across the run.
    pub fn rounds_closed(&self) -> u64 {
        self.round_log.len() as u64
    }

    /// Rounds that committed across the run.
    pub fn rounds_committed(&self) -> u64 {
        self.round_log.iter().filter(|v| v.committed).count() as u64
    }

    /// Traffic counters folded across incarnations.
    pub fn stats(&self) -> ControlStats {
        let mut stats = self.carry;
        stats.absorb(self.coordinator.stats());
        stats
    }

    /// Applies one event to the decision core, exactly as the live node
    /// does — this method *is* the conformance boundary.
    ///
    /// # Errors
    ///
    /// Frame rejections propagate as their typed [`ProtoError`] (already
    /// counted in the stats); replay callers ignore them, node callers
    /// may react (e.g. nudge an unknown client). Recovery errors mean a
    /// corrupt journal and are fatal.
    pub fn apply(&mut self, event: &TraceEvent) -> Result<Vec<Effect>, ProtoError> {
        match event {
            TraceEvent::Open => {
                self.coordinator.open_rendezvous()?;
                Ok(Vec::new())
            }
            TraceEvent::Deliver { tick, bytes } => {
                let effects = self.coordinator.handle_frame(bytes, *tick)?;
                self.observe(&effects, *tick);
                Ok(effects)
            }
            TraceEvent::StartRound { tick } => {
                // A failed attempt (quorum) still expired leases; the
                // journal mutation is the reason the attempt was recorded.
                let effects = self.coordinator.start_round(*tick).unwrap_or_default();
                self.observe(&effects, *tick);
                Ok(effects)
            }
            TraceEvent::Tick { tick } => {
                let effects = self.coordinator.tick(*tick);
                self.observe(&effects, *tick);
                Ok(effects)
            }
            TraceEvent::Recover { tick, journal_len } => {
                let len = usize::try_from(*journal_len)
                    .unwrap_or(usize::MAX)
                    .min(self.coordinator.journal().len());
                let bytes = self.coordinator.journal().bytes()[..len].to_vec();
                self.recover_from(&bytes, *tick)
            }
        }
    }

    /// Replaces the coordinator with one recovered from `journal_bytes`
    /// at `now`, folding the outgoing incarnation's stats into the carry.
    ///
    /// # Errors
    ///
    /// Journal decode errors from [`Coordinator::recover`].
    pub fn recover_from(
        &mut self,
        journal_bytes: &[u8],
        now: u64,
    ) -> Result<Vec<Effect>, ProtoError> {
        self.carry.absorb(self.coordinator.stats());
        let (mut recovered, effects) =
            Coordinator::recover(self.config.clone(), journal_bytes, now)?;
        recovered.set_global(self.global.clone());
        self.coordinator = recovered;
        self.observe(&effects, now);
        Ok(effects)
    }

    /// Records round verdicts and snapshots committed model payloads.
    fn observe(&mut self, effects: &[Effect], tick: u64) {
        for effect in effects {
            match effect {
                Effect::RoundCommitted { round, accepted } => {
                    self.round_log.push(RoundVerdict {
                        round: *round,
                        committed: true,
                        accepted: accepted.clone(),
                        closed_at: tick,
                        reason: None,
                    });
                    // The payload snapshot at the commit instant is the
                    // committed model set — identical capture point live
                    // and in replay.
                    self.committed_models
                        .insert(*round, self.coordinator.update_payloads().clone());
                }
                Effect::RoundAborted { round, reason } => {
                    self.round_log.push(RoundVerdict {
                        round: *round,
                        committed: false,
                        accepted: Vec::new(),
                        closed_at: tick,
                        reason: Some(*reason),
                    });
                }
                Effect::Send { .. } | Effect::FleetShrunk { .. } => {}
            }
        }
    }

    /// The comparable summary of everything decided so far.
    pub fn audit(&self) -> NodeAudit {
        NodeAudit {
            stats: self.stats(),
            journal: self.coordinator.journal().bytes().to_vec(),
            round_log: self.round_log.clone(),
            committed_models: self.committed_models.clone(),
            epoch: self.coordinator.epoch(),
        }
    }
}

/// The oracle: re-drives a fresh decision core from a recorded trace,
/// with no sockets and no clock. A socket run is *conformant* iff its
/// live [`NodeAudit`] equals `replay_trace` of its own trace.
pub fn replay_trace(config: &CoordinatorConfig, global: &[u8], events: &[TraceEvent]) -> NodeAudit {
    let mut core = CoordinatorCore::new(config.clone(), global.to_vec());
    for event in events {
        // Rejections are part of the recorded history: the live node
        // counted them in the stats and moved on, and so does the oracle.
        let _ = core.apply(event);
    }
    core.audit()
}

/// Where a participant finds the coordinator.
#[derive(Debug, Clone)]
pub enum CoordinatorAddr {
    /// A known socket address.
    Fixed(SocketAddr),
    /// A port file the coordinator (re)writes on every bind — reads
    /// re-resolve, so participants follow a respawned coordinator to its
    /// new ephemeral port.
    PortFile(PathBuf),
}

impl CoordinatorAddr {
    /// The current address, if resolvable.
    pub fn resolve(&self) -> Option<SocketAddr> {
        match self {
            CoordinatorAddr::Fixed(addr) => Some(*addr),
            CoordinatorAddr::PortFile(path) => {
                std::fs::read_to_string(path).ok()?.trim().parse().ok()
            }
        }
    }
}

/// Configuration of a [`CoordinatorNode`].
#[derive(Debug, Clone)]
pub struct CoordinatorNodeConfig {
    /// The protocol configuration (shared with the [`crate::Cluster`]
    /// oracle run in cross-checks).
    pub coordinator: CoordinatorConfig,
    /// Wire payload of the global model shipped in selection notices.
    pub global: Vec<u8>,
    /// Close this many rounds, then exit (0 = run until a
    /// [`ControlFrame::Shutdown`] arrives).
    pub target_rounds: u64,
    /// Liveness bound: give up (typed error) after this many cycles.
    pub max_cycles: u64,
    /// Sleep per cycle; one cycle advances the virtual clock one tick.
    pub cycle_sleep_ms: u64,
    /// Ticks a restarted node assumes passed while it was down (added to
    /// the last traced tick to form the recovery tick).
    pub restart_lag: u64,
}

impl CoordinatorNodeConfig {
    /// Defaults tuned for localhost test campaigns: 64-byte global,
    /// 5 target rounds, 1 ms cycles, a 60 000-cycle liveness bound.
    pub fn new(coordinator: CoordinatorConfig) -> Self {
        Self {
            coordinator,
            global: vec![0xAB; 64],
            target_rounds: 5,
            max_cycles: 60_000,
            cycle_sleep_ms: 1,
            restart_lag: 1,
        }
    }
}

/// Optional durability attachments for a [`CoordinatorNode`].
#[derive(Debug, Clone, Default)]
pub struct NodePersistence {
    /// Disk journal path ([`DiskJournal`] semantics: lock file, fsync'd
    /// appends, torn-tail cut on open).
    pub journal: Option<PathBuf>,
    /// Frame-trace path (created fresh, or resumed with its torn tail
    /// cut).
    pub trace: Option<PathBuf>,
    /// Port file to (re)write after binding, for
    /// [`CoordinatorAddr::PortFile`] followers.
    pub port_file: Option<PathBuf>,
}

/// What a coordinator node run produced.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// The live audit (compare with [`replay_trace`] of `trace`).
    pub audit: NodeAudit,
    /// The full in-memory trace, including any prefix recovered from disk.
    pub trace: Vec<TraceEvent>,
    /// Cycles spent.
    pub cycles: u64,
    /// Whether the run ended on a [`ControlFrame::Shutdown`] frame.
    pub shutdown: bool,
}

/// Cap on frames queued for a client that has no live connection;
/// participants retransmit, so dropping beyond the cap is safe.
const QUEUE_CAP: usize = 256;

struct ClientConn {
    conn: FrameConn,
    client: Option<u64>,
}

/// The coordinator as a socket server: accepts participant connections,
/// pumps frames into the shared decision core, and persists trace +
/// journal with the crash-consistency ordering described in the module
/// docs.
pub struct CoordinatorNode {
    config: CoordinatorNodeConfig,
    listener: TcpListener,
    conns: Vec<ClientConn>,
    /// Frames addressed to clients with no live connection (flushed when
    /// the client next identifies itself on a connection).
    queued: BTreeMap<u64, Vec<Vec<u8>>>,
    core: CoordinatorCore,
    trace: Vec<TraceEvent>,
    sink: Option<TraceSink>,
    store: Option<DiskJournal>,
    tick: u64,
    cycles: u64,
    shutdown: bool,
}

impl CoordinatorNode {
    /// Binds `listen` (e.g. `"127.0.0.1:0"`) and prepares the node —
    /// fresh, or recovered from the persisted trace + journal when the
    /// attached files carry a previous incarnation's history.
    ///
    /// # Errors
    ///
    /// [`NodeError::Io`] on bind/socket failures, [`NodeError::Store`] /
    /// [`NodeError::Proto`] on journal problems, and
    /// [`NodeError::TraceDiverged`] when the disk journal is not a prefix
    /// of the trace-replayed journal.
    pub fn start(
        listen: &str,
        config: CoordinatorNodeConfig,
        persist: NodePersistence,
    ) -> Result<Self, NodeError> {
        let listener = TcpListener::bind(listen).map_err(io_err("bind"))?;
        listener.set_nonblocking(true).map_err(io_err("bind"))?;
        if let Some(path) = &persist.port_file {
            write_port_file(path, &listener.local_addr().map_err(io_err("local addr"))?)?;
        }
        let (store, disk_prefix) = match &persist.journal {
            Some(path) => {
                let (store, prefix) = DiskJournal::open(path)?;
                (Some(store), prefix)
            }
            None => (None, Vec::new()),
        };
        let (sink, prefix_events) = match &persist.trace {
            Some(path) if path.exists() => {
                let (sink, events) = TraceSink::open_resume(path)?;
                (Some(sink), events)
            }
            Some(path) => (Some(TraceSink::create(path)?), Vec::new()),
            None => (None, Vec::new()),
        };

        let mut node = Self {
            core: CoordinatorCore::new(config.coordinator.clone(), config.global.clone()),
            config,
            listener,
            conns: Vec::new(),
            queued: BTreeMap::new(),
            trace: prefix_events,
            sink,
            store,
            tick: 0,
            cycles: 0,
            shutdown: false,
        };

        if !node.trace.is_empty() {
            // Restart with a trace: rebuild the previous incarnations'
            // exact decision state by replaying our own recorded history,
            // then recover from what the disk journal actually retained.
            let prefix = std::mem::take(&mut node.trace);
            for event in &prefix {
                let _ = node.core.apply(event);
            }
            node.trace = prefix;
            let replayed = node.core.coordinator().journal().bytes();
            if disk_prefix.len() > replayed.len()
                || replayed[..disk_prefix.len()] != disk_prefix[..]
            {
                return Err(NodeError::TraceDiverged {
                    journal_len: disk_prefix.len(),
                    replayed_len: replayed.len(),
                });
            }
            node.tick = last_tick(&node.trace) + node.config.restart_lag.max(1);
            let event = TraceEvent::Recover {
                tick: node.tick,
                journal_len: disk_prefix.len() as u64,
            };
            node.record(&event)?;
            let effects = node.core.apply(&event)?;
            node.sync_store()?;
            node.dispatch(effects);
        } else if !disk_prefix.is_empty() {
            // Journal without a trace: recover directly from disk.
            node.tick = node.config.restart_lag.max(1);
            let effects = node.core.recover_from(&disk_prefix, node.tick)?;
            node.sync_store()?;
            node.dispatch(effects);
        } else {
            let event = TraceEvent::Open;
            node.record(&event)?;
            node.core.apply(&event)?;
            node.sync_store()?;
        }
        Ok(node)
    }

    /// The bound listening address.
    ///
    /// # Errors
    ///
    /// [`NodeError::Io`] if the OS cannot report it.
    pub fn local_addr(&self) -> Result<SocketAddr, NodeError> {
        self.listener.local_addr().map_err(io_err("local addr"))
    }

    /// Runs until the round target is met, a shutdown frame arrives, or
    /// the cycle budget trips.
    ///
    /// # Errors
    ///
    /// [`NodeError::CycleBudget`] on the liveness bound; persistence and
    /// socket errors as their typed variants.
    pub fn run(&mut self) -> Result<NodeReport, NodeError> {
        loop {
            self.cycles += 1;
            self.tick += 1;
            if self.cycles > self.config.max_cycles {
                return Err(NodeError::CycleBudget {
                    cycles: self.cycles,
                });
            }
            self.accept_new();
            self.poll_connections()?;
            if self.shutdown {
                break;
            }
            self.maybe_start_round()?;
            self.advance_tick()?;
            if self.config.target_rounds > 0
                && self.core.rounds_closed() >= self.config.target_rounds
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(self.config.cycle_sleep_ms));
        }
        if let Some(mut sink) = self.sink.take() {
            sink.sync()?;
        }
        if let Some(store) = self.store.take() {
            store.close()?;
        }
        Ok(NodeReport {
            audit: self.core.audit(),
            trace: self.trace.clone(),
            cycles: self.cycles,
            shutdown: self.shutdown,
        })
    }

    fn accept_new(&mut self) {
        // WouldBlock = no pending connection; transient accept errors
        // (ECONNABORTED) just wait for the next cycle.
        while let Ok((stream, _)) = self.listener.accept() {
            if let Ok(conn) = FrameConn::from_stream(stream) {
                self.conns.push(ClientConn { conn, client: None });
            }
        }
    }

    fn poll_connections(&mut self) -> Result<(), NodeError> {
        let mut inbound: Vec<(usize, RawFrame)> = Vec::new();
        let mut dead: BTreeSet<usize> = BTreeSet::new();
        for (i, cc) in self.conns.iter_mut().enumerate() {
            loop {
                match cc.conn.poll() {
                    Ok(Some(raw)) => inbound.push((i, raw)),
                    Ok(None) => break,
                    // Closed, desync, or I/O failure: the frames already
                    // reassembled above still get delivered; the
                    // connection itself is dropped below.
                    Err(_) => {
                        dead.insert(i);
                        break;
                    }
                }
            }
        }
        for (i, raw) in inbound {
            self.on_frame(i, raw)?;
            if self.shutdown {
                break;
            }
        }
        if !dead.is_empty() {
            let mut index = 0;
            self.conns.retain(|_| {
                let keep = !dead.contains(&index);
                index += 1;
                keep
            });
        }
        Ok(())
    }

    fn on_frame(&mut self, conn_index: usize, raw: RawFrame) -> Result<(), NodeError> {
        let decoded = ControlFrame::decode(&raw.bytes)
            .ok()
            .map(|(frame, _)| frame);
        if let Some(frame) = &decoded {
            let from = match frame {
                ControlFrame::JoinRequest { client, .. }
                | ControlFrame::Heartbeat { client, .. }
                | ControlFrame::UpdateSubmit { client, .. }
                | ControlFrame::Resume { client, .. } => Some(*client),
                _ => None,
            };
            if let Some(client) = from {
                self.register(conn_index, client);
            }
        }
        let event = TraceEvent::Deliver {
            tick: self.tick,
            bytes: raw.bytes,
        };
        self.record(&event)?;
        let applied = self.core.apply(&event);
        self.sync_store()?;
        match applied {
            Ok(effects) => self.dispatch(effects),
            Err(ProtoError::UnknownClient { .. }) => {
                // Node-layer nudge (not part of the decision history): an
                // unknown sender is told the current epoch so it
                // renegotiates via Resume/rejoin.
                let notice = ControlFrame::EpochNotice {
                    epoch: self.core.coordinator().epoch(),
                    round: self.core.coordinator().round(),
                }
                .encode();
                if let Some(cc) = self.conns.get_mut(conn_index) {
                    let _ = cc.conn.send(&notice);
                }
            }
            // Any other rejection is typed, counted, and final.
            Err(_) => {}
        }
        if matches!(decoded, Some(ControlFrame::Shutdown)) {
            self.shutdown = true;
        }
        Ok(())
    }

    fn register(&mut self, conn_index: usize, client: u64) {
        if self
            .conns
            .get(conn_index)
            .is_some_and(|cc| cc.client == Some(client))
        {
            return;
        }
        if let Some(cc) = self.conns.get_mut(conn_index) {
            cc.client = Some(client);
        }
        if let Some(frames) = self.queued.remove(&client) {
            if let Some(cc) = self.conns.get_mut(conn_index) {
                for bytes in frames {
                    let _ = cc.conn.send(&bytes);
                }
            }
        }
    }

    fn maybe_start_round(&mut self) -> Result<(), NodeError> {
        use crate::coordinator::Phase;
        let target_met =
            self.config.target_rounds > 0 && self.core.rounds_closed() >= self.config.target_rounds;
        let phase = self.core.coordinator().phase();
        if target_met || !matches!(phase, Phase::Rendezvous | Phase::RoundClosed) {
            return Ok(());
        }
        // Gate on a live quorum so the trace is not flooded with doomed
        // attempts. The gate needs no determinism — only *recorded*
        // attempts are part of the replayable history.
        let live = self.core.coordinator().live_clients(self.tick).len();
        if live < self.config.coordinator.quorum {
            return Ok(());
        }
        let event = TraceEvent::StartRound { tick: self.tick };
        self.record(&event)?;
        let effects = self.core.apply(&event).unwrap_or_default();
        self.sync_store()?;
        self.dispatch(effects);
        Ok(())
    }

    fn advance_tick(&mut self) -> Result<(), NodeError> {
        let event = TraceEvent::Tick { tick: self.tick };
        self.record(&event)?;
        let effects = self.core.apply(&event).unwrap_or_default();
        self.sync_store()?;
        self.dispatch(effects);
        Ok(())
    }

    /// Appends to the in-memory trace and the sink (buffered; the sink is
    /// fsync'd before any journal fsync, keeping the trace ahead of the
    /// journal on disk).
    fn record(&mut self, event: &TraceEvent) -> Result<(), NodeError> {
        self.trace.push(event.clone());
        if let Some(sink) = self.sink.as_mut() {
            sink.append(event)?;
        }
        Ok(())
    }

    /// Makes the journal's new suffix durable (trace first, then journal
    /// — the write-ahead ordering both recovery paths rely on).
    fn sync_store(&mut self) -> Result<(), NodeError> {
        let Some(store) = self.store.as_mut() else {
            return Ok(());
        };
        let bytes = self.core.coordinator().journal().bytes();
        if bytes.len() > store.synced_len() {
            if let Some(sink) = self.sink.as_mut() {
                sink.sync()?;
            }
            store.sync_to(bytes)?;
        }
        Ok(())
    }

    fn dispatch(&mut self, effects: Vec<Effect>) {
        for effect in effects {
            if let Effect::Send { to, frame } = effect {
                self.deliver(to, frame.encode());
            }
        }
    }

    fn deliver(&mut self, to: u64, bytes: Vec<u8>) {
        if let Some(cc) = self.conns.iter_mut().find(|cc| cc.client == Some(to)) {
            if cc.conn.send(&bytes).is_ok() {
                return;
            }
        }
        let queue = self.queued.entry(to).or_default();
        if queue.len() < QUEUE_CAP {
            queue.push(bytes);
        }
    }
}

/// The last tick recorded in `events` (0 when empty).
fn last_tick(events: &[TraceEvent]) -> u64 {
    events.iter().map(TraceEvent::tick).max().unwrap_or(0)
}

/// Atomically (re)writes the coordinator's bound address for
/// [`CoordinatorAddr::PortFile`] followers.
fn write_port_file(path: &Path, addr: &SocketAddr) -> Result<(), NodeError> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, format!("{addr}\n")).map_err(io_err("port file write"))?;
    std::fs::rename(&tmp, path).map_err(io_err("port file rename"))
}

/// Configuration of a [`ParticipantNode`].
#[derive(Debug, Clone)]
pub struct ParticipantNodeConfig {
    /// The participant state-machine configuration.
    pub participant: ParticipantConfig,
    /// Sleep per cycle; one cycle advances the participant one tick.
    pub cycle_sleep_ms: u64,
    /// Liveness bound: stop after this many cycles regardless.
    pub max_cycles: u64,
    /// Cycles between reconnect attempts while disconnected.
    pub reconnect_cycles: u64,
}

impl ParticipantNodeConfig {
    /// Defaults matching [`CoordinatorNodeConfig::new`] pacing.
    pub fn new(participant: ParticipantConfig) -> Self {
        Self {
            participant,
            cycle_sleep_ms: 1,
            max_cycles: 120_000,
            reconnect_cycles: 10,
        }
    }
}

/// What a participant node run produced.
#[derive(Debug, Clone)]
pub struct ParticipantReport {
    /// The participant state machine's own counters.
    pub stats: ParticipantStats,
    /// Cycles spent.
    pub cycles: u64,
    /// Connections re-established after losing one (coordinator death,
    /// desync, or socket error).
    pub reconnects: u64,
}

/// A participant as a socket client: connects (and reconnects, following
/// the port file across coordinator respawns), pumps frames between the
/// socket and the [`Participant`] state machine, and stops when told.
pub struct ParticipantNode {
    addr: CoordinatorAddr,
    config: ParticipantNodeConfig,
}

impl ParticipantNode {
    /// Creates a node that will dial `addr`.
    pub fn new(addr: CoordinatorAddr, config: ParticipantNodeConfig) -> Self {
        Self { addr, config }
    }

    /// Runs until `stop` is raised or the cycle budget is spent. Frames
    /// emitted while disconnected are dropped — the protocol's
    /// retransmit-with-backoff recovers them, same as under the chaos
    /// link.
    ///
    /// # Errors
    ///
    /// Currently none are fatal (connection problems are retried, the
    /// budget is a clean stop); the `Result` keeps room for future typed
    /// failures.
    pub fn run(&mut self, stop: &AtomicBool) -> Result<ParticipantReport, NodeError> {
        let mut participant = Participant::new(self.config.participant.clone());
        let mut conn: Option<FrameConn> = None;
        let mut started = false;
        let mut reconnects = 0u64;
        let mut cycles = 0u64;
        for cycle in 1..=self.config.max_cycles {
            cycles = cycle;
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let now = cycle;
            if conn.is_none() && (cycle == 1 || cycle % self.config.reconnect_cycles == 0) {
                if let Some(addr) = self.addr.resolve() {
                    if let Ok(mut fresh) = FrameConn::connect(addr) {
                        if started {
                            reconnects += 1;
                        } else {
                            let join = participant.start(now);
                            let _ = fresh.send(&join.encode());
                            started = true;
                        }
                        conn = Some(fresh);
                    }
                }
            }
            let mut out: Vec<ControlFrame> = Vec::new();
            let mut lost = false;
            if let Some(c) = conn.as_mut() {
                loop {
                    match c.poll() {
                        Ok(Some(raw)) => {
                            // Rejections leave the machine unchanged; the
                            // coordinator's typed errors are its own
                            // bookkeeping.
                            if let Ok(frames) = participant.handle_frame(&raw.bytes, now) {
                                out.extend(frames);
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            lost = true;
                            break;
                        }
                    }
                }
            }
            out.extend(participant.tick(now));
            if let Some(c) = conn.as_mut() {
                if !lost {
                    for frame in &out {
                        if c.conn_send(frame).is_err() {
                            lost = true;
                            break;
                        }
                    }
                }
            }
            if lost {
                conn = None;
            }
            std::thread::sleep(Duration::from_millis(self.config.cycle_sleep_ms));
        }
        Ok(ParticipantReport {
            stats: participant.stats(),
            cycles,
            reconnects,
        })
    }
}

trait ConnSend {
    fn conn_send(&mut self, frame: &ControlFrame) -> Result<(), fei_net::TransportError>;
}

impl ConnSend for FrameConn {
    fn conn_send(&mut self, frame: &ControlFrame) -> Result<(), fei_net::TransportError> {
        self.send(&frame.encode())
    }
}

/// Full configuration of a coordinator daemon process — everything
/// `fei_coordinatord` (and the soak bin's self-spawned daemon role)
/// parses from its command line.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address (e.g. `"127.0.0.1:0"`).
    pub listen: String,
    /// Port file to advertise the bound address in.
    pub port_file: Option<PathBuf>,
    /// Disk journal path.
    pub journal: Option<PathBuf>,
    /// Frame-trace path.
    pub trace: Option<PathBuf>,
    /// Stats file written (atomically) on orderly exit.
    pub stats: Option<PathBuf>,
    /// The node configuration.
    pub node: CoordinatorNodeConfig,
}

impl DaemonConfig {
    /// Parses daemon arguments. Flags (all `--flag value`):
    /// `--listen`, `--port-file`, `--journal`, `--trace`, `--stats`,
    /// `--rounds`, `--max-cycles`, `--tick-ms`, `--restart-lag`,
    /// `--global-bytes`, `--k`, `--over-select`, `--quorum`, `--epochs`,
    /// `--heartbeat-interval`, `--heartbeat-timeout`, `--round-deadline`.
    ///
    /// # Errors
    ///
    /// [`NodeError::BadArg`] naming the offending flag or value.
    pub fn from_args(args: &[String]) -> Result<DaemonConfig, NodeError> {
        let mut config = DaemonConfig {
            listen: "127.0.0.1:0".to_string(),
            port_file: None,
            journal: None,
            trace: None,
            stats: None,
            node: CoordinatorNodeConfig::new(CoordinatorConfig {
                k: 3,
                over_select: 0,
                quorum: 2,
                epochs: 1,
                heartbeat_interval: 10,
                heartbeat_timeout: 200,
                round_deadline: 400,
            }),
        };
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let value = iter.next().ok_or_else(|| NodeError::BadArg {
                message: format!("{flag} needs a value"),
            })?;
            let bad = |message: String| NodeError::BadArg { message };
            let parse_u64 = |value: &String, flag: &str| {
                value.parse::<u64>().map_err(|_| NodeError::BadArg {
                    message: format!("{flag} wants an integer, got {value:?}"),
                })
            };
            match flag.as_str() {
                "--listen" => config.listen = value.clone(),
                "--port-file" => config.port_file = Some(PathBuf::from(value)),
                "--journal" => config.journal = Some(PathBuf::from(value)),
                "--trace" => config.trace = Some(PathBuf::from(value)),
                "--stats" => config.stats = Some(PathBuf::from(value)),
                "--rounds" => config.node.target_rounds = parse_u64(value, flag)?,
                "--max-cycles" => config.node.max_cycles = parse_u64(value, flag)?,
                "--tick-ms" => config.node.cycle_sleep_ms = parse_u64(value, flag)?,
                "--restart-lag" => config.node.restart_lag = parse_u64(value, flag)?,
                "--global-bytes" => {
                    config.node.global = vec![0xAB; parse_u64(value, flag)? as usize];
                }
                "--k" => config.node.coordinator.k = parse_u64(value, flag)? as usize,
                "--over-select" => {
                    config.node.coordinator.over_select = parse_u64(value, flag)? as usize;
                }
                "--quorum" => config.node.coordinator.quorum = parse_u64(value, flag)? as usize,
                "--epochs" => config.node.coordinator.epochs = parse_u64(value, flag)? as u32,
                "--heartbeat-interval" => {
                    config.node.coordinator.heartbeat_interval = parse_u64(value, flag)?;
                }
                "--heartbeat-timeout" => {
                    config.node.coordinator.heartbeat_timeout = parse_u64(value, flag)?;
                }
                "--round-deadline" => {
                    config.node.coordinator.round_deadline = parse_u64(value, flag)?;
                }
                other => return Err(bad(format!("unknown flag {other:?}"))),
            }
        }
        Ok(config)
    }
}

/// Runs a coordinator daemon to completion: start (fresh or recovered),
/// serve, and on orderly exit write the stats file atomically.
///
/// # Errors
///
/// Any [`NodeError`] from [`CoordinatorNode::start`] / `run`, or an I/O
/// error writing the stats file.
pub fn run_daemon(config: DaemonConfig) -> Result<NodeReport, NodeError> {
    let persist = NodePersistence {
        journal: config.journal.clone(),
        trace: config.trace.clone(),
        port_file: config.port_file.clone(),
    };
    let mut node = CoordinatorNode::start(&config.listen, config.node.clone(), persist)?;
    let report = node.run()?;
    if let Some(path) = &config.stats {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, format_stats(&report.audit.stats)).map_err(io_err("stats write"))?;
        std::fs::rename(&tmp, path).map_err(io_err("stats rename"))?;
    }
    Ok(report)
}

/// Serializes [`ControlStats`] as `key value` lines (the daemon's stats
/// file format; [`parse_stats`] is the inverse).
pub fn format_stats(stats: &ControlStats) -> String {
    let mut out = String::new();
    for (key, value) in stats_fields(stats) {
        out.push_str(&format!("{key} {value}\n"));
    }
    out
}

/// Parses a [`format_stats`] stats file. Unknown keys are ignored so the
/// format can grow; missing keys read as zero.
pub fn parse_stats(text: &str) -> ControlStats {
    let mut stats = ControlStats::default();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let (Some(key), Some(value)) = (parts.next(), parts.next()) else {
            continue;
        };
        let Ok(value) = value.parse::<u64>() else {
            continue;
        };
        match key {
            "frames_in" => stats.frames_in = value,
            "bytes_in" => stats.bytes_in = value,
            "frames_out" => stats.frames_out = value,
            "bytes_out" => stats.bytes_out = value,
            "rejected" => stats.rejected = value,
            "expired_rejections" => stats.expired_rejections = value,
            "committed_rounds" => stats.committed_rounds = value,
            "aborted_rounds" => stats.aborted_rounds = value,
            "aborts_quorum_miss" => stats.aborts.quorum_miss = value,
            "aborts_fleet_collapse" => stats.aborts.fleet_collapse = value,
            "aborts_cancelled" => stats.aborts.cancelled = value,
            "aborts_coordinator_crash" => stats.aborts.coordinator_crash = value,
            "resumed_rounds" => stats.resumed_rounds = value,
            "resumes_accepted" => stats.resumes_accepted = value,
            "resumes_rejoined" => stats.resumes_rejoined = value,
            "recovered_rejections" => stats.recovered_rejections = value,
            "wasted_update_bytes" => stats.wasted_update_bytes = value,
            _ => {}
        }
    }
    stats
}

fn stats_fields(stats: &ControlStats) -> [(&'static str, u64); 17] {
    [
        ("frames_in", stats.frames_in),
        ("bytes_in", stats.bytes_in),
        ("frames_out", stats.frames_out),
        ("bytes_out", stats.bytes_out),
        ("rejected", stats.rejected),
        ("expired_rejections", stats.expired_rejections),
        ("committed_rounds", stats.committed_rounds),
        ("aborted_rounds", stats.aborted_rounds),
        ("aborts_quorum_miss", stats.aborts.quorum_miss),
        ("aborts_fleet_collapse", stats.aborts.fleet_collapse),
        ("aborts_cancelled", stats.aborts.cancelled),
        ("aborts_coordinator_crash", stats.aborts.coordinator_crash),
        ("resumed_rounds", stats.resumed_rounds),
        ("resumes_accepted", stats.resumes_accepted),
        ("resumes_rejoined", stats.resumes_rejoined),
        ("recovered_rejections", stats.recovered_rejections),
        ("wasted_update_bytes", stats.wasted_update_bytes),
    ]
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicU64;

    use super::*;

    #[test]
    fn trace_tags_are_named_and_disjoint_from_control_and_journal() {
        // The executable reference for the wire-schema lint: every trace
        // tag named, valued, and outside the 0x10..=0x1A / 0x20..=0x26
        // ranges.
        let named: [(u8, &str); 5] = [
            (TAG_TRACE_OPEN, "TAG_TRACE_OPEN"),
            (TAG_TRACE_DELIVER, "TAG_TRACE_DELIVER"),
            (TAG_TRACE_START_ROUND, "TAG_TRACE_START_ROUND"),
            (TAG_TRACE_TICK, "TAG_TRACE_TICK"),
            (TAG_TRACE_RECOVER, "TAG_TRACE_RECOVER"),
        ];
        let values: Vec<u8> = named.iter().map(|&(t, _)| t).collect();
        assert_eq!(values, TRACE_TAGS, "table drifted from TRACE_TAGS");
        for (tag, name) in named {
            assert!(
                (0x30..=0x34).contains(&tag),
                "{name} (0x{tag:02x}) outside the trace range"
            );
            assert!(!crate::frames::CONTROL_TAGS.contains(&tag));
            assert!(!crate::journal::JOURNAL_TAGS.contains(&tag));
        }
    }

    fn all_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Open,
            TraceEvent::Deliver {
                tick: 3,
                bytes: ControlFrame::Heartbeat { client: 7, tick: 3 }.encode(),
            },
            TraceEvent::StartRound { tick: 5 },
            TraceEvent::Tick { tick: 6 },
            TraceEvent::Recover {
                tick: 9,
                journal_len: 42,
            },
        ]
    }

    #[test]
    fn every_trace_event_round_trips() {
        for event in all_events() {
            let bytes = event.encode();
            let (decoded, consumed) = TraceEvent::decode(&bytes)
                .unwrap_or_else(|e| panic!("{} failed: {e}", event.name()));
            assert_eq!(decoded, event);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn trace_decoding_tolerates_a_torn_tail_only() {
        let mut bytes = Vec::new();
        for event in all_events() {
            bytes.extend_from_slice(&event.encode());
        }
        let (events, valid) = decode_trace(&bytes).expect("clean trace");
        assert_eq!(events, all_events());
        assert_eq!(valid, bytes.len());
        // Torn tail: cut mid-record.
        let (events, valid) = decode_trace(&bytes[..bytes.len() - 3]).expect("torn tail ok");
        assert_eq!(events.len(), all_events().len() - 1);
        assert!(valid < bytes.len() - 3);
        // Mid-file corruption is fatal.
        let mut corrupt = bytes.clone();
        corrupt[2] ^= 0xFF;
        assert!(decode_trace(&corrupt).is_err());
    }

    static UNIQUE: AtomicU64 = AtomicU64::new(0);

    fn temp_path(tag: &str) -> PathBuf {
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("fei-node-{tag}-{}-{n}.bin", std::process::id()))
    }

    #[test]
    fn trace_sink_resume_cuts_torn_tail() {
        let path = temp_path("sink");
        let events = all_events();
        {
            let mut sink = TraceSink::create(&path).expect("create");
            for event in &events {
                sink.append(event).expect("append");
            }
            sink.sync().expect("sync");
        }
        // Tear the tail by hand.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 2]).expect("tear");
        let (mut sink, survivors) = TraceSink::open_resume(&path).expect("resume");
        assert_eq!(survivors.len(), events.len() - 1);
        sink.append(&TraceEvent::Tick { tick: 10 }).expect("append");
        sink.sync().expect("sync");
        let (reread, torn) = read_trace(&path).expect("reread");
        assert_eq!(torn, 0);
        assert_eq!(reread.len(), events.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_round_trip_through_the_file_format() {
        let mut stats = ControlStats {
            frames_in: 1,
            bytes_in: 2,
            frames_out: 3,
            bytes_out: 4,
            rejected: 5,
            expired_rejections: 6,
            committed_rounds: 7,
            aborted_rounds: 8,
            resumed_rounds: 9,
            resumes_accepted: 10,
            resumes_rejoined: 11,
            recovered_rejections: 12,
            wasted_update_bytes: 13,
            ..ControlStats::default()
        };
        stats.aborts.quorum_miss = 3;
        stats.aborts.fleet_collapse = 2;
        stats.aborts.cancelled = 2;
        stats.aborts.coordinator_crash = 1;
        assert_eq!(parse_stats(&format_stats(&stats)), stats);
    }

    #[test]
    fn daemon_args_parse_and_reject_typed() {
        let args: Vec<String> = [
            "--listen",
            "127.0.0.1:0",
            "--rounds",
            "7",
            "--k",
            "3",
            "--quorum",
            "2",
            "--tick-ms",
            "2",
            "--restart-lag",
            "5",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let config = DaemonConfig::from_args(&args).expect("parse");
        assert_eq!(config.node.target_rounds, 7);
        assert_eq!(config.node.coordinator.k, 3);
        assert_eq!(config.node.cycle_sleep_ms, 2);
        assert_eq!(config.node.restart_lag, 5);
        let bad = DaemonConfig::from_args(&["--rounds".to_string(), "x".to_string()]);
        assert!(matches!(bad, Err(NodeError::BadArg { .. })));
        let bad = DaemonConfig::from_args(&["--nope".to_string(), "1".to_string()]);
        assert!(matches!(bad, Err(NodeError::BadArg { .. })));
    }
}
