//! The participant-side protocol mirror.
//!
//! A [`Participant`] mirrors the coordinator's state machine from the edge
//! device's side: it joins (rejoining with deterministic backoff if the
//! handshake is lost), heartbeats on the interval granted by its
//! [`crate::ControlFrame::JoinAck`] lease, trains when selected, and
//! submits its update — retransmitting with exponential backoff until the
//! round's commit-or-abort broadcast arrives, so a dropped frame costs
//! retries, never a stuck device. When a recovered coordinator announces a
//! new incarnation ([`crate::ControlFrame::EpochNotice`]), the participant
//! enters [`ParticipantPhase::Resuming`] and negotiates session resume
//! with backoff; the coordinator's journal decides resume-vs-rejoin. Like
//! the coordinator it owns no transport and no clock: drivers feed frames
//! and ticks, it answers with frames to send.
//!
//! Retransmit discipline: backoff state (attempt counts, next-send ticks)
//! is only ever touched by the frame that *acknowledges* the pending
//! message — the round verdict for an update, the ack for a join or
//! resume. Unrelated inbound frames (duplicate acks, stale verdicts,
//! repeated epoch notices) never reset a schedule.

use crate::error::ProtoError;
use crate::frames::ControlFrame;

/// Participant configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParticipantConfig {
    /// This device's client id.
    pub client: u64,
    /// Virtual ticks one local training job takes.
    pub train_ticks: u64,
    /// Base backoff, ticks, for submission retransmits (doubled per
    /// attempt) and join retries.
    pub retry_base: u64,
    /// Retransmits after the first submission before giving up the round.
    pub max_retries: u32,
    /// A misbehaving device that never heartbeats — used by chaos
    /// campaigns to probe the coordinator's expiry safety invariant.
    pub mute_heartbeats: bool,
}

impl ParticipantConfig {
    /// A well-behaved participant with sane retry defaults.
    pub fn new(client: u64, train_ticks: u64) -> Self {
        Self {
            client,
            train_ticks,
            retry_base: 2,
            max_retries: 8,
            mute_heartbeats: false,
        }
    }
}

/// Participant protocol states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParticipantPhase {
    /// Not yet started.
    Idle,
    /// JoinRequest sent; waiting for the ack.
    Joining,
    /// Joined; waiting for a selection notice.
    Ready,
    /// Training a selected round.
    Training,
    /// Update submitted; awaiting the round verdict (retransmitting).
    Uploading,
    /// A recovered coordinator announced a new epoch; negotiating session
    /// resume (retransmitting [`crate::ControlFrame::Resume`]).
    Resuming,
}

impl ParticipantPhase {
    /// Human-readable state name, used in typed rejections.
    pub fn name(self) -> &'static str {
        match self {
            ParticipantPhase::Idle => "Idle",
            ParticipantPhase::Joining => "Joining",
            ParticipantPhase::Ready => "Ready",
            ParticipantPhase::Training => "Training",
            ParticipantPhase::Uploading => "Uploading",
            ParticipantPhase::Resuming => "Resuming",
        }
    }
}

/// Participant-side traffic and retry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParticipantStats {
    /// Join requests sent (first attempt and retries).
    pub joins: u64,
    /// Heartbeats sent.
    pub heartbeats: u64,
    /// Update submissions sent (first attempt and retransmits).
    pub submits: u64,
    /// Retransmissions among those submissions.
    pub retries: u64,
    /// Commit broadcasts received for rounds this device submitted to.
    pub commits: u64,
    /// Abort broadcasts received.
    pub aborts: u64,
    /// Resume requests sent (first attempt and retransmits).
    pub resumes: u64,
    /// Sessions carried across a coordinator restart by a resume ack.
    pub sessions_resumed: u64,
    /// Sessions the coordinator bounced into a full rejoin.
    pub sessions_rejoined: u64,
}

/// A pending (possibly retransmitting) update submission.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PendingUpload {
    round: u64,
    samples: u32,
    payload: Vec<u8>,
    attempts: u32,
    next_send: u64,
}

/// The participant state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Participant {
    config: ParticipantConfig,
    phase: ParticipantPhase,
    /// Heartbeat interval granted by the coordinator's lease (0 = none yet).
    heartbeat_interval: u64,
    last_beat: u64,
    /// Next tick a join (re)attempt fires while unacknowledged.
    next_join: u64,
    /// The round last selected for.
    round: u64,
    /// Tick local training completes.
    train_done: u64,
    /// Submission deadline announced by the selection notice.
    deadline_tick: u64,
    /// Global payload from the selection notice; by default echoed back as
    /// the update (drivers running real training call
    /// [`Participant::set_update`] before the job completes).
    global: Vec<u8>,
    update_override: Option<(u32, Vec<u8>)>,
    pending: Option<PendingUpload>,
    /// The newest coordinator epoch this device has confirmed (via ack).
    epoch: u64,
    /// The epoch announced by the notice currently being resumed toward.
    notice_epoch: u64,
    /// The phase to return to when a resume is granted.
    resume_from: ParticipantPhase,
    /// Resume retransmit schedule (exponential backoff, like uploads).
    resume_attempts: u32,
    next_resume: u64,
    stats: ParticipantStats,
}

impl Participant {
    /// Creates an idle participant.
    pub fn new(config: ParticipantConfig) -> Self {
        Self {
            config,
            phase: ParticipantPhase::Idle,
            heartbeat_interval: 0,
            last_beat: 0,
            next_join: 0,
            round: 0,
            train_done: 0,
            deadline_tick: 0,
            global: Vec::new(),
            update_override: None,
            pending: None,
            epoch: 0,
            notice_epoch: 0,
            resume_from: ParticipantPhase::Ready,
            resume_attempts: 0,
            next_resume: 0,
            stats: ParticipantStats::default(),
        }
    }

    /// The newest coordinator epoch this device has confirmed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// This device's client id.
    pub fn client(&self) -> u64 {
        self.config.client
    }

    /// Current protocol state.
    pub fn phase(&self) -> ParticipantPhase {
        self.phase
    }

    /// Traffic counters.
    pub fn stats(&self) -> ParticipantStats {
        self.stats
    }

    /// The global payload received with the last selection notice.
    pub fn global_payload(&self) -> &[u8] {
        &self.global
    }

    /// Overrides the update payload submitted for the current round (the
    /// default echoes the received global — a transport-level identity
    /// trainer).
    pub fn set_update(&mut self, samples: u32, payload: Vec<u8>) {
        self.update_override = Some((samples, payload));
    }

    /// Kicks off the join handshake at `now`, returning the first
    /// [`ControlFrame::JoinRequest`].
    pub fn start(&mut self, now: u64) -> ControlFrame {
        self.phase = ParticipantPhase::Joining;
        self.next_join = now + self.config.retry_base.max(1);
        self.stats.joins += 1;
        ControlFrame::JoinRequest {
            client: self.config.client,
            wire_version: fei_net::wire::WIRE_VERSION,
        }
    }

    /// Feeds one inbound byte frame at `now`, returning any frames to send
    /// in response.
    ///
    /// # Errors
    ///
    /// Any [`ProtoError`]; a rejection leaves the participant state
    /// unchanged. Never panics on wire input.
    pub fn handle_frame(
        &mut self,
        bytes: &[u8],
        now: u64,
    ) -> Result<Vec<ControlFrame>, ProtoError> {
        let (frame, _) = ControlFrame::decode(bytes)?;
        self.handle_control(frame, now)
    }

    /// Feeds one decoded control frame at `now` (the typed twin of
    /// [`Participant::handle_frame`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Participant::handle_frame`].
    pub fn handle_control(
        &mut self,
        frame: ControlFrame,
        now: u64,
    ) -> Result<Vec<ControlFrame>, ProtoError> {
        match frame {
            ControlFrame::JoinAck {
                client,
                heartbeat_interval,
                ..
            } => {
                self.check_recipient(client)?;
                // Only the ack that actually answers an outstanding join
                // takes effect. Duplicates (chaos duplication, acks racing
                // join retries) are pure no-ops — in particular they must
                // not touch the heartbeat or retransmit schedules.
                if self.phase == ParticipantPhase::Joining {
                    self.heartbeat_interval = heartbeat_interval as u64;
                    self.last_beat = now;
                    self.phase = ParticipantPhase::Ready;
                }
                Ok(Vec::new())
            }
            ControlFrame::Select {
                round,
                client,
                deadline_tick,
                global,
                ..
            } => {
                self.check_recipient(client)?;
                match self.phase {
                    ParticipantPhase::Idle | ParticipantPhase::Joining => {
                        Err(ProtoError::UnexpectedFrame {
                            state: self.phase.name(),
                            frame: "Select",
                        })
                    }
                    // A selection for an older round than one we already
                    // worked is stale (reordered or duplicated).
                    _ if self.phase != ParticipantPhase::Ready && round <= self.round => {
                        Err(ProtoError::WrongRound {
                            current: self.round,
                            got: round,
                        })
                    }
                    _ => {
                        self.round = round;
                        self.deadline_tick = deadline_tick;
                        self.global = global;
                        self.train_done = now + self.config.train_ticks;
                        self.update_override = None;
                        self.pending = None;
                        self.phase = ParticipantPhase::Training;
                        Ok(Vec::new())
                    }
                }
            }
            ControlFrame::RoundCommit { round, .. } => {
                if round == self.round && self.phase == ParticipantPhase::Uploading {
                    self.stats.commits += 1;
                }
                self.finish_round(round)
            }
            ControlFrame::RoundAbort { round, .. } => {
                if round == self.round && self.phase == ParticipantPhase::Uploading {
                    self.stats.aborts += 1;
                }
                self.finish_round(round)
            }
            ControlFrame::EpochNotice { epoch, .. } => self.on_epoch_notice(epoch, now),
            ControlFrame::ResumeAck {
                client,
                epoch,
                resume,
            } => {
                self.check_recipient(client)?;
                self.on_resume_ack(epoch, resume, now)
            }
            // Upstream frames have no participant-side transition.
            other => Err(ProtoError::UnexpectedFrame {
                state: self.phase.name(),
                frame: other.name(),
            }),
        }
    }

    /// A recovered coordinator announced incarnation `epoch`: enter the
    /// resume negotiation (keeping the interrupted session state on ice)
    /// and send the first resume request.
    fn on_epoch_notice(&mut self, epoch: u64, now: u64) -> Result<Vec<ControlFrame>, ProtoError> {
        match self.phase {
            ParticipantPhase::Idle => Err(ProtoError::UnexpectedFrame {
                state: self.phase.name(),
                frame: "EpochNotice",
            }),
            // Mid-handshake there is no session to resume; the join retry
            // loop already converges on the new incarnation.
            ParticipantPhase::Joining => Ok(Vec::new()),
            // A stale or duplicated notice must not restart the
            // negotiation (or reset its backoff).
            _ if epoch <= self.epoch
                || (self.phase == ParticipantPhase::Resuming && epoch <= self.notice_epoch) =>
            {
                Ok(Vec::new())
            }
            _ => {
                if self.phase != ParticipantPhase::Resuming {
                    self.resume_from = self.phase;
                }
                self.notice_epoch = epoch;
                self.phase = ParticipantPhase::Resuming;
                self.resume_attempts = 1;
                self.next_resume = now + self.config.retry_base.max(1) * 2;
                self.stats.resumes += 1;
                Ok(vec![self.resume_frame()])
            }
        }
    }

    /// The coordinator's resume verdict: restore the interrupted session,
    /// or fall back to a fresh join handshake.
    fn on_resume_ack(
        &mut self,
        epoch: u64,
        resume: bool,
        now: u64,
    ) -> Result<Vec<ControlFrame>, ProtoError> {
        if self.phase != ParticipantPhase::Resuming {
            // Duplicate ack after the negotiation ended: no-op — it must
            // not disturb any schedule.
            return Ok(Vec::new());
        }
        self.epoch = epoch.max(self.notice_epoch);
        if resume {
            self.stats.sessions_resumed += 1;
            self.last_beat = now;
            self.phase = self.resume_from;
            // The session survives, so an interrupted upload resumes
            // immediately — but the ack acknowledges the *resume*, not the
            // update, so the attempt count (and with it the backoff
            // schedule) is preserved.
            if let Some(pending) = &mut self.pending {
                pending.next_send = now;
            }
            Ok(Vec::new())
        } else {
            self.stats.sessions_rejoined += 1;
            self.heartbeat_interval = 0;
            self.pending = None;
            Ok(vec![self.start(now)])
        }
    }

    fn resume_frame(&self) -> ControlFrame {
        ControlFrame::Resume {
            client: self.config.client,
            epoch: self.epoch,
            last_round: self.round,
        }
    }

    /// Advances virtual time, returning frames due at `now`: join retries
    /// while unacknowledged, heartbeats on the lease interval, the
    /// submission when training completes, and backoff-scheduled
    /// retransmits while the round verdict is outstanding.
    pub fn tick(&mut self, now: u64) -> Vec<ControlFrame> {
        let mut out = Vec::new();
        if self.phase == ParticipantPhase::Joining && now >= self.next_join {
            // The join or its ack was lost: retry with linear backoff (the
            // handshake is idempotent).
            self.next_join = now + self.config.retry_base.max(1) * (1 + self.stats.joins.min(8));
            self.stats.joins += 1;
            out.push(ControlFrame::JoinRequest {
                client: self.config.client,
                wire_version: fei_net::wire::WIRE_VERSION,
            });
        }
        if self.heartbeat_interval > 0
            && !self.config.mute_heartbeats
            && !matches!(
                self.phase,
                ParticipantPhase::Idle | ParticipantPhase::Joining
            )
            && now.saturating_sub(self.last_beat) >= self.heartbeat_interval
        {
            self.last_beat = now;
            self.stats.heartbeats += 1;
            out.push(ControlFrame::Heartbeat {
                client: self.config.client,
                tick: now,
            });
        }
        if self.phase == ParticipantPhase::Training && now >= self.train_done {
            let (samples, payload) = self
                .update_override
                .take()
                .unwrap_or_else(|| (1, self.global.clone()));
            self.pending = Some(PendingUpload {
                round: self.round,
                samples,
                payload,
                attempts: 0,
                next_send: now,
            });
            self.phase = ParticipantPhase::Uploading;
        }
        if self.phase == ParticipantPhase::Resuming
            && now >= self.next_resume
            && self.resume_attempts <= self.config.max_retries
        {
            // The resume request or its ack was lost: retransmit with the
            // same exponential backoff as uploads.
            self.resume_attempts += 1;
            let shift = self.resume_attempts.min(16);
            self.next_resume = now + self.config.retry_base.max(1) * (1u64 << shift);
            self.stats.resumes += 1;
            out.push(self.resume_frame());
        }
        if self.phase == ParticipantPhase::Uploading {
            if let Some(pending) = &mut self.pending {
                if now >= pending.next_send && pending.attempts <= self.config.max_retries {
                    pending.attempts += 1;
                    // Exponential backoff, capped shift: base · 2^attempts.
                    let shift = pending.attempts.min(16);
                    pending.next_send = now + self.config.retry_base.max(1) * (1u64 << shift);
                    self.stats.submits += 1;
                    if pending.attempts > 1 {
                        self.stats.retries += 1;
                    }
                    out.push(ControlFrame::UpdateSubmit {
                        round: pending.round,
                        client: self.config.client,
                        samples: pending.samples,
                        update: pending.payload.clone(),
                    });
                }
            }
        }
        out
    }

    fn check_recipient(&self, client: u64) -> Result<(), ProtoError> {
        if client != self.config.client {
            return Err(ProtoError::WrongRecipient {
                client: self.config.client,
                got: client,
            });
        }
        Ok(())
    }

    /// Handles a round verdict: the matching round clears any pending
    /// upload; verdicts for other rounds are stale broadcasts and ignored.
    /// A verdict landing mid-resume settles the round (nothing left to
    /// retransmit) but the negotiation itself still awaits its ack.
    fn finish_round(&mut self, round: u64) -> Result<Vec<ControlFrame>, ProtoError> {
        if round == self.round {
            match self.phase {
                ParticipantPhase::Training | ParticipantPhase::Uploading => {
                    self.pending = None;
                    self.phase = ParticipantPhase::Ready;
                }
                ParticipantPhase::Resuming
                    if matches!(
                        self.resume_from,
                        ParticipantPhase::Training | ParticipantPhase::Uploading
                    ) =>
                {
                    self.pending = None;
                    self.resume_from = ParticipantPhase::Ready;
                }
                _ => {}
            }
        }
        Ok(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use crate::frames::AbortReason;

    use super::*;

    fn select(round: u64, client: u64, now: u64) -> ControlFrame {
        ControlFrame::Select {
            round,
            client,
            epochs: 5,
            deadline_tick: now + 50,
            global: vec![1, 2, 3],
        }
    }

    fn ack(client: u64) -> ControlFrame {
        ControlFrame::JoinAck {
            client,
            heartbeat_interval: 5,
            heartbeat_timeout: 20,
        }
    }

    fn ready_participant() -> Participant {
        let mut p = Participant::new(ParticipantConfig::new(7, 3));
        let join = p.start(0);
        assert!(matches!(join, ControlFrame::JoinRequest { client: 7, .. }));
        p.handle_control(ack(7), 1).expect("ack accepted");
        assert_eq!(p.phase(), ParticipantPhase::Ready);
        p
    }

    #[test]
    fn trains_then_submits_then_heartbeats() {
        let mut p = ready_participant();
        p.handle_control(select(0, 7, 2), 2).expect("selected");
        assert_eq!(p.phase(), ParticipantPhase::Training);
        assert!(p.tick(3).is_empty(), "still training");
        // Training done at 2 + 3 = 5; submission fires.
        let frames = p.tick(5);
        assert!(frames.iter().any(|f| matches!(
            f,
            ControlFrame::UpdateSubmit {
                round: 0,
                client: 7,
                ..
            }
        )));
        assert_eq!(p.phase(), ParticipantPhase::Uploading);
        // Heartbeats keep flowing on the lease interval.
        let frames = p.tick(6);
        assert!(frames
            .iter()
            .any(|f| matches!(f, ControlFrame::Heartbeat { client: 7, .. })));
    }

    #[test]
    fn default_update_echoes_the_global() {
        let mut p = ready_participant();
        p.handle_control(select(0, 7, 2), 2).expect("selected");
        let frames = p.tick(5);
        let update = frames.iter().find_map(|f| match f {
            ControlFrame::UpdateSubmit { update, .. } => Some(update.clone()),
            _ => None,
        });
        assert_eq!(update, Some(vec![1, 2, 3]));
    }

    #[test]
    fn retransmits_with_backoff_until_verdict() {
        let mut p = ready_participant();
        p.handle_control(select(0, 7, 0), 0).expect("selected");
        p.tick(3); // first submission at train_done = 3
        assert_eq!(p.stats().submits, 1);
        // Next send scheduled at 3 + 2·2 = 7.
        assert!(p
            .tick(6)
            .iter()
            .all(|f| !matches!(f, ControlFrame::UpdateSubmit { .. })));
        let frames = p.tick(7);
        assert!(frames
            .iter()
            .any(|f| matches!(f, ControlFrame::UpdateSubmit { .. })));
        assert_eq!(p.stats().retries, 1);
        // The commit stops the retransmit loop.
        p.handle_control(
            ControlFrame::RoundCommit {
                round: 0,
                accepted: vec![7],
            },
            8,
        )
        .expect("commit");
        assert_eq!(p.phase(), ParticipantPhase::Ready);
        assert_eq!(p.stats().commits, 1);
        for t in 9..200 {
            assert!(p
                .tick(t)
                .iter()
                .all(|f| !matches!(f, ControlFrame::UpdateSubmit { .. })));
        }
    }

    #[test]
    fn abort_clears_pending_and_counts() {
        let mut p = ready_participant();
        p.handle_control(select(0, 7, 0), 0).expect("selected");
        p.tick(3);
        p.handle_control(
            ControlFrame::RoundAbort {
                round: 0,
                reason: AbortReason::QuorumMiss,
            },
            4,
        )
        .expect("abort");
        assert_eq!(p.stats().aborts, 1);
        assert_eq!(p.phase(), ParticipantPhase::Ready);
        // A stale verdict for an old round is ignored, not an error.
        let stale = p.handle_control(
            ControlFrame::RoundAbort {
                round: 0,
                reason: AbortReason::QuorumMiss,
            },
            5,
        );
        assert_eq!(stale, Ok(Vec::new()));
    }

    #[test]
    fn join_retries_when_the_handshake_is_lost() {
        let mut p = Participant::new(ParticipantConfig::new(3, 2));
        p.start(0);
        let mut retries = 0;
        for t in 1..40 {
            retries += p
                .tick(t)
                .iter()
                .filter(|f| matches!(f, ControlFrame::JoinRequest { .. }))
                .count();
        }
        assert!(retries >= 2, "lost handshake must keep retrying");
        p.handle_control(ack(3), 40).expect("late ack");
        assert_eq!(p.phase(), ParticipantPhase::Ready);
        assert!(p
            .tick(41)
            .iter()
            .all(|f| !matches!(f, ControlFrame::JoinRequest { .. })));
    }

    #[test]
    fn version_mismatch_is_typed_on_the_participant_side() {
        // The coordinator (or an imposter) speaking a future protocol
        // version is rejected before any body parsing — the participant
        // direction of the handshake check.
        let mut p = ready_participant();
        let mut bytes = ack(7).encode();
        // Payload starts after the 7-byte header: flip the version byte and
        // refresh the CRC by re-encoding manually.
        let payload_start = 7;
        bytes[payload_start] = crate::frames::PROTO_VERSION + 3;
        let reframed = fei_net::codec::encode_frame(
            crate::frames::TAG_JOIN_ACK,
            &bytes[payload_start..bytes.len() - 4],
        )
        .to_vec();
        assert_eq!(
            p.handle_frame(&reframed, 2),
            Err(ProtoError::VersionMismatch {
                expected: crate::frames::PROTO_VERSION,
                found: crate::frames::PROTO_VERSION + 3,
            })
        );
    }

    #[test]
    fn misrouted_frames_are_typed() {
        let mut p = ready_participant();
        assert_eq!(
            p.handle_control(ack(9), 2),
            Err(ProtoError::WrongRecipient { client: 7, got: 9 })
        );
        assert_eq!(
            p.handle_control(select(0, 9, 2), 2),
            Err(ProtoError::WrongRecipient { client: 7, got: 9 })
        );
        // Upstream frames bounce.
        assert_eq!(
            p.handle_control(ControlFrame::Heartbeat { client: 7, tick: 0 }, 2),
            Err(ProtoError::UnexpectedFrame {
                state: "Ready",
                frame: "Heartbeat"
            })
        );
    }

    #[test]
    fn backoff_schedule_survives_unrelated_inbound_frames() {
        // Pin the retransmit schedule: with retry_base = 2 the submission
        // at train_done = 3 schedules retransmits at 3+4=7, 7+8=15,
        // 15+16=31, … Unrelated frames mid-backoff (duplicate JoinAck,
        // stale verdict for another round, stale epoch notice) must not
        // shift a single tick of it.
        let mut quiet = ready_participant();
        quiet.handle_control(select(0, 7, 0), 0).expect("selected");
        let mut noisy = quiet.clone();
        let mut quiet_sends = Vec::new();
        let mut noisy_sends = Vec::new();
        for t in 1..64u64 {
            if t == 9 {
                // Acknowledge nothing: none of these answer the pending
                // update.
                noisy.handle_control(ack(7), t).expect("duplicate ack");
                noisy
                    .handle_control(
                        ControlFrame::RoundCommit {
                            round: 99,
                            accepted: vec![7],
                        },
                        t,
                    )
                    .expect("stale verdict");
                noisy
                    .handle_control(ControlFrame::EpochNotice { epoch: 0, round: 0 }, t)
                    .expect("stale notice");
            }
            for (p, sends) in [
                (&mut quiet, &mut quiet_sends),
                (&mut noisy, &mut noisy_sends),
            ] {
                if p.tick(t)
                    .iter()
                    .any(|f| matches!(f, ControlFrame::UpdateSubmit { .. }))
                {
                    sends.push(t);
                }
            }
        }
        assert_eq!(quiet_sends, vec![3, 7, 15, 31, 63]);
        assert_eq!(noisy_sends, quiet_sends, "inbound noise shifted backoff");
    }

    #[test]
    fn epoch_notice_triggers_resume_and_session_survives() {
        let mut p = ready_participant();
        p.handle_control(select(0, 7, 0), 0).expect("selected");
        p.tick(3); // submission sent, attempts = 1
        assert_eq!(p.phase(), ParticipantPhase::Uploading);

        // The coordinator restarts as epoch 1.
        let frames = p
            .handle_control(ControlFrame::EpochNotice { epoch: 1, round: 0 }, 5)
            .expect("notice");
        assert_eq!(p.phase(), ParticipantPhase::Resuming);
        assert!(matches!(
            frames[0],
            ControlFrame::Resume {
                client: 7,
                epoch: 0,
                last_round: 0,
            }
        ));
        // A duplicated notice neither restarts nor re-sends.
        assert_eq!(
            p.handle_control(ControlFrame::EpochNotice { epoch: 1, round: 0 }, 6),
            Ok(Vec::new())
        );
        // No update retransmits while the session is unconfirmed.
        assert!(p
            .tick(7)
            .iter()
            .all(|f| !matches!(f, ControlFrame::UpdateSubmit { .. })));

        // Resume granted: upload continues immediately, attempts intact.
        p.handle_control(
            ControlFrame::ResumeAck {
                client: 7,
                epoch: 1,
                resume: true,
            },
            8,
        )
        .expect("resume ack");
        assert_eq!(p.phase(), ParticipantPhase::Uploading);
        assert_eq!(p.epoch(), 1);
        assert_eq!(p.stats().sessions_resumed, 1);
        let frames = p.tick(8);
        assert!(frames
            .iter()
            .any(|f| matches!(f, ControlFrame::UpdateSubmit { round: 0, .. })));
        // attempts was 1 before the crash, so this retransmit is the 2nd.
        assert_eq!(p.stats().retries, 1);
    }

    #[test]
    fn resume_request_retransmits_with_backoff_until_acked() {
        let mut p = ready_participant();
        p.handle_control(ControlFrame::EpochNotice { epoch: 1, round: 0 }, 0)
            .expect("notice");
        assert_eq!(p.stats().resumes, 1);
        let mut sends = Vec::new();
        for t in 1..40u64 {
            if p.tick(t)
                .iter()
                .any(|f| matches!(f, ControlFrame::Resume { .. }))
            {
                sends.push(t);
            }
        }
        // First send at 0 scheduled the retry at 4; then 4+8=12, 12+16=28.
        assert_eq!(sends, vec![4, 12, 28]);
    }

    #[test]
    fn resume_rejection_falls_back_to_rejoin() {
        let mut p = ready_participant();
        p.handle_control(ControlFrame::EpochNotice { epoch: 1, round: 0 }, 0)
            .expect("notice");
        let frames = p
            .handle_control(
                ControlFrame::ResumeAck {
                    client: 7,
                    epoch: 1,
                    resume: false,
                },
                2,
            )
            .expect("rejection");
        assert!(matches!(
            frames[0],
            ControlFrame::JoinRequest { client: 7, .. }
        ));
        assert_eq!(p.phase(), ParticipantPhase::Joining);
        assert_eq!(p.stats().sessions_rejoined, 1);
        assert_eq!(p.epoch(), 1);
        // The stale ResumeAck arriving again is a no-op.
        assert_eq!(
            p.handle_control(
                ControlFrame::ResumeAck {
                    client: 7,
                    epoch: 1,
                    resume: false,
                },
                3,
            ),
            Ok(Vec::new())
        );
    }

    #[test]
    fn verdict_landing_mid_resume_settles_the_round() {
        let mut p = ready_participant();
        p.handle_control(select(0, 7, 0), 0).expect("selected");
        p.tick(3);
        p.handle_control(ControlFrame::EpochNotice { epoch: 1, round: 0 }, 4)
            .expect("notice");
        // The reordered abort for our round arrives during the
        // negotiation: nothing left to retransmit afterwards.
        p.handle_control(
            ControlFrame::RoundAbort {
                round: 0,
                reason: AbortReason::CoordinatorCrash,
            },
            5,
        )
        .expect("abort");
        p.handle_control(
            ControlFrame::ResumeAck {
                client: 7,
                epoch: 1,
                resume: true,
            },
            6,
        )
        .expect("resume ack");
        assert_eq!(p.phase(), ParticipantPhase::Ready);
        for t in 7..60 {
            assert!(p
                .tick(t)
                .iter()
                .all(|f| !matches!(f, ControlFrame::UpdateSubmit { .. })));
        }
    }

    #[test]
    fn muted_participant_never_heartbeats() {
        let mut p = Participant::new(ParticipantConfig {
            mute_heartbeats: true,
            ..ParticipantConfig::new(1, 2)
        });
        p.start(0);
        p.handle_control(ack(1), 1).expect("ack");
        for t in 2..100 {
            assert!(p
                .tick(t)
                .iter()
                .all(|f| !matches!(f, ControlFrame::Heartbeat { .. })));
        }
    }
}
