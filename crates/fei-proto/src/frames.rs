//! Control-plane frames.
//!
//! Every protocol message rides the same CRC32-protected frame format as
//! the model payloads ([`fei_net::codec`]), so a single byte stream can
//! interleave control and data frames. Every control payload leads with a
//! one-byte protocol version that is checked *before* any body parsing —
//! a peer speaking a different protocol gets a typed
//! [`ProtoError::VersionMismatch`], not a confusing parse failure further
//! in.
//!
//! ## The authoritative tag table
//!
//! Model payload frames use low tags (caller-defined, below 0x10). The
//! protocol stack owns two disjoint ranges — `0x10..=0x1A` for the
//! control plane (this module) and `0x20..=0x26` for the durable round
//! journal ([`crate::journal`]):
//!
//! | Tag  | Constant              | Range   | Meaning                                |
//! |------|-----------------------|---------|----------------------------------------|
//! | 0x10 | `TAG_JOIN_REQUEST`    | control | participant asks to join the roster    |
//! | 0x11 | `TAG_JOIN_ACK`        | control | join accepted, heartbeat contract      |
//! | 0x12 | `TAG_HEARTBEAT`       | control | periodic liveness beacon               |
//! | 0x13 | `TAG_SELECT`          | control | round selection + global model         |
//! | 0x14 | `TAG_UPDATE_SUBMIT`   | control | trained-update submission              |
//! | 0x15 | `TAG_ROUND_ABORT`     | control | round closed without commit            |
//! | 0x16 | `TAG_ROUND_COMMIT`    | control | round committed, aggregated clients    |
//! | 0x17 | `TAG_EPOCH_NOTICE`    | control | recovered coordinator's new epoch      |
//! | 0x18 | `TAG_RESUME`          | control | participant asks to resume a session   |
//! | 0x19 | `TAG_RESUME_ACK`      | control | resume-vs-rejoin verdict               |
//! | 0x1A | `TAG_SHUTDOWN`        | control | supervisor-ordered graceful shutdown   |
//! | 0x20 | `TAG_EPOCH_STARTED`   | journal | incarnation began                      |
//! | 0x21 | `TAG_CLIENT_JOINED`   | journal | roster admission became durable        |
//! | 0x22 | `TAG_CLIENT_EXPIRED`  | journal | lease expiry became durable            |
//! | 0x23 | `TAG_ROUND_OPENED`    | journal | round selection became durable         |
//! | 0x24 | `TAG_UPDATE_ACCEPTED` | journal | accepted update became durable         |
//! | 0x25 | `TAG_ROUND_COMMITTED` | journal | commit became durable                  |
//! | 0x26 | `TAG_ROUND_ABORTED`   | journal | abort became durable                   |
//!
//! [`CONTROL_TAGS`] and [`crate::journal::JOURNAL_TAGS`] enumerate the
//! two ranges in code; a unit test asserts they stay disjoint, and the
//! `wire-schema` lint rule checks every tag is encoded, decoded, and
//! exercised by a test.
//!
//! Integers are big-endian throughout, matching the frame and wire codecs.

use fei_net::codec::{decode_frame, encode_frame, len_u32, FRAME_OVERHEAD};

use crate::error::ProtoError;

/// Version of the control-plane protocol this crate speaks.
pub const PROTO_VERSION: u8 = 1;

/// Tag space for control frames; model payload frames use low tags.
pub const TAG_JOIN_REQUEST: u8 = 0x10;
/// Coordinator's acceptance of a join, carrying the heartbeat contract.
pub const TAG_JOIN_ACK: u8 = 0x11;
/// Periodic liveness beacon from a participant.
pub const TAG_HEARTBEAT: u8 = 0x12;
/// Round-selection notice (with the global model payload) to one client.
pub const TAG_SELECT: u8 = 0x13;
/// A participant's trained-update submission.
pub const TAG_UPDATE_SUBMIT: u8 = 0x14;
/// Round closed without commit.
pub const TAG_ROUND_ABORT: u8 = 0x15;
/// Round committed, listing the aggregated clients.
pub const TAG_ROUND_COMMIT: u8 = 0x16;
/// Recovered coordinator announcing its new incarnation to the roster.
pub const TAG_EPOCH_NOTICE: u8 = 0x17;
/// Participant asking to resume its session after a coordinator restart.
pub const TAG_RESUME: u8 = 0x18;
/// Coordinator's resume-vs-rejoin verdict on a resume request.
pub const TAG_RESUME_ACK: u8 = 0x19;
/// Supervisor-ordered graceful shutdown of the coordinator process.
pub const TAG_SHUTDOWN: u8 = 0x1A;

/// Every control-plane tag, in value order — the code form of the tag
/// table in the module docs. New control frames must be added here (the
/// disjointness test in [`crate::journal`] walks this array).
pub const CONTROL_TAGS: [u8; 11] = [
    TAG_JOIN_REQUEST,
    TAG_JOIN_ACK,
    TAG_HEARTBEAT,
    TAG_SELECT,
    TAG_UPDATE_SUBMIT,
    TAG_ROUND_ABORT,
    TAG_ROUND_COMMIT,
    TAG_EPOCH_NOTICE,
    TAG_RESUME,
    TAG_RESUME_ACK,
    TAG_SHUTDOWN,
];

/// Why a coordinator aborted a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// Fewer updates than the quorum arrived by the deadline.
    QuorumMiss,
    /// The live fleet shrank below quorum mid-round.
    FleetCollapse,
    /// The driver cancelled the round.
    Cancelled,
    /// The coordinator crashed mid-round and recovery could not resume it
    /// inside the deadline budget.
    CoordinatorCrash,
}

impl AbortReason {
    /// One-byte wire representation.
    pub fn tag(self) -> u8 {
        match self {
            AbortReason::QuorumMiss => 0,
            AbortReason::FleetCollapse => 1,
            AbortReason::Cancelled => 2,
            AbortReason::CoordinatorCrash => 3,
        }
    }

    /// Parses the wire byte.
    pub fn from_tag(tag: u8) -> Option<AbortReason> {
        match tag {
            0 => Some(AbortReason::QuorumMiss),
            1 => Some(AbortReason::FleetCollapse),
            2 => Some(AbortReason::Cancelled),
            3 => Some(AbortReason::CoordinatorCrash),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AbortReason::QuorumMiss => "quorum miss",
            AbortReason::FleetCollapse => "fleet collapse",
            AbortReason::Cancelled => "cancelled",
            AbortReason::CoordinatorCrash => "coordinator crash",
        }
    }

    /// Every reason, in tag order (for breakdown tables).
    pub const ALL: [AbortReason; 4] = [
        AbortReason::QuorumMiss,
        AbortReason::FleetCollapse,
        AbortReason::Cancelled,
        AbortReason::CoordinatorCrash,
    ];
}

/// One control-plane message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlFrame {
    /// Participant → coordinator: request to join the federation,
    /// declaring the wire-codec version it encodes payloads with.
    JoinRequest {
        /// Joining client id.
        client: u64,
        /// Wire-codec version the client speaks
        /// ([`fei_net::wire::WIRE_VERSION`]).
        wire_version: u8,
    },
    /// Coordinator → participant: join accepted; heartbeat contract.
    JoinAck {
        /// The accepted client id.
        client: u64,
        /// Ticks between heartbeats the client must send.
        heartbeat_interval: u32,
        /// Ticks of silence after which the client is expired.
        heartbeat_timeout: u32,
    },
    /// Participant → coordinator: liveness beacon.
    Heartbeat {
        /// Sending client id.
        client: u64,
        /// The sender's local tick when the beacon was emitted.
        tick: u64,
    },
    /// Coordinator → participant: you are selected this round; train on
    /// the carried global model and submit before the deadline.
    Select {
        /// Round being opened.
        round: u64,
        /// Selected client id.
        client: u64,
        /// Local epochs to run.
        epochs: u32,
        /// Absolute tick after which submissions are not accepted.
        deadline_tick: u64,
        /// Wire-v2 payload of the global model.
        global: Vec<u8>,
    },
    /// Participant → coordinator: the trained update.
    UpdateSubmit {
        /// Round the update belongs to.
        round: u64,
        /// Submitting client id.
        client: u64,
        /// Local sample count (aggregation weight).
        samples: u32,
        /// Wire-v2 payload of the local model or delta.
        update: Vec<u8>,
    },
    /// Coordinator → participants: round closed without commit.
    RoundAbort {
        /// The aborted round.
        round: u64,
        /// Why it aborted.
        reason: AbortReason,
    },
    /// Coordinator → participants: round committed.
    RoundCommit {
        /// The committed round.
        round: u64,
        /// Clients whose updates were aggregated, ascending.
        accepted: Vec<u64>,
    },
    /// Coordinator → participant: a recovered coordinator announcing its
    /// new incarnation; the receiver must answer with [`Resume`] or rejoin.
    ///
    /// [`Resume`]: ControlFrame::Resume
    EpochNotice {
        /// The coordinator's journal epoch after recovery.
        epoch: u64,
        /// The round the recovered coordinator is at.
        round: u64,
    },
    /// Participant → coordinator: session-resume request after a
    /// coordinator restart, carrying the last state the participant saw.
    Resume {
        /// Resuming client id.
        client: u64,
        /// The newest coordinator epoch the client has observed.
        epoch: u64,
        /// The last round the client saw open (or closed).
        last_round: u64,
    },
    /// Coordinator → participant: resume verdict. `resume = true` keeps the
    /// session (lease re-armed, in-flight uploads still wanted);
    /// `resume = false` orders a fresh join handshake.
    ResumeAck {
        /// The client being answered.
        client: u64,
        /// The coordinator's current epoch.
        epoch: u64,
        /// Whether the session resumes (vs. full rejoin).
        resume: bool,
    },
    /// Supervisor → coordinator: shut down gracefully. An open round is
    /// cancelled ([`AbortReason::Cancelled`] journaled and broadcast) before
    /// the process exits; a coordinator between rounds just exits.
    Shutdown,
}

impl ControlFrame {
    /// The frame-codec tag this message is framed under.
    pub fn tag(&self) -> u8 {
        match self {
            ControlFrame::JoinRequest { .. } => TAG_JOIN_REQUEST,
            ControlFrame::JoinAck { .. } => TAG_JOIN_ACK,
            ControlFrame::Heartbeat { .. } => TAG_HEARTBEAT,
            ControlFrame::Select { .. } => TAG_SELECT,
            ControlFrame::UpdateSubmit { .. } => TAG_UPDATE_SUBMIT,
            ControlFrame::RoundAbort { .. } => TAG_ROUND_ABORT,
            ControlFrame::RoundCommit { .. } => TAG_ROUND_COMMIT,
            ControlFrame::EpochNotice { .. } => TAG_EPOCH_NOTICE,
            ControlFrame::Resume { .. } => TAG_RESUME,
            ControlFrame::ResumeAck { .. } => TAG_RESUME_ACK,
            ControlFrame::Shutdown => TAG_SHUTDOWN,
        }
    }

    /// Human-readable frame kind, used in typed rejections.
    pub fn name(&self) -> &'static str {
        match self {
            ControlFrame::JoinRequest { .. } => "JoinRequest",
            ControlFrame::JoinAck { .. } => "JoinAck",
            ControlFrame::Heartbeat { .. } => "Heartbeat",
            ControlFrame::Select { .. } => "Select",
            ControlFrame::UpdateSubmit { .. } => "UpdateSubmit",
            ControlFrame::RoundAbort { .. } => "RoundAbort",
            ControlFrame::RoundCommit { .. } => "RoundCommit",
            ControlFrame::EpochNotice { .. } => "EpochNotice",
            ControlFrame::Resume { .. } => "Resume",
            ControlFrame::ResumeAck { .. } => "ResumeAck",
            ControlFrame::Shutdown => "Shutdown",
        }
    }

    /// Exact encoded length (frame overhead + version byte + body).
    pub fn encoded_len(&self) -> usize {
        let body = match self {
            ControlFrame::JoinRequest { .. } => 8 + 1,
            ControlFrame::JoinAck { .. } => 8 + 4 + 4,
            ControlFrame::Heartbeat { .. } => 8 + 8,
            ControlFrame::Select { global, .. } => 8 + 8 + 4 + 8 + 4 + global.len(),
            ControlFrame::UpdateSubmit { update, .. } => 8 + 8 + 4 + 4 + update.len(),
            ControlFrame::RoundAbort { .. } => 8 + 1,
            ControlFrame::RoundCommit { accepted, .. } => 8 + 4 + 8 * accepted.len(),
            ControlFrame::EpochNotice { .. } => 8 + 8,
            ControlFrame::Resume { .. } => 8 + 8 + 8,
            ControlFrame::ResumeAck { .. } => 8 + 8 + 1,
            ControlFrame::Shutdown => 0,
        };
        FRAME_OVERHEAD + 1 + body
    }

    /// Serializes into a complete frame (magic, tag, length, payload, CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.encoded_len() - FRAME_OVERHEAD);
        payload.push(PROTO_VERSION);
        match self {
            ControlFrame::JoinRequest {
                client,
                wire_version,
            } => {
                payload.extend_from_slice(&client.to_be_bytes());
                payload.push(*wire_version);
            }
            ControlFrame::JoinAck {
                client,
                heartbeat_interval,
                heartbeat_timeout,
            } => {
                payload.extend_from_slice(&client.to_be_bytes());
                payload.extend_from_slice(&heartbeat_interval.to_be_bytes());
                payload.extend_from_slice(&heartbeat_timeout.to_be_bytes());
            }
            ControlFrame::Heartbeat { client, tick } => {
                payload.extend_from_slice(&client.to_be_bytes());
                payload.extend_from_slice(&tick.to_be_bytes());
            }
            ControlFrame::Select {
                round,
                client,
                epochs,
                deadline_tick,
                global,
            } => {
                payload.extend_from_slice(&round.to_be_bytes());
                payload.extend_from_slice(&client.to_be_bytes());
                payload.extend_from_slice(&epochs.to_be_bytes());
                payload.extend_from_slice(&deadline_tick.to_be_bytes());
                payload.extend_from_slice(&len_u32(global.len()).to_be_bytes());
                payload.extend_from_slice(global);
            }
            ControlFrame::UpdateSubmit {
                round,
                client,
                samples,
                update,
            } => {
                payload.extend_from_slice(&round.to_be_bytes());
                payload.extend_from_slice(&client.to_be_bytes());
                payload.extend_from_slice(&samples.to_be_bytes());
                payload.extend_from_slice(&len_u32(update.len()).to_be_bytes());
                payload.extend_from_slice(update);
            }
            ControlFrame::RoundAbort { round, reason } => {
                payload.extend_from_slice(&round.to_be_bytes());
                payload.push(reason.tag());
            }
            ControlFrame::RoundCommit { round, accepted } => {
                payload.extend_from_slice(&round.to_be_bytes());
                payload.extend_from_slice(&len_u32(accepted.len()).to_be_bytes());
                for client in accepted {
                    payload.extend_from_slice(&client.to_be_bytes());
                }
            }
            ControlFrame::EpochNotice { epoch, round } => {
                payload.extend_from_slice(&epoch.to_be_bytes());
                payload.extend_from_slice(&round.to_be_bytes());
            }
            ControlFrame::Resume {
                client,
                epoch,
                last_round,
            } => {
                payload.extend_from_slice(&client.to_be_bytes());
                payload.extend_from_slice(&epoch.to_be_bytes());
                payload.extend_from_slice(&last_round.to_be_bytes());
            }
            ControlFrame::ResumeAck {
                client,
                epoch,
                resume,
            } => {
                payload.extend_from_slice(&client.to_be_bytes());
                payload.extend_from_slice(&epoch.to_be_bytes());
                payload.push(u8::from(*resume));
            }
            ControlFrame::Shutdown => {}
        }
        encode_frame(self.tag(), &payload).to_vec()
    }

    /// Decodes one control frame from the front of `bytes`, returning the
    /// message and the bytes consumed.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Codec`] on framing/CRC failures,
    /// [`ProtoError::UnknownFrameType`] on a tag outside the control space,
    /// and [`ProtoError::VersionMismatch`] when the payload's leading
    /// version byte differs from [`PROTO_VERSION`] — checked before any
    /// body field is parsed.
    pub fn decode(bytes: &[u8]) -> Result<(ControlFrame, usize), ProtoError> {
        let (frame, consumed) = decode_frame(bytes)?;
        let payload = &frame.payload[..];
        let mut reader = Reader::new(payload);
        let version = reader.u8()?;
        if version != PROTO_VERSION {
            return Err(ProtoError::VersionMismatch {
                expected: PROTO_VERSION,
                found: version,
            });
        }
        let message = match frame.msg_type {
            TAG_JOIN_REQUEST => ControlFrame::JoinRequest {
                client: reader.u64()?,
                wire_version: reader.u8()?,
            },
            TAG_JOIN_ACK => ControlFrame::JoinAck {
                client: reader.u64()?,
                heartbeat_interval: reader.u32()?,
                heartbeat_timeout: reader.u32()?,
            },
            TAG_HEARTBEAT => ControlFrame::Heartbeat {
                client: reader.u64()?,
                tick: reader.u64()?,
            },
            TAG_SELECT => {
                let round = reader.u64()?;
                let client = reader.u64()?;
                let epochs = reader.u32()?;
                let deadline_tick = reader.u64()?;
                let len = reader.u32()? as usize;
                ControlFrame::Select {
                    round,
                    client,
                    epochs,
                    deadline_tick,
                    global: reader.bytes(len)?.to_vec(),
                }
            }
            TAG_UPDATE_SUBMIT => {
                let round = reader.u64()?;
                let client = reader.u64()?;
                let samples = reader.u32()?;
                let len = reader.u32()? as usize;
                ControlFrame::UpdateSubmit {
                    round,
                    client,
                    samples,
                    update: reader.bytes(len)?.to_vec(),
                }
            }
            TAG_ROUND_ABORT => {
                let round = reader.u64()?;
                let tag = reader.u8()?;
                let reason =
                    AbortReason::from_tag(tag).ok_or(ProtoError::UnknownFrameType { tag })?;
                ControlFrame::RoundAbort { round, reason }
            }
            TAG_ROUND_COMMIT => {
                let round = reader.u64()?;
                let count = reader.u32()? as usize;
                let mut accepted = Vec::with_capacity(count.min(payload.len() / 8));
                for _ in 0..count {
                    accepted.push(reader.u64()?);
                }
                ControlFrame::RoundCommit { round, accepted }
            }
            TAG_EPOCH_NOTICE => ControlFrame::EpochNotice {
                epoch: reader.u64()?,
                round: reader.u64()?,
            },
            TAG_RESUME => ControlFrame::Resume {
                client: reader.u64()?,
                epoch: reader.u64()?,
                last_round: reader.u64()?,
            },
            TAG_RESUME_ACK => {
                let client = reader.u64()?;
                let epoch = reader.u64()?;
                let resume = match reader.u8()? {
                    0 => false,
                    1 => true,
                    tag => return Err(ProtoError::UnknownFrameType { tag }),
                };
                ControlFrame::ResumeAck {
                    client,
                    epoch,
                    resume,
                }
            }
            TAG_SHUTDOWN => ControlFrame::Shutdown,
            tag => return Err(ProtoError::UnknownFrameType { tag }),
        };
        Ok((message, consumed))
    }
}

/// Bounds-checked big-endian payload reader.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.at..end];
                self.at = end;
                Ok(slice)
            }
            None => Err(ProtoError::Codec(fei_net::CodecError::Truncated {
                needed: self.at.saturating_add(n),
                available: self.bytes.len(),
            })),
        }
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let raw = self.bytes(4)?;
        let mut buf = [0u8; 4];
        buf.copy_from_slice(raw);
        Ok(u32::from_be_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let raw = self.bytes(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(raw);
        Ok(u64::from_be_bytes(buf))
    }
}

/// Encoded length of a heartbeat frame.
pub fn heartbeat_frame_len() -> usize {
    FRAME_OVERHEAD + 1 + 16
}

/// Encoded length of a join-request frame.
pub fn join_request_frame_len() -> usize {
    FRAME_OVERHEAD + 1 + 9
}

/// Encoded length of a join-ack frame.
pub fn join_ack_frame_len() -> usize {
    FRAME_OVERHEAD + 1 + 16
}

/// Encoded length of a selection notice carrying a `payload`-byte global.
pub fn select_frame_len(payload: usize) -> usize {
    FRAME_OVERHEAD + 1 + 32 + payload
}

/// Encoded length of an update submission carrying a `payload`-byte model.
pub fn update_submit_frame_len(payload: usize) -> usize {
    FRAME_OVERHEAD + 1 + 24 + payload
}

/// Encoded length of a commit broadcast naming `accepted` clients.
pub fn commit_frame_len(accepted: usize) -> usize {
    FRAME_OVERHEAD + 1 + 12 + 8 * accepted
}

/// Encoded length of an abort broadcast.
pub fn abort_frame_len() -> usize {
    FRAME_OVERHEAD + 1 + 9
}

/// Encoded length of an epoch notice.
pub fn epoch_notice_frame_len() -> usize {
    FRAME_OVERHEAD + 1 + 16
}

/// Encoded length of a session-resume request.
pub fn resume_frame_len() -> usize {
    FRAME_OVERHEAD + 1 + 24
}

/// Encoded length of a resume verdict.
pub fn resume_ack_frame_len() -> usize {
    FRAME_OVERHEAD + 1 + 17
}

/// Encoded length of a shutdown order.
pub fn shutdown_frame_len() -> usize {
    FRAME_OVERHEAD + 1
}

/// Control-plane bytes one engine-driven round moves, for energy
/// accounting: a selection notice down to every selected device, one
/// heartbeat up from every device that was up (`heartbeats`), and the
/// commit-or-abort broadcast back down to every selected device. The model
/// payloads themselves ride the data-plane frames and are charged
/// separately.
pub fn control_round_bytes(
    selected: usize,
    heartbeats: usize,
    committed: bool,
    accepted: usize,
) -> u64 {
    let close = if committed {
        commit_frame_len(accepted)
    } else {
        abort_frame_len()
    };
    let down = selected as u64 * (select_frame_len(0) + close) as u64;
    let up = heartbeats as u64 * heartbeat_frame_len() as u64;
    down + up
}

#[cfg(test)]
mod tests {
    use fei_net::codec::encode_frame;
    use fei_net::CodecError;

    use super::*;

    fn all_frames() -> Vec<ControlFrame> {
        vec![
            ControlFrame::JoinRequest {
                client: 7,
                wire_version: fei_net::wire::WIRE_VERSION,
            },
            ControlFrame::JoinAck {
                client: 7,
                heartbeat_interval: 5,
                heartbeat_timeout: 20,
            },
            ControlFrame::Heartbeat {
                client: 7,
                tick: 99,
            },
            ControlFrame::Select {
                round: 3,
                client: 7,
                epochs: 10,
                deadline_tick: 140,
                global: vec![1, 2, 3, 4, 5],
            },
            ControlFrame::UpdateSubmit {
                round: 3,
                client: 7,
                samples: 120,
                update: vec![9, 8, 7],
            },
            ControlFrame::RoundAbort {
                round: 3,
                reason: AbortReason::QuorumMiss,
            },
            ControlFrame::RoundCommit {
                round: 3,
                accepted: vec![1, 4, 7],
            },
            ControlFrame::EpochNotice { epoch: 2, round: 3 },
            ControlFrame::Resume {
                client: 7,
                epoch: 1,
                last_round: 3,
            },
            ControlFrame::ResumeAck {
                client: 7,
                epoch: 2,
                resume: true,
            },
            ControlFrame::ResumeAck {
                client: 7,
                epoch: 2,
                resume: false,
            },
            ControlFrame::Shutdown,
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in all_frames() {
            let bytes = frame.encode();
            assert_eq!(bytes.len(), frame.encoded_len(), "{}", frame.name());
            let (decoded, consumed) = ControlFrame::decode(&bytes)
                .unwrap_or_else(|e| panic!("{} failed: {e}", frame.name()));
            assert_eq!(decoded, frame);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn length_helpers_match_encodings() {
        assert_eq!(
            heartbeat_frame_len(),
            ControlFrame::Heartbeat { client: 0, tick: 0 }.encoded_len()
        );
        assert_eq!(
            join_request_frame_len(),
            ControlFrame::JoinRequest {
                client: 0,
                wire_version: 2
            }
            .encoded_len()
        );
        assert_eq!(
            join_ack_frame_len(),
            ControlFrame::JoinAck {
                client: 0,
                heartbeat_interval: 1,
                heartbeat_timeout: 2
            }
            .encoded_len()
        );
        assert_eq!(
            select_frame_len(17),
            ControlFrame::Select {
                round: 0,
                client: 0,
                epochs: 1,
                deadline_tick: 2,
                global: vec![0; 17]
            }
            .encoded_len()
        );
        assert_eq!(
            update_submit_frame_len(9),
            ControlFrame::UpdateSubmit {
                round: 0,
                client: 0,
                samples: 1,
                update: vec![0; 9]
            }
            .encoded_len()
        );
        assert_eq!(
            commit_frame_len(3),
            ControlFrame::RoundCommit {
                round: 0,
                accepted: vec![0, 1, 2]
            }
            .encoded_len()
        );
        assert_eq!(
            abort_frame_len(),
            ControlFrame::RoundAbort {
                round: 0,
                reason: AbortReason::Cancelled
            }
            .encoded_len()
        );
        assert_eq!(
            epoch_notice_frame_len(),
            ControlFrame::EpochNotice { epoch: 0, round: 0 }.encoded_len()
        );
        assert_eq!(
            resume_frame_len(),
            ControlFrame::Resume {
                client: 0,
                epoch: 0,
                last_round: 0
            }
            .encoded_len()
        );
        assert_eq!(
            resume_ack_frame_len(),
            ControlFrame::ResumeAck {
                client: 0,
                epoch: 0,
                resume: true
            }
            .encoded_len()
        );
        assert_eq!(shutdown_frame_len(), ControlFrame::Shutdown.encoded_len());
    }

    #[test]
    fn abort_reasons_round_trip_tags() {
        for reason in AbortReason::ALL {
            assert_eq!(AbortReason::from_tag(reason.tag()), Some(reason));
        }
        assert_eq!(AbortReason::from_tag(AbortReason::ALL.len() as u8), None);
    }

    #[test]
    fn bad_resume_verdict_byte_is_rejected() {
        let mut payload = vec![PROTO_VERSION];
        payload.extend_from_slice(&7u64.to_be_bytes());
        payload.extend_from_slice(&2u64.to_be_bytes());
        payload.push(9);
        let bytes = encode_frame(TAG_RESUME_ACK, &payload).to_vec();
        assert_eq!(
            ControlFrame::decode(&bytes),
            Err(ProtoError::UnknownFrameType { tag: 9 })
        );
    }

    #[test]
    fn version_mismatch_is_typed_not_a_crc_failure() {
        // A well-formed frame (valid CRC) from a future protocol version:
        // the rejection must name the version, not fall through to a
        // checksum or parse error.
        let mut payload = vec![PROTO_VERSION + 1];
        payload.extend_from_slice(&7u64.to_be_bytes());
        payload.extend_from_slice(&42u64.to_be_bytes());
        let bytes = encode_frame(TAG_HEARTBEAT, &payload).to_vec();
        assert_eq!(
            ControlFrame::decode(&bytes),
            Err(ProtoError::VersionMismatch {
                expected: PROTO_VERSION,
                found: PROTO_VERSION + 1,
            })
        );
    }

    #[test]
    fn corrupted_frames_are_codec_errors() {
        let mut bytes = ControlFrame::Heartbeat { client: 1, tick: 2 }.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert_eq!(
            ControlFrame::decode(&bytes),
            Err(ProtoError::Codec(CodecError::ChecksumMismatch))
        );
    }

    #[test]
    fn unknown_tags_and_truncated_bodies_are_typed() {
        let bytes = encode_frame(0x7E, &[PROTO_VERSION, 0, 0]).to_vec();
        assert_eq!(
            ControlFrame::decode(&bytes),
            Err(ProtoError::UnknownFrameType { tag: 0x7E })
        );
        // A heartbeat body cut short (but correctly framed and checksummed).
        let bytes = encode_frame(TAG_HEARTBEAT, &[PROTO_VERSION, 1, 2, 3]).to_vec();
        assert!(matches!(
            ControlFrame::decode(&bytes),
            Err(ProtoError::Codec(CodecError::Truncated { .. }))
        ));
    }

    #[test]
    fn bad_abort_reason_is_rejected() {
        let mut payload = vec![PROTO_VERSION];
        payload.extend_from_slice(&1u64.to_be_bytes());
        payload.push(9);
        let bytes = encode_frame(TAG_ROUND_ABORT, &payload).to_vec();
        assert_eq!(
            ControlFrame::decode(&bytes),
            Err(ProtoError::UnknownFrameType { tag: 9 })
        );
    }

    #[test]
    fn control_round_bytes_is_consistent() {
        // 4 selected, 3 alive to heartbeat, committed with 2 accepted.
        let expected = 4 * (select_frame_len(0) + commit_frame_len(2)) as u64
            + 3 * heartbeat_frame_len() as u64;
        assert_eq!(control_round_bytes(4, 3, true, 2), expected);
        let aborted =
            4 * (select_frame_len(0) + abort_frame_len()) as u64 + 3 * heartbeat_frame_len() as u64;
        assert_eq!(control_round_bytes(4, 3, false, 0), aborted);
    }
}
