//! Deterministic wire-level chaos injection.
//!
//! A [`ChaosLink`] sits between two protocol endpoints and misbehaves on
//! purpose: it drops frames, duplicates them, reorders them by holding one
//! back, and flips bits in transit. Every misbehaviour draws from a
//! [`fei_sim::DetRng`] forked per frame sequence number, so a `(seed,
//! traffic)` pair replays the exact same carnage — a failing chaos campaign
//! is a unit test, not a flake.

use fei_sim::DetRng;

/// One addressed frame in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Destination client id (`u64::MAX` addresses the coordinator).
    pub to: u64,
    /// Encoded wire frame.
    pub bytes: Vec<u8>,
}

/// Destination id conventionally used for coordinator-bound frames.
pub const COORDINATOR_ADDR: u64 = u64::MAX;

/// Probabilities of each misbehaviour, applied independently per frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Probability a frame vanishes.
    pub drop_prob: f64,
    /// Probability a surviving frame is delivered twice.
    pub dup_prob: f64,
    /// Probability a surviving frame is held one delivery cycle, landing
    /// after frames sent later.
    pub reorder_prob: f64,
    /// Probability one byte of a surviving frame is flipped.
    pub corrupt_prob: f64,
    /// Seed for the link's deterministic misbehaviour stream.
    pub seed: u64,
}

impl ChaosConfig {
    /// A perfectly honest link: nothing dropped, nothing touched.
    pub fn quiet(seed: u64) -> Self {
        Self {
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            corrupt_prob: 0.0,
            seed,
        }
    }

    /// Validates probabilities, panicking on nonsense.
    ///
    /// # Panics
    ///
    /// Panics when any probability is outside `[0, 1]` or not finite.
    pub fn validated(self) -> Self {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("dup_prob", self.dup_prob),
            ("reorder_prob", self.reorder_prob),
            ("corrupt_prob", self.corrupt_prob),
        ] {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "{name} must be a probability, got {p}"
            );
        }
        self
    }
}

/// Counters of what the link did to traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Frames offered to the link.
    pub offered: u64,
    /// Frames silently dropped.
    pub dropped: u64,
    /// Extra copies delivered.
    pub duplicated: u64,
    /// Frames held back one cycle.
    pub reordered: u64,
    /// Frames delivered with a flipped byte.
    pub corrupted: u64,
    /// Frames ultimately delivered (including duplicates and corruptions).
    pub delivered: u64,
}

/// What the fate stream decided for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fate {
    drop: bool,
    dup: bool,
    reorder: bool,
    corrupt: bool,
    /// Index of the byte to flip when corrupting.
    corrupt_at: u64,
    /// Bit to flip within that byte (1..=7 so the byte always changes).
    corrupt_bit: u32,
}

/// A deterministic lossy, duplicating, reordering, corrupting link.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosLink {
    config: ChaosConfig,
    rng: DetRng,
    /// Monotone per-frame sequence; each frame's fate forks from it.
    sequence: u64,
    /// Frames held back by reordering, delivered next drain.
    held: Vec<Envelope>,
    stats: ChaosStats,
}

impl ChaosLink {
    /// Creates a link with the given misbehaviour profile.
    pub fn new(config: ChaosConfig) -> Self {
        let config = config.validated();
        Self {
            rng: DetRng::new(config.seed),
            config,
            sequence: 0,
            held: Vec::new(),
            stats: ChaosStats::default(),
        }
    }

    /// Counters of the link's misbehaviour so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Decides one frame's fate from its sequence number alone.
    fn fate(&self, sequence: u64) -> Fate {
        let mut rng = self.rng.fork(sequence);
        // Draw every coordinate unconditionally so the stream shape never
        // depends on earlier outcomes — fates are pure in (seed, sequence).
        let drop = rng.next_f64() < self.config.drop_prob;
        let dup = rng.next_f64() < self.config.dup_prob;
        let reorder = rng.next_f64() < self.config.reorder_prob;
        let corrupt = rng.next_f64() < self.config.corrupt_prob;
        let corrupt_at = rng.next_u64();
        let corrupt_bit = 1 + (rng.next_below(7) as u32);
        Fate {
            drop,
            dup,
            reorder,
            corrupt,
            corrupt_at,
            corrupt_bit,
        }
    }

    /// Offers one frame to the link, delivering into `out` whatever
    /// survives this cycle (held-back frames surface on the next
    /// [`ChaosLink::drain`]).
    pub fn push(&mut self, envelope: Envelope, out: &mut Vec<Envelope>) {
        let fate = self.fate(self.sequence);
        self.sequence += 1;
        self.stats.offered += 1;
        if fate.drop {
            self.stats.dropped += 1;
            return;
        }
        let mut delivered = envelope;
        if fate.corrupt && !delivered.bytes.is_empty() {
            let at = (fate.corrupt_at % delivered.bytes.len() as u64) as usize;
            delivered.bytes[at] ^= 1u8 << (fate.corrupt_bit & 7);
            self.stats.corrupted += 1;
        }
        if fate.dup {
            self.stats.duplicated += 1;
            self.stats.delivered += 1;
            out.push(delivered.clone());
        }
        if fate.reorder {
            self.stats.reordered += 1;
            self.held.push(delivered);
        } else {
            self.stats.delivered += 1;
            out.push(delivered);
        }
    }

    /// Releases every held-back frame, ending the current delivery cycle.
    pub fn drain(&mut self, out: &mut Vec<Envelope>) {
        self.stats.delivered += self.held.len() as u64;
        out.append(&mut self.held);
    }

    /// Frames currently held back by reordering.
    pub fn held_len(&self) -> usize {
        self.held.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope(to: u64, tag: u8) -> Envelope {
        Envelope {
            to,
            bytes: vec![tag; 16],
        }
    }

    fn run_traffic(config: ChaosConfig, frames: usize) -> (Vec<Envelope>, ChaosStats) {
        let mut link = ChaosLink::new(config);
        let mut out = Vec::new();
        for i in 0..frames {
            link.push(envelope(i as u64 % 5, i as u8), &mut out);
        }
        link.drain(&mut out);
        (out, link.stats())
    }

    #[test]
    fn quiet_link_is_an_identity() {
        let (out, stats) = run_traffic(ChaosConfig::quiet(1), 50);
        assert_eq!(out.len(), 50);
        assert_eq!(
            stats.dropped + stats.duplicated + stats.reordered + stats.corrupted,
            0
        );
        assert_eq!(stats.delivered, 50);
        for (i, env) in out.iter().enumerate() {
            assert_eq!(env.bytes, vec![i as u8; 16], "quiet link must not mutate");
        }
    }

    #[test]
    fn same_seed_same_carnage() {
        let config = ChaosConfig {
            drop_prob: 0.2,
            dup_prob: 0.2,
            reorder_prob: 0.2,
            corrupt_prob: 0.2,
            seed: 77,
        };
        let (a, sa) = run_traffic(config, 200);
        let (b, sb) = run_traffic(config, 200);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut config = ChaosConfig {
            drop_prob: 0.3,
            dup_prob: 0.1,
            reorder_prob: 0.1,
            corrupt_prob: 0.1,
            seed: 1,
        };
        let (a, _) = run_traffic(config, 200);
        config.seed = 2;
        let (b, _) = run_traffic(config, 200);
        assert_ne!(a, b);
    }

    #[test]
    fn all_misbehaviours_fire_under_heavy_chaos() {
        let (_, stats) = run_traffic(
            ChaosConfig {
                drop_prob: 0.3,
                dup_prob: 0.3,
                reorder_prob: 0.3,
                corrupt_prob: 0.3,
                seed: 9,
            },
            500,
        );
        assert!(stats.dropped > 0, "{stats:?}");
        assert!(stats.duplicated > 0, "{stats:?}");
        assert!(stats.reordered > 0, "{stats:?}");
        assert!(stats.corrupted > 0, "{stats:?}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let (out, stats) = run_traffic(
            ChaosConfig {
                drop_prob: 0.0,
                dup_prob: 0.0,
                reorder_prob: 0.0,
                corrupt_prob: 1.0,
                seed: 4,
            },
            20,
        );
        assert_eq!(stats.corrupted, 20);
        for (i, env) in out.iter().enumerate() {
            let clean = vec![i as u8; 16];
            let flipped: u32 = env
                .bytes
                .iter()
                .zip(&clean)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(flipped, 1, "exactly one bit flips per corruption");
        }
    }

    #[test]
    fn everything_dropped_delivers_nothing() {
        let (out, stats) = run_traffic(
            ChaosConfig {
                drop_prob: 1.0,
                dup_prob: 0.5,
                reorder_prob: 0.5,
                corrupt_prob: 0.5,
                seed: 6,
            },
            40,
        );
        assert!(out.is_empty());
        assert_eq!(stats.dropped, 40);
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn reordered_frames_land_after_the_drain() {
        let config = ChaosConfig {
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 1.0,
            corrupt_prob: 0.0,
            seed: 3,
        };
        let mut link = ChaosLink::new(config);
        let mut out = Vec::new();
        link.push(envelope(0, 1), &mut out);
        assert!(out.is_empty(), "held back");
        assert_eq!(link.held_len(), 1);
        link.drain(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(link.held_len(), 0);
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn nonsense_probability_is_rejected() {
        let _ = ChaosLink::new(ChaosConfig {
            drop_prob: 1.5,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            corrupt_prob: 0.0,
            seed: 0,
        });
    }
}
