//! Disk-journal fault injection: kill the writer at every byte offset.
//!
//! The write path appends whole journal records and fsyncs before any
//! phase-transition effect leaves the coordinator, so a crash can only
//! leave a *suffix* of the last append missing. This suite simulates that
//! crash at **every byte offset** of a realistic phase-transition history
//! and asserts the disk path ([`DiskJournal::open`]'s torn-tail cut +
//! [`Coordinator::recover`]) reaches exactly the decision the in-memory
//! journal reaches on the same surviving prefix — same phase, same
//! resume/abort verdict, same stats, same effects, byte-identical
//! re-journaled state.
//!
//! Lock discipline rides along: a second opener and a stale lock are
//! typed errors, and only the supervisor's explicit `break_lock` clears
//! the latter.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use fei_proto::{Coordinator, CoordinatorConfig, DiskJournal, RoundJournal, StoreError};

fn config() -> CoordinatorConfig {
    CoordinatorConfig {
        k: 2,
        over_select: 1,
        quorum: 2,
        epochs: 5,
        heartbeat_interval: 5,
        heartbeat_timeout: 20,
        round_deadline: 50,
    }
}

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn temp_journal(tag: &str) -> PathBuf {
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "fei-disk-journal-{tag}-{}-{n}.journal",
        std::process::id()
    ))
}

/// A realistic history ending in an open, partially-filled round: epoch
/// start, three joins, a round open (phase transition), one accepted
/// update (phase transition into Training).
fn history_bytes() -> Vec<u8> {
    let mut c = Coordinator::new(config());
    c.open_rendezvous().expect("rendezvous");
    for client in 0..3u64 {
        let join = fei_proto::ControlFrame::JoinRequest {
            client,
            wire_version: fei_net::wire::WIRE_VERSION,
        };
        c.handle_control(join, 0).expect("join");
    }
    c.start_round(1).expect("open round");
    // Selection is deterministic: k=2 + over_select=1 from 3 joined
    // clients selects all three, so client 0's update is accepted.
    let update = fei_proto::ControlFrame::UpdateSubmit {
        round: 0,
        client: 0,
        samples: 1,
        update: vec![0xCD; 32],
    };
    c.handle_control(update, 2).expect("update accepted");
    c.journal().bytes().to_vec()
}

/// The in-memory oracle: the longest valid record prefix of `bytes`.
fn valid_prefix(bytes: &[u8]) -> Vec<u8> {
    let journal = RoundJournal::from_bytes(bytes.to_vec());
    let replay = journal.replay().expect("prefix of a valid journal");
    bytes[..bytes.len() - replay.torn_bytes].to_vec()
}

#[test]
fn every_byte_offset_crash_recovers_like_the_in_memory_journal() {
    let full = history_bytes();
    assert!(
        full.len() > 100,
        "history too small to be a meaningful sweep"
    );
    let path = temp_journal("sweep");
    for offset in 0..=full.len() {
        // Simulate the writer dying mid-append: only `offset` bytes hit
        // the disk.
        std::fs::write(&path, &full[..offset]).expect("plant torn journal");
        let (store, disk_prefix) = DiskJournal::open(&path).expect("open survives any tear");

        let memory_prefix = valid_prefix(&full[..offset]);
        assert_eq!(
            disk_prefix, memory_prefix,
            "offset {offset}: disk torn-tail cut disagrees with in-memory replay"
        );

        // Both recoveries must reach the same decision on the same bytes.
        let from_disk = Coordinator::recover(config(), &disk_prefix, 10);
        let from_memory = Coordinator::recover(config(), &memory_prefix, 10);
        match (from_disk, from_memory) {
            (Ok((disk_c, disk_fx)), Ok((mem_c, mem_fx))) => {
                assert_eq!(disk_c.phase(), mem_c.phase(), "offset {offset}");
                assert_eq!(disk_c.epoch(), mem_c.epoch(), "offset {offset}");
                assert_eq!(disk_c.round(), mem_c.round(), "offset {offset}");
                assert_eq!(
                    disk_c.recovered_round(),
                    mem_c.recovered_round(),
                    "offset {offset}"
                );
                assert_eq!(disk_c.stats(), mem_c.stats(), "offset {offset}");
                assert_eq!(disk_fx, mem_fx, "offset {offset}: effects diverged");
                assert_eq!(
                    disk_c.journal().bytes(),
                    mem_c.journal().bytes(),
                    "offset {offset}: re-journaled state diverged"
                );
            }
            (disk, memory) => panic!(
                "offset {offset}: recovery verdicts diverged: disk={disk:?} memory={memory:?}"
            ),
        }

        // The disk file itself was truncated to the valid prefix.
        store.close().expect("close");
        let on_disk = std::fs::read(&path).expect("reread");
        assert_eq!(on_disk, memory_prefix, "offset {offset}: file not cut");
        std::fs::remove_file(&path).expect("cleanup");
    }
}

#[test]
fn resume_and_abort_sides_of_the_sweep_are_both_exercised() {
    // Sanity on the sweep above: the full history recovered early resumes
    // the round; recovered late (past the deadline) aborts and bills the
    // stranded update. Both verdicts must be reachable from disk.
    let full = history_bytes();
    let path = temp_journal("verdicts");

    std::fs::write(&path, &full).expect("write");
    let (store, prefix) = DiskJournal::open(&path).expect("open");
    store.close().expect("close");

    let (resumed, _) = Coordinator::recover(config(), &prefix, 10).expect("early recover");
    assert_eq!(resumed.stats().resumed_rounds, 1, "early recovery resumes");
    assert_eq!(resumed.stats().wasted_update_bytes, 0);

    let (aborted, _) = Coordinator::recover(config(), &prefix, 1_000).expect("late recover");
    assert_eq!(aborted.stats().resumed_rounds, 0);
    assert_eq!(
        aborted.stats().aborts.coordinator_crash,
        1,
        "late recovery aborts"
    );
    assert!(
        aborted.stats().wasted_update_bytes > 0,
        "stranded update must be billed"
    );
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn double_open_and_stale_lock_are_typed_errors() {
    let path = temp_journal("locks");
    let (store, _) = DiskJournal::open(&path).expect("first open");

    // Second writer while the first is live: typed, not a panic or a
    // silent corruption.
    match DiskJournal::open(&path) {
        Err(StoreError::Locked { path: lock }) => {
            assert_eq!(lock.extension().and_then(|e| e.to_str()), Some("lock"));
        }
        other => panic!("double open must be Locked, got {other:?}"),
    }
    store.close().expect("close");

    // A SIGKILLed writer leaves the lock behind (Drop never ran): the
    // next open is refused until the supervisor breaks the lock.
    let lock = {
        let mut os = path.clone().into_os_string();
        os.push(".lock");
        PathBuf::from(os)
    };
    std::fs::write(&lock, b"31337\n").expect("plant stale lock");
    assert!(matches!(
        DiskJournal::open(&path),
        Err(StoreError::Locked { .. })
    ));
    assert!(DiskJournal::break_lock(&path).expect("break"));
    assert!(
        !DiskJournal::break_lock(&path).expect("idempotent"),
        "second break is a no-op"
    );
    let (store, _) = DiskJournal::open(&path).expect("open after break");
    store.close().expect("close");
    std::fs::remove_file(&path).expect("cleanup");
}
