//! Property tests: coordinator transitions are total and deterministic.
//!
//! For any frame (well-formed or arbitrary bytes) in any reachable state,
//! the coordinator takes exactly one defined transition or returns one
//! typed rejection — it never panics — and replaying the same input
//! sequence from the same configuration reproduces the same phases,
//! rounds, effects, and counters.

use fei_net::wire::WIRE_VERSION;
use fei_proto::{
    AbortReason, ControlFrame, Coordinator, CoordinatorConfig, LivenessTracker, Phase,
};
use proptest::prelude::*;

fn config() -> CoordinatorConfig {
    CoordinatorConfig {
        k: 2,
        over_select: 1,
        quorum: 2,
        epochs: 3,
        heartbeat_interval: 4,
        heartbeat_timeout: 12,
        round_deadline: 25,
    }
}

/// Any control frame, valid or nonsensical for the state it lands in.
fn arb_frame() -> impl Strategy<Value = ControlFrame> {
    let client = 0u64..6;
    let round = 0u64..4;
    prop_oneof![
        (client.clone(), 0u8..4).prop_map(|(client, v)| ControlFrame::JoinRequest {
            client,
            wire_version: WIRE_VERSION.wrapping_add(v),
        }),
        (client.clone(), 0u32..20, 0u32..40).prop_map(|(client, i, t)| ControlFrame::JoinAck {
            client,
            heartbeat_interval: i,
            heartbeat_timeout: t,
        }),
        (client.clone(), 0u64..200)
            .prop_map(|(client, tick)| ControlFrame::Heartbeat { client, tick }),
        (
            round.clone(),
            client.clone(),
            1u32..8,
            0u64..300,
            proptest::collection::vec(any::<u8>(), 0..16)
        )
            .prop_map(|(round, client, epochs, deadline_tick, global)| {
                ControlFrame::Select {
                    round,
                    client,
                    epochs,
                    deadline_tick,
                    global,
                }
            }),
        (
            round.clone(),
            client.clone(),
            1u32..64,
            proptest::collection::vec(any::<u8>(), 0..16)
        )
            .prop_map(
                |(round, client, samples, update)| ControlFrame::UpdateSubmit {
                    round,
                    client,
                    samples,
                    update,
                }
            ),
        (
            round.clone(),
            prop_oneof![
                Just(AbortReason::QuorumMiss),
                Just(AbortReason::FleetCollapse),
                Just(AbortReason::Cancelled),
                Just(AbortReason::CoordinatorCrash),
            ]
        )
            .prop_map(|(round, reason)| ControlFrame::RoundAbort { round, reason }),
        (round.clone(), proptest::collection::vec(0u64..6, 0..4))
            .prop_map(|(round, accepted)| ControlFrame::RoundCommit { round, accepted }),
        (0u64..4, round.clone())
            .prop_map(|(epoch, round)| ControlFrame::EpochNotice { epoch, round }),
        (client.clone(), 0u64..4, round).prop_map(|(client, epoch, last_round)| {
            ControlFrame::Resume {
                client,
                epoch,
                last_round,
            }
        }),
        (client, 0u64..4, any::<bool>()).prop_map(|(client, epoch, resume)| {
            ControlFrame::ResumeAck {
                client,
                epoch,
                resume,
            }
        }),
    ]
}

/// One scripted step of a run.
#[derive(Debug, Clone)]
enum Step {
    Frame(ControlFrame),
    RawBytes(Vec<u8>),
    StartRound,
    Tick(u64),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        5 => arb_frame().prop_map(Step::Frame),
        1 => proptest::collection::vec(any::<u8>(), 0..40).prop_map(Step::RawBytes),
        1 => Just(Step::StartRound),
        3 => (1u64..6).prop_map(Step::Tick),
    ]
}

/// Replays a script, returning a full observable trace.
fn replay(steps: &[Step]) -> (Vec<String>, Coordinator) {
    let mut coordinator = Coordinator::new(config());
    coordinator.open_rendezvous().expect("fresh coordinator");
    coordinator.set_global(vec![0xCD; 8]);
    let mut now = 0u64;
    let mut trace = Vec::new();
    for step in steps {
        let observed = match step {
            Step::Frame(frame) => {
                format!("{:?}", coordinator.handle_control(frame.clone(), now))
            }
            Step::RawBytes(bytes) => format!("{:?}", coordinator.handle_frame(bytes, now)),
            Step::StartRound => format!("{:?}", coordinator.start_round(now)),
            Step::Tick(dt) => {
                now += dt;
                format!("{:?}", coordinator.tick(now))
            }
        };
        trace.push(format!(
            "{observed} | phase={} round={}",
            coordinator.phase().name(),
            coordinator.round()
        ));
    }
    (trace, coordinator)
}

proptest! {
    /// Totality: no input script — frames in any state, garbage bytes,
    /// round opens, clock jumps — ever panics the coordinator.
    #[test]
    fn transitions_are_total(steps in proptest::collection::vec(arb_step(), 0..60)) {
        let (_, coordinator) = replay(&steps);
        // The machine always rests in a defined state.
        let phase = coordinator.phase();
        prop_assert!(matches!(
            phase,
            Phase::Rendezvous | Phase::Selected | Phase::Training | Phase::RoundClosed
        ), "resting phase {phase:?}");
    }

    /// Determinism: replaying the same script yields the identical trace of
    /// results, effects, phases, rounds, and counters.
    #[test]
    fn transitions_are_deterministic(steps in proptest::collection::vec(arb_step(), 0..60)) {
        let (trace_a, a) = replay(&steps);
        let (trace_b, b) = replay(&steps);
        prop_assert_eq!(trace_a, trace_b);
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.round(), b.round());
        prop_assert_eq!(a.phase(), b.phase());
    }

    /// Garbage bytes are always a typed rejection, never an accepted frame
    /// of some other shape — unless they happen to be a valid encoding,
    /// which random byte soup of this length cannot be (the CRC gate).
    #[test]
    fn garbage_bytes_never_panic_and_count_as_rejections(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut coordinator = Coordinator::new(config());
        coordinator.open_rendezvous().expect("fresh coordinator");
        let before = coordinator.stats().rejected;
        let result = coordinator.handle_frame(&bytes, 0);
        if result.is_err() {
            prop_assert_eq!(coordinator.stats().rejected, before + 1);
        }
    }

    /// The heartbeat lease boundary is exact for any timeout and beat
    /// schedule: live through `last + timeout - 1`, expired at
    /// `last + timeout`.
    #[test]
    fn heartbeat_expiry_boundary_is_exact(
        timeout in 1u64..50,
        last_beat in 0u64..1_000,
    ) {
        let mut tracker = LivenessTracker::new(timeout);
        tracker.register(7, last_beat);
        prop_assert!(tracker.is_live(7, last_beat + timeout - 1));
        prop_assert!(!tracker.is_live(7, last_beat + timeout));
        prop_assert_eq!(tracker.expire(last_beat + timeout - 1), Vec::<u64>::new());
        prop_assert_eq!(tracker.expire(last_beat + timeout), vec![7]);
    }
}
