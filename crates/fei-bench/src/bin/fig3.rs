//! Regenerates **Fig. 3**: the power trace of one edge server across two
//! rounds of global model coordination, sampled by the simulated 1 kHz
//! meter, with the per-step mean powers the paper reports (waiting 3.600 W,
//! downloading 4.286 W, training 5.553 W, uploading 5.015 W).
//!
//! Run: `cargo run --release -p fei-bench --bin fig3`

use fei_bench::{banner, section, sparkline};
use fei_power::{per_state_mean_power, PowerState};
use fei_testbed::Testbed;

fn main() {
    banner("Fig. 3: power consumption of an edge server during two rounds");

    let testbed = Testbed::paper_prototype();
    let (timeline, trace) = testbed.fig3_trace(40, 2);

    section("sampled trace (1 kHz, watts)");
    println!("{}", sparkline(trace.samples(), 100));
    println!(
        "samples: {}   span: {:.3} s   peak: {:.3} W",
        trace.len(),
        timeline.total_duration().as_secs_f64(),
        trace.peak_power().unwrap_or(0.0),
    );

    section("per-step mean power (W)");
    let means = per_state_mean_power(&trace, &timeline);
    let paper = [
        (PowerState::Waiting, 3.600),
        (PowerState::Downloading, 4.286),
        (PowerState::Training, 5.553),
        (PowerState::Uploading, 5.015),
    ];
    println!("{:>14} {:>10} {:>10}", "step", "paper", "measured");
    for (state, published) in paper {
        println!(
            "{:>14} {:>10.3} {:>10.3}",
            format!("{state:?}"),
            published,
            means.get(&state).copied().unwrap_or(f64::NAN),
        );
    }

    section("energy integrals");
    let exact = timeline.energy_joules(testbed.pi().profile());
    println!(
        "exact (timeline): {exact:.3} J   metered (1 kHz rectangle rule): {:.3} J   error {:+.2}%",
        trace.energy_joules(),
        (trace.energy_joules() - exact) / exact * 100.0,
    );

    section("step durations within one round");
    for seg in timeline.segments().iter().take(4) {
        println!(
            "{:>14}: {:.4} s",
            format!("{:?}", seg.state),
            seg.duration.as_secs_f64()
        );
    }
}
