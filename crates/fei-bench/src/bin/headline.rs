//! The end-to-end EE-FEI pipeline behind the paper's headline claim:
//!
//! 1. calibrate the energy coefficients from (simulated) Table-I timings;
//! 2. calibrate the convergence bound from real FedAvg training runs;
//! 3. run ACS (Algorithm 1) to pick `(K*, E*, T*)`;
//! 4. validate on the testbed: measured energy at the plan versus the
//!    `K = 1, E = 1` baseline.
//!
//! Paper: EE-FEI reduces energy consumption by **49.8 %**.
//!
//! Run: `cargo run --release -p fei-bench --bin headline`

use fei_bench::{
    banner, calibrate, estimate_loss_floor, fmt_joules, run_calibration_campaign, section,
};
use fei_core::{AcsOptimizer, EeFeiPlanner, GridSearch};
use fei_testbed::{FlExperiment, FlExperimentConfig, Testbed, STRINGENT_TARGET};

fn main() {
    banner("EE-FEI headline: joint (K, E, T) optimization vs the K=1, E=1 baseline");

    let exp = FlExperiment::prepare(FlExperimentConfig::paper_like());
    let testbed = Testbed::paper_prototype();

    section("step 1: energy model (Table-I calibration)");
    let model = testbed.energy_model();
    println!(
        "c0 = {:.3e} J/(sample*epoch)   c1 = {:.3e} J/epoch   e_U = {}   n_k = {}",
        model.compute().c0(),
        model.compute().c1(),
        fmt_joules(model.upload().e_u()),
        model.n_k(),
    );
    println!(
        "B0 = {:.4} J/epoch   B1 = {:.4} J/round",
        model.b0(),
        model.b1()
    );

    section("step 2: convergence bound (training-run calibration)");
    let runs = run_calibration_campaign(&exp);
    let f_star = estimate_loss_floor(&exp);
    let cal = calibrate(&runs, f_star).expect("calibration campaign crosses the stringent target");
    println!(
        "A0={:.4}  A1={:.4}  A2={:.6}  epsilon={:.4}",
        cal.bound.a0(),
        cal.bound.a1(),
        cal.bound.a2(),
        cal.epsilon,
    );

    section("step 3: ACS joint optimization (Algorithm 1)");
    let planner = EeFeiPlanner::new(model, cal.bound, cal.epsilon, testbed.config().num_devices)
        .expect("calibrated system is feasible")
        .with_optimizer(AcsOptimizer::default());
    let plan = planner.plan().expect("baseline is feasible");
    println!(
        "ACS: K*={}  E*={}  T*={}  predicted energy {}  ({} iterations, continuous ({:.2}, {:.2}))",
        plan.solution.k,
        plan.solution.e,
        plan.solution.t,
        fmt_joules(plan.solution.energy),
        plan.solution.iterations,
        plan.solution.continuous_k,
        plan.solution.continuous_e,
    );
    println!(
        "baseline (K=1, E=1): T={}  predicted energy {}",
        plan.baseline_t,
        fmt_joules(plan.baseline_energy),
    );
    println!("predicted savings: {:.1}%", plan.savings_fraction * 100.0);

    let grid = GridSearch::default()
        .solve(&planner.objective())
        .expect("grid solvable");
    println!(
        "exhaustive grid check: K*={} E*={} energy {} after {} evaluations (ACS used {} iterations)",
        grid.k,
        grid.e,
        fmt_joules(grid.energy),
        grid.evaluated,
        plan.solution.iterations,
    );

    section("step 4: testbed validation (measured energy)");
    let measure = |k: usize, e: usize, cap: usize| -> Option<(usize, f64)> {
        let (_, t) = exp.run_to_accuracy(k, e, STRINGENT_TARGET, cap);
        t.map(|t| (t, testbed.run(k, e, t).total_joules()))
    };
    let baseline = measure(1, 1, 900);
    let plan_measured = measure(plan.solution.k, plan.solution.e, 400);
    match (plan_measured, baseline) {
        (Some((tp, plan_energy)), Some((tb, base_energy))) => {
            let saving = (1.0 - plan_energy / base_energy) * 100.0;
            println!(
                "measured: ACS plan (K={}, E={}) reached {:.0}% in T={} using {}",
                plan.solution.k,
                plan.solution.e,
                STRINGENT_TARGET * 100.0,
                tp,
                fmt_joules(plan_energy),
            );
            println!(
                "measured: baseline (K=1, E=1) needed T={} using {}",
                tb,
                fmt_joules(base_energy)
            );
            println!("measured savings of the bound-driven plan: {saving:.1}%");
        }
        _ => println!("a configuration failed to reach the target within its round cap"),
    }

    section("step 5: measured-curve optimum (the paper's black asterisk)");
    // The paper picks its headline operating point off the measured energy
    // curves (Figs. 5-6), tolerating the bound/trace gap it documents. Scan
    // the same neighbourhood.
    let mut best: Option<(usize, usize, usize, f64)> = None;
    for k in [1usize, 2] {
        for e in [5usize, 10, 20, 40] {
            if let Some((t, energy)) = measure(k, e, 400) {
                best = match best {
                    Some(b) if b.3 <= energy => Some(b),
                    _ => Some((k, e, t, energy)),
                };
            }
        }
    }
    match (best, baseline) {
        (Some((k, e, t, energy)), Some((_, base_energy))) => {
            let saving = (1.0 - energy / base_energy) * 100.0;
            println!(
                "measured optimum: K={k}, E={e}, T={t} using {} -> {saving:.1}% reduction",
                fmt_joules(energy)
            );
            println!("paper reports: 49.8% reduction vs K=1, E=1");
        }
        _ => println!("measured scan could not complete"),
    }
}
