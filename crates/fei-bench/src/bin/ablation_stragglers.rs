//! Ablation: heterogeneous fleets and the straggler barrier.
//!
//! The paper's prototype uses 20 identical Raspberry Pis, so its synchronous
//! rounds carry no straggler cost. Real edge fleets mix device generations;
//! under synchronous FedAvg every selected device idles at waiting power
//! until the slowest finishes. This ablation quantifies that waste as fleet
//! speed spread grows, and shows how it changes the K trade-off: with
//! stragglers, selecting *more* devices per round raises the chance of
//! including a slow one.
//!
//! Run: `cargo run --release -p fei-bench --bin ablation_stragglers`

use fei_bench::{banner, fmt_joules, section};
use fei_sim::DetRng;
use fei_testbed::Testbed;

const E: usize = 20;
const ROUNDS: usize = 10;

/// Builds a fleet whose speed factors are uniform in `[1 - spread, 1 + spread]`.
fn mixed_fleet(spread: f64, seed: u64) -> Testbed {
    let mut rng = DetRng::new(seed);
    let speeds: Vec<f64> = (0..20)
        .map(|_| rng.uniform(1.0 - spread, 1.0 + spread))
        .collect();
    Testbed::paper_prototype().with_speed_factors(speeds)
}

fn main() {
    banner("Ablation: straggler waste in heterogeneous fleets");

    section(&format!(
        "straggler energy per {ROUNDS} rounds (E = {E}), by speed spread"
    ));
    println!(
        "{:>8} {:>6} {:>14} {:>16} {:>12} {:>14}",
        "spread", "K", "total", "straggler wait", "waste %", "wall clock"
    );
    for spread in [0.0, 0.2, 0.5, 0.8] {
        // fei-lint: allow(float-eq, reason = "sweep sentinel: the exactly-zero spread arm is the paper's homogeneous prototype")
        let testbed = if spread == 0.0 {
            Testbed::paper_prototype()
        } else {
            mixed_fleet(spread, 0x57A6)
        };
        for k in [2usize, 5, 10, 20] {
            let (run, straggle) = testbed.run_synchronous(k, E, ROUNDS);
            println!(
                "{spread:>8.1} {k:>6} {:>14} {:>16} {:>11.1}% {:>14.2}s",
                fmt_joules(run.total_joules()),
                fmt_joules(straggle),
                straggle / run.total_joules() * 100.0,
                run.wall_clock.as_secs_f64(),
            );
        }
    }

    println!(
        "\nreading: straggler waste grows with both the speed spread and K — at 0.8\n\
         spread and K = 20 a large share of the fleet's energy is idle waiting.\n\
         This compounds EE-FEI's IID argument for small K: on heterogeneous\n\
         hardware, big selections pay twice (upload contention AND barriers)."
    );
}
