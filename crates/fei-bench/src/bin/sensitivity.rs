//! Ablation: sensitivity of the optimal operating point to the system
//! parameters the paper holds fixed.
//!
//! Sweeps (1) the fixed per-round cost `B₁`, (2) the gradient-variance
//! constant `A₁` (the data-heterogeneity dial), (3) the accuracy target
//! `ε`, and (4) the fleet size `N`, re-running ACS at every point.
//!
//! Run: `cargo run --release -p fei-bench --bin sensitivity`

use fei_bench::{banner, fmt_joules, section};
use fei_core::sensitivity::{SensitivityBase, SensitivityReport};
use fei_core::{ConvergenceBound, RoundEnergyModel};
use fei_testbed::Testbed;

fn print_report(report: &SensitivityReport) {
    section(&report.parameter);
    println!(
        "{:>12} {:>6} {:>6} {:>6} {:>14} {:>10}",
        "value", "K*", "E*", "T*", "energy", "savings"
    );
    for p in &report.points {
        println!(
            "{:>12.4} {:>6} {:>6} {:>6} {:>14} {:>10}",
            p.value,
            p.k,
            p.e,
            p.t,
            fmt_joules(p.energy),
            p.savings
                .map_or("-".into(), |s| format!("{:.1}%", s * 100.0)),
        );
    }
}

fn main() {
    banner("Sensitivity of (K*, E*, T*) to the system parameters");

    // The pre-loaded prototype's energy model with a bound scaled so the
    // optimal round budget stays interior (see EXPERIMENTS.md).
    let energy: RoundEnergyModel = Testbed::paper_prototype().energy_model();
    let bound = ConvergenceBound::new(50.0, 0.05, 1e-4).expect("valid constants");
    let base = SensitivityBase {
        energy,
        bound,
        epsilon: 0.1,
        n: 20,
    };

    print_report(&base.sweep_b1(&[0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0]));
    println!("mechanism: pricier rounds -> batch more local epochs per round (E* rises)");

    print_report(
        &base
            .sweep_a1(&[0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0])
            .expect("valid sweep"),
    );
    println!("mechanism: noisier/more heterogeneous gradients -> average more clients (K* rises)");

    print_report(&base.sweep_epsilon(&[0.5, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01]));
    println!("mechanism: tighter targets -> more rounds -> more energy (monotone)");

    print_report(&base.sweep_fleet(&[2, 5, 10, 20, 50, 100]));
    println!("mechanism: a bigger fleet only widens the feasible set (energy non-increasing)");
}
