//! Regenerates **Fig. 4**: training performance (global loss and test
//! accuracy versus global rounds `T`) with multinomial logistic regression.
//!
//! * Panels (a)/(b): fixed `E = 40`, varying `K ∈ {1, 5, 10, 20}`.
//! * Panels (c)/(d): fixed `K = 10`, varying `E ∈ {1, 5, 20, 40, 100}` —
//!   including the paper's `E·T` accounting that exposes the interior
//!   optimum of `E`.
//!
//! Run: `cargo run --release -p fei-bench --bin fig4 [-- --panel a|c]`

use fei_bench::{banner, section};
use fei_fl::TrainingHistory;
use fei_testbed::{FlExperiment, FlExperimentConfig, EASY_TARGET, STRINGENT_TARGET};

const CURVE_POINTS: [usize; 12] = [1, 2, 3, 4, 5, 6, 8, 10, 15, 20, 30, 40];

fn print_curves(histories: &[(String, TrainingHistory)]) {
    section("global loss vs T");
    print!("{:>6}", "T");
    for (label, _) in histories {
        print!(" {label:>12}");
    }
    println!();
    for &t in &CURVE_POINTS {
        print!("{t:>6}");
        for (_, h) in histories {
            match h.loss_curve().iter().find(|&&(round, _)| round + 1 == t) {
                Some(&(_, loss)) => print!(" {loss:>12.4}"),
                None => print!(" {:>12}", "-"),
            }
        }
        println!();
    }

    section("test accuracy vs T");
    print!("{:>6}", "T");
    for (label, _) in histories {
        print!(" {label:>12}");
    }
    println!();
    for &t in &CURVE_POINTS {
        print!("{t:>6}");
        for (_, h) in histories {
            match h
                .accuracy_curve()
                .iter()
                .find(|&&(round, _)| round + 1 == t)
            {
                Some(&(_, acc)) => print!(" {acc:>12.4}"),
                None => print!(" {:>12}", "-"),
            }
        }
        println!();
    }
}

fn panel_ab(exp: &FlExperiment) {
    section(&format!(
        "panels (a)/(b): fixed E = 40, varying K; targets {EASY_TARGET} / {STRINGENT_TARGET}"
    ));
    let ks = [1usize, 5, 10, 20];
    let mut histories = Vec::new();
    for &k in &ks {
        let (h, _) = exp.run_to_accuracy(k, 40, 0.999, 40);
        histories.push((format!("K={k}"), h));
    }
    print_curves(&histories);

    section("required T to reach each accuracy target");
    println!("{:>6} {:>14} {:>14}", "K", "T(easy)", "T(stringent)");
    for (label, h) in &histories {
        println!(
            "{label:>6} {:>14} {:>14}",
            h.rounds_to_accuracy(EASY_TARGET)
                .map_or("-".into(), |t| t.to_string()),
            h.rounds_to_accuracy(STRINGENT_TARGET)
                .map_or("-".into(), |t| t.to_string()),
        );
    }
    println!(
        "\npaper's observation: at the easy target K hardly matters; at the stringent\n\
         target increasing K cuts T roughly linearly. Compare the two columns above."
    );
}

fn panel_cd(exp: &FlExperiment) {
    section(&format!(
        "panels (c)/(d): fixed K = 10, varying E; target {STRINGENT_TARGET}"
    ));
    let es = [1usize, 5, 20, 40, 100];
    let mut histories = Vec::new();
    for &e in &es {
        let cap = if e == 1 { 400 } else { 60 };
        let (h, _) = exp.run_to_accuracy(10, e, 0.999, cap);
        histories.push((format!("E={e}"), h));
    }
    print_curves(&histories);

    section("total local gradient rounds E*T to reach the stringent target");
    println!("{:>6} {:>10} {:>12}", "E", "T", "E*T");
    for (&e, (_, h)) in es.iter().zip(&histories) {
        match h.rounds_to_accuracy(STRINGENT_TARGET) {
            Some(t) => println!("{e:>6} {t:>10} {:>12}", e * t),
            None => println!("{e:>6} {:>10} {:>12}", "-", "-"),
        }
    }
    println!(
        "\npaper's observation (§VI-C): E*T is NOT constant — it has an interior\n\
         minimum (paper: 5600 @E=20, 3600 @E=40, 6000 @E=100), verifying an optimal E."
    );
}

fn main() {
    banner("Fig. 4: training performance with multinomial logistic regression");
    let panel = std::env::args().skip_while(|a| a != "--panel").nth(1);

    let exp = FlExperiment::prepare(FlExperimentConfig::paper_like());
    println!(
        "campaign: N={} servers, n_k={} samples each, test={} samples",
        exp.config().num_devices,
        exp.samples_per_device(),
        exp.test_set().len(),
    );

    match panel.as_deref() {
        Some("a") | Some("b") => panel_ab(&exp),
        Some("c") | Some("d") => panel_cd(&exp),
        _ => {
            panel_ab(&exp);
            panel_cd(&exp);
        }
    }
}
