//! Ablation: Byzantine attackers, robust aggregation, and the energy cost
//! of reaching 92 % under attack.
//!
//! The paper's energy accounting assumes every upload is honest. This
//! ablation compromises a seeded fraction of the fleet with sign-flip
//! attackers and sweeps the coordinator's defense — undefended mean vs
//! coordinate-median, trimmed mean, Krum, and multi-Krum behind the update
//! screen — asking what the stringent 92 % target costs once poisoned
//! rounds, screened updates, and slowed convergence are on the books.
//!
//! At attacker fraction 0 every robust rule runs its zero-budget fallback
//! and reproduces the undefended mean bit-for-bit, so the sweep's first
//! column doubles as a no-regression check.
//!
//! Run: `cargo run --release -p fei-bench --bin ablation_byzantine`
//! CI smoke: append `-- --smoke` for a seconds-scale configuration.

use fei_bench::{banner, fmt_joules, section};
use fei_core::ledger::EnergyLedger;
use fei_fl::{
    AdversarySpec, DefenseConfig, FaultSpec, RobustRule, StopCondition, ToleranceConfig,
    TrainingHistory,
};
use fei_testbed::{FaultCampaign, FlExperiment, FlExperimentConfig, Testbed, STRINGENT_TARGET};

struct Sweep {
    k: usize,
    e: usize,
    max_rounds: usize,
    fractions: &'static [f64],
    rules: &'static [&'static str],
}

const FULL: Sweep = Sweep {
    k: 10,
    e: 10,
    max_rounds: 250,
    fractions: &[0.0, 0.1, 0.2, 0.3],
    rules: &["mean", "median", "trimmed-mean", "krum", "multi-krum"],
};

/// Seconds-scale configuration for the CI smoke step: a tiny fleet, two
/// fractions, two rules, and a handful of rounds.
const SMOKE: Sweep = Sweep {
    k: 4,
    e: 2,
    max_rounds: 6,
    fractions: &[0.0, 0.2],
    rules: &["mean", "median"],
};

/// One sweep cell, also emitted as a JSON object (schema in
/// EXPERIMENTS.md).
struct Row {
    fraction: f64,
    rule: &'static str,
    rounds_to_target: Option<usize>,
    screened: usize,
    ledger: EnergyLedger,
}

fn rule_for(name: &'static str, assumed_byzantine: usize) -> Option<RobustRule> {
    match name {
        "mean" => None,
        "median" => Some(RobustRule::CoordinateMedian { assumed_byzantine }),
        "trimmed-mean" => Some(RobustRule::TrimmedMean { assumed_byzantine }),
        "krum" => Some(RobustRule::Krum { assumed_byzantine }),
        "multi-krum" => Some(RobustRule::MultiKrum { assumed_byzantine }),
        other => unreachable!("unknown rule {other}"),
    }
}

fn total_screened(history: &TrainingHistory) -> usize {
    history
        .records()
        .iter()
        .map(|r| r.faults.screened_updates)
        .sum()
}

fn json_row(row: &Row) -> String {
    format!(
        r#"{{"attack":"sign-flip","fraction":{},"rule":"{}","reached":{},"rounds_to_target":{},"useful_j":{:.3},"wasted_j":{:.3},"retransmit_j":{:.3},"poisoned_j":{:.3},"total_j":{:.3},"screened_updates":{}}}"#,
        row.fraction,
        row.rule,
        row.rounds_to_target.is_some(),
        row.rounds_to_target
            .map_or_else(|| "null".into(), |t| t.to_string()),
        row.ledger.useful_joules(),
        row.ledger.wasted_joules(),
        row.ledger.retransmit_joules(),
        row.ledger.poisoned_joules(),
        row.ledger.total_joules(),
        row.screened,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sweep = if smoke { SMOKE } else { FULL };

    banner("Ablation: Byzantine attackers, robust aggregation, energy to 92 %");
    let experiment = if smoke {
        FlExperiment::prepare(FlExperimentConfig {
            num_devices: 5,
            scale: 0.01,
            test_scale: 0.01,
            ..FlExperimentConfig::paper_like()
        })
    } else {
        FlExperiment::prepare(FlExperimentConfig::paper_like())
    };
    let testbed = if smoke {
        Testbed::new(
            fei_testbed::TestbedConfig {
                num_devices: 5,
                ..Default::default()
            },
            fei_testbed::RaspberryPi::paper_calibrated(),
        )
    } else {
        Testbed::paper_prototype()
    };
    let tolerance = ToleranceConfig::default();

    section(&format!(
        "sign-flip fraction x aggregation rule (K = {}, E = {}, target {:.0} %, cap {} rounds)",
        sweep.k,
        sweep.e,
        STRINGENT_TARGET * 100.0,
        sweep.max_rounds
    ));
    println!(
        "{:>9} {:>13} {:>8} {:>9} {:>12} {:>12} {:>10}",
        "attack f", "rule", "T(92%)", "screened", "useful", "poisoned", "overhead"
    );

    let mut rows = Vec::new();
    for &fraction in sweep.fractions {
        // Budget the rules for the attackers actually present among K
        // responders; zero at fraction 0 triggers the mean-identical
        // fallback.
        let budget = (fraction * sweep.k as f64).ceil() as usize;
        for &rule_name in sweep.rules {
            let mut campaign = FaultCampaign::new(
                experiment.clone(),
                testbed.clone(),
                FaultSpec::default(),
                tolerance.clone(),
            );
            if fraction > 0.0 {
                campaign = campaign.with_adversary(AdversarySpec::sign_flip(fraction));
            }
            if let Some(rule) = rule_for(rule_name, budget) {
                campaign = campaign.with_defense(DefenseConfig::with_rule(rule));
            }
            let report = campaign.run(
                sweep.k,
                sweep.e,
                StopCondition::accuracy(STRINGENT_TARGET, sweep.max_rounds),
            );
            let row = Row {
                fraction,
                rule: rule_name,
                rounds_to_target: report.rounds_to_accuracy(STRINGENT_TARGET),
                screened: total_screened(&report.history),
                ledger: report.ledger,
            };
            println!(
                "{:>9.1} {:>13} {:>8} {:>9} {:>12} {:>12} {:>9.1}%",
                row.fraction,
                row.rule,
                row.rounds_to_target
                    .map_or_else(|| "miss".into(), |t| t.to_string()),
                row.screened,
                fmt_joules(row.ledger.useful_joules()),
                fmt_joules(row.ledger.poisoned_joules()),
                row.ledger.overhead_fraction() * 100.0,
            );
            rows.push(row);
        }
    }

    section("machine-readable (JSON, one object per sweep cell)");
    println!("[");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!("  {}{comma}", json_row(row));
    }
    println!("]");

    println!(
        "\nreading: with no attackers every robust rule matches the undefended\n\
         mean exactly (zero-budget fallback) — robustness is free until it is\n\
         needed. As the sign-flip fraction grows, the undefended mean needs more\n\
         rounds (or misses the target outright) while median/trimmed-mean/multi-\n\
         Krum hold T(92%) close to the clean run, at the price of the poisoned\n\
         energy burned by compromised devices and screened-out updates."
    );
}
