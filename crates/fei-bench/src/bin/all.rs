//! Runs every table/figure/ablation binary in sequence — the one-command
//! full reproduction.
//!
//! Run: `cargo run --release -p fei-bench --bin all`
//! (build the bins first: `cargo build --release -p fei-bench --bins`)

use std::process::Command;

/// All reporting binaries, in the order EXPERIMENTS.md presents them.
const BINS: [&str; 15] = [
    "table1",
    "table2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "headline",
    "sensitivity",
    "ablation_noniid",
    "ablation_collection",
    "ablation_eq17",
    "ablation_scheduling",
    "ablation_stragglers",
    "ablation_model",
    "ablation_async",
];

fn main() {
    // Sibling binaries live next to this one.
    let me = std::env::current_exe().expect("current executable path");
    let dir = me.parent().expect("executable directory");

    let mut failures = Vec::new();
    for bin in BINS {
        let path = dir.join(bin);
        println!("\n################ {bin} ################\n");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!(
                    "could not launch {} ({e}); build the bins first with \
                     `cargo build --release -p fei-bench --bins`",
                    path.display()
                );
                failures.push(bin);
            }
        }
    }

    if failures.is_empty() {
        println!("\nall experiments regenerated successfully");
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
