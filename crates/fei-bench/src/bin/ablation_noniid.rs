//! Ablation: does the paper's `K* = 1` conclusion survive data
//! heterogeneity?
//!
//! §VI-C attributes `K* = 1` to the IID split ("the gradients calculated
//! using datasets at different edge servers should show similar statistic
//! features"). This ablation reruns the Fig.-5 measurement under a
//! Dirichlet label skew and a pathological label-shard split, where
//! single-client updates are biased and averaging more clients pays.
//!
//! Run: `cargo run --release -p fei-bench --bin ablation_noniid`

use fei_bench::{banner, fmt_joules, section};
use fei_testbed::{FlExperiment, FlExperimentConfig, PartitionStrategy, Testbed};

const FIXED_E: usize = 8;
const KS: [usize; 5] = [1, 2, 5, 10, 20];
/// A softer target than the stringent 0.92: heavily skewed splits converge
/// slower and may not reach the IID ceiling at all.
const TARGET: f64 = 0.90;

fn measure(label: &str, partition: PartitionStrategy) -> Option<(usize, f64)> {
    let exp = FlExperiment::prepare(FlExperimentConfig {
        partition,
        ..FlExperimentConfig::paper_like()
    });
    let testbed = Testbed::paper_prototype();
    section(&format!(
        "{label}: energy to {:.0}% accuracy, E = {FIXED_E}",
        TARGET * 100.0
    ));
    println!("{:>4} {:>10} {:>14}", "K", "T(meas)", "measured");
    let mut best: Option<(usize, f64)> = None;
    for &k in &KS {
        let (_, t) = exp.run_to_accuracy(k, FIXED_E, TARGET, 500);
        let energy = t.map(|t| testbed.run(k, FIXED_E, t).total_joules());
        println!(
            "{k:>4} {:>10} {:>14}",
            t.map_or("-".into(), |t| t.to_string()),
            energy.map_or("-".into(), fmt_joules),
        );
        if let Some(e) = energy {
            best = match best {
                Some(b) if b.1 <= e => Some(b),
                _ => Some((k, e)),
            };
        }
    }
    best
}

fn main() {
    banner("Ablation: optimal K under IID vs non-IID splits");

    let iid = measure("IID (the paper's split)", PartitionStrategy::Iid);
    let dirichlet = measure(
        "Dirichlet(alpha = 0.3) label skew",
        PartitionStrategy::Dirichlet { alpha: 0.3 },
    );
    let shards = measure(
        "pathological 2-shard split",
        PartitionStrategy::LabelShards {
            shards_per_client: 2,
        },
    );

    section("optimal K* per split");
    for (label, best) in [
        ("IID", iid),
        ("Dirichlet(0.3)", dirichlet),
        ("2-shard", shards),
    ] {
        match best {
            Some((k, e)) => println!("{label:>16}: K* = {k} at {}", fmt_joules(e)),
            None => println!("{label:>16}: target unreachable for every K"),
        }
    }
    println!(
        "\npaper's caveat confirmed when K*(non-IID) > K*(IID): single-client updates\n\
         are no longer representative once local datasets diverge."
    );
}
