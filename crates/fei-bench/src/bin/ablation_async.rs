//! Ablation: synchronous vs asynchronous aggregation on heterogeneous
//! fleets.
//!
//! The straggler ablation shows synchronous rounds waste fleet energy
//! idling at barriers. The asynchronous engine (`fei_fl::AsyncFedAvg`)
//! removes the barrier entirely: updates merge on arrival with a staleness
//! discount. This ablation races the two engines to the same accuracy
//! target on the same data and the same Table-I-calibrated device timings,
//! and compares wall clock and energy as fleet speed spread grows.
//!
//! Run: `cargo run --release -p fei-bench --bin ablation_async`

use fei_bench::{banner, fmt_joules, section};
use fei_data::Partition;
use fei_fl::{AsyncConfig, AsyncFedAvg, FedAvg, FedAvgConfig, StopCondition};
use fei_ml::SgdConfig;
use fei_sim::DetRng;
use fei_testbed::Testbed;

const N: usize = 10;
const K: usize = 10; // sync selects everyone: worst-case barrier exposure
const E: usize = 8;
const TARGET: f64 = 0.90;

fn main() {
    banner("Ablation: synchronous barrier vs asynchronous staleness-weighted merging");

    // Shared data.
    let gen = fei_data::SyntheticMnist::new(fei_data::SyntheticMnistConfig {
        pixel_noise_std: 0.5,
        ..Default::default()
    });
    let train = gen.generate(1_500, 0);
    let test = gen.generate(2_000, 1);
    let clients = Partition::iid(train.len(), N, &mut DetRng::new(0xF1)).apply(&train);
    let n_k = clients[0].len();
    let sgd = SgdConfig::new(0.005, 0.998, None);

    // Device timing from the calibrated Pi.
    let testbed = Testbed::paper_prototype();
    let pi = testbed.pi().clone();
    let job_overhead =
        testbed.download_duration().as_secs_f64() + testbed.upload_duration(1).as_secs_f64();
    let per_job_energy =
        testbed.energy_model().b0() / 3_000.0 * n_k as f64 * E as f64 + testbed.energy_model().b1();

    println!(
        "fleet: N={N}, E={E}, n_k={n_k}; one local job = {:.3}s compute + {:.3}s I/O, {:.3} J",
        pi.training_duration(E, n_k).as_secs_f64(),
        job_overhead,
        per_job_energy,
    );

    section(&format!("time/energy to {:.0}% accuracy", TARGET * 100.0));
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "spread", "sync T", "sync time", "sync J", "async U", "async time", "async J"
    );
    for spread in [0.0, 0.4, 0.8] {
        // Speed factors uniform in [1-spread, 1+spread].
        let mut srng = DetRng::new(0x57A6);
        let speeds: Vec<f64> = (0..N)
            .map(|_| {
                // fei-lint: allow(float-eq, reason = "sweep sentinel: the exactly-zero spread arm is the homogeneous baseline")
                if spread == 0.0 {
                    1.0
                } else {
                    srng.uniform(1.0 - spread, 1.0 + spread)
                }
            })
            .collect();

        // --- synchronous: rounds to target, timed with barriers ---
        let config = FedAvgConfig {
            clients_per_round: K,
            local_epochs: E,
            sgd: sgd.clone(),
            ..Default::default()
        };
        let mut sync = FedAvg::new(config, clients.clone(), test.clone());
        let history = sync.run_until(StopCondition::accuracy(TARGET, 400));
        let sync_t = history.rounds_to_accuracy(TARGET);
        let (sync_time, sync_energy) = match sync_t {
            Some(t) => {
                // Round span barriers on the slowest selected device.
                let slowest = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
                let round_secs =
                    pi.training_duration(E, n_k).as_secs_f64() / slowest + job_overhead + 0.02;
                // Energy: every participant trains + idles to the barrier.
                let mut round_energy = 0.0;
                for &s in &speeds {
                    let train_secs = pi.training_duration(E, n_k).as_secs_f64() / s;
                    let barrier = pi.training_duration(E, n_k).as_secs_f64() / slowest - train_secs;
                    round_energy += per_job_energy + barrier * 3.6;
                }
                (Some(round_secs * t as f64), Some(round_energy * t as f64))
            }
            None => (None, None),
        };

        // --- asynchronous: same devices, barrier-free ---
        let job_seconds: Vec<f64> = speeds
            .iter()
            .map(|&s| pi.training_duration(E, n_k).as_secs_f64() / s + job_overhead)
            .collect();
        let async_config = AsyncConfig {
            local_epochs: E,
            sgd: sgd.clone(),
            mixing_rate: 0.6,
            staleness_exponent: 0.5,
            job_seconds,
            eval_every: 1,
        };
        let mut asynchronous = AsyncFedAvg::new(async_config, clients.clone(), test.clone());
        let async_history = asynchronous.run(4_000, Some(TARGET));
        let async_u = async_history.updates_to_accuracy(TARGET);
        let async_time = async_history
            .time_to_accuracy(TARGET)
            .map(|t| t.as_secs_f64());
        let async_energy = async_u.map(|u| u as f64 * per_job_energy);

        let fmt_opt =
            |v: Option<f64>, unit: &str| v.map_or("-".to_string(), |v| format!("{v:.1}{unit}"));
        println!(
            "{spread:>8.1} {:>10} {:>12} {:>12} {:>10} {:>12} {:>12}",
            sync_t.map_or("-".into(), |t| t.to_string()),
            fmt_opt(sync_time, "s"),
            sync_energy.map_or("-".into(), fmt_joules),
            async_u.map_or("-".into(), |u| u.to_string()),
            fmt_opt(async_time, "s"),
            async_energy.map_or("-".into(), fmt_joules),
        );
    }

    println!(
        "\nreading: with a homogeneous fleet the engines are comparable; as speed\n\
         spread grows, the synchronous round time is hostage to the slowest device\n\
         while the asynchronous merger keeps absorbing updates — shorter wall clock\n\
         and no barrier-idle joules, at the price of staleness-discounted steps."
    );
}
