//! Perf-regression harness: kernel microbenches + headline round timing.
//!
//! Times the deterministic fast-path kernels (lane-unrolled dot, packed
//! matmul / `matmul_tn`, fused axpy+shrink, fused gradient) against the
//! naive reference implementations they replaced, then times a full
//! headline-config federated round under both gradient paths
//! ([`GradReduction::Naive`] vs [`GradReduction::FusedSerial`]) with
//! evaluation disabled so the numbers isolate training arithmetic.
//!
//! Every measurement takes the *minimum* of N reps: on a shared core the
//! minimum is the least-contended observation of a deterministic
//! workload, while medians still carry scheduler noise. The two round
//! engines are timed in alternation so a slow phase of the host cannot
//! bill only one side of the ratio. Allocation counts come from the
//! [`GradScratch`] / [`MatScratch`] event counters.
//!
//! Results are printed as a table and written to `BENCH_perf.json`
//! (schema `BENCH_perf.v2`, documented in EXPERIMENTS.md). Gates:
//! per-kernel speedup floors (matmul >= 2.0, matmul_tn >= 2.0,
//! axpy_shrink >= 1.6) and zero steady-state scratch allocations are
//! enforced in every mode; the headline `round.speedup_vs_naive >= 1.5`
//! gate applies to the full configuration only (smoke rounds are too
//! short to time reliably). EXPERIMENTS.md records why the kernel floors
//! sit where they do — the bit-identity contract forbids FMA, which caps
//! the reachable speedup well below what a contraction-free kernel could
//! hit.
//!
//! Run: `cargo run --release -p fei-bench --bin perf`
//! CI smoke: append `-- --smoke` for a seconds-scale configuration.

use std::hint::black_box;
use std::time::Instant;

use fei_bench::{banner, section};
use fei_data::{Dataset, SyntheticMnist, SyntheticMnistConfig};
use fei_math::pack::MatScratch;
use fei_math::{reduce, Matrix};
use fei_ml::{GradReduction, GradScratch, LogisticRegression, Model, SgdConfig};
use fei_testbed::{FlExperiment, FlExperimentConfig};

/// Sizing knobs for one harness run.
struct Sizes {
    /// Vector length for `dot`.
    vec_len: usize,
    /// Vector length for `axpy_shrink`: one 10x784 weight block, the shape
    /// the trainer actually updates. Small enough that heap placement and
    /// per-call resets dominate unless the harness controls them.
    axpy_len: usize,
    /// Square matrix side for `matmul` / `matmul_tn`.
    mat_dim: usize,
    /// Samples in the gradient-kernel dataset.
    grad_samples: usize,
    /// Repetitions per kernel measurement (minimum taken).
    kernel_reps: usize,
    /// Devices in the end-to-end fleet.
    devices: usize,
    /// Fraction of the paper's training set to generate.
    scale: f64,
    /// Participants per round (`K`).
    k: usize,
    /// Local epochs (`E`).
    e: usize,
    /// Timed rounds per engine (minimum taken, engines interleaved).
    rounds: usize,
}

/// Headline configuration: the paper-like campaign at `K = 10`, `E = 10`.
const FULL: Sizes = Sizes {
    vec_len: 1 << 16,
    axpy_len: 7840,
    mat_dim: 256,
    grad_samples: 2048,
    kernel_reps: 21,
    devices: 20,
    scale: 0.05,
    k: 10,
    e: 10,
    rounds: 5,
};

/// Seconds-scale configuration for the CI smoke step. The axpy length is
/// NOT scaled down: the kernel is microseconds-scale already and the gate
/// is calibrated at the trainer's real update shape.
const SMOKE: Sizes = Sizes {
    vec_len: 1 << 12,
    axpy_len: 7840,
    mat_dim: 96,
    grad_samples: 256,
    kernel_reps: 11,
    devices: 5,
    scale: 0.01,
    k: 4,
    e: 2,
    rounds: 3,
};

/// One kernel comparison, also emitted as a JSON object.
struct KernelRow {
    name: &'static str,
    size: String,
    reps: usize,
    baseline_ns: f64,
    fast_ns: f64,
    /// Minimum acceptable speedup; `None` for informational rows.
    gate: Option<f64>,
    /// Work completed per second on the fast path.
    throughput: f64,
    throughput_unit: &'static str,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.baseline_ns / self.fast_ns
    }
}

/// Warm + steady-state allocation counts for a reused scratch buffer.
struct ScratchCounters {
    warm: u64,
    steady_delta: u64,
}

/// End-to-end round timing under both gradient paths.
struct RoundResult {
    naive_ns: f64,
    fast_ns: f64,
    samples_per_round: usize,
    scratch: ScratchCounters,
}

impl RoundResult {
    fn speedup_vs_naive(&self) -> f64 {
        self.naive_ns / self.fast_ns
    }
}

/// Minimum wall-clock of `reps` invocations of `f`, in nanoseconds, after
/// one untimed warmup call. The minimum is the right statistic for a
/// deterministic kernel on a shared core: every upward excursion is
/// scheduler or cache interference, never the kernel.
fn min_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e9
        })
        .fold(f64::INFINITY, f64::min)
}

/// Deterministic pseudo-random fill, so runs are comparable across hosts.
fn lcg_vec(len: usize, mut state: u64) -> Vec<f64> {
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_vec(rows, cols, lcg_vec(rows * cols, seed))
}

fn bench_dot(sizes: &Sizes) -> KernelRow {
    let a = lcg_vec(sizes.vec_len, 0xD07);
    let b = lcg_vec(sizes.vec_len, 0xD08);
    let baseline_ns = min_ns(sizes.kernel_reps, || {
        black_box(reduce::dot_serial(black_box(&a), black_box(&b)));
    });
    let fast_ns = min_ns(sizes.kernel_reps, || {
        black_box(reduce::dot(black_box(&a), black_box(&b)));
    });
    KernelRow {
        name: "dot",
        size: format!("{}", sizes.vec_len),
        reps: sizes.kernel_reps,
        baseline_ns,
        fast_ns,
        gate: None,
        throughput: sizes.vec_len as f64 / (fast_ns * 1e-9),
        throughput_unit: "elem/s",
    }
}

fn bench_axpy_shrink(sizes: &Sizes) -> KernelRow {
    let n = sizes.axpy_len;
    // The kernel is a few microseconds at this size, so the measurement
    // must control everything that can vary run to run: `x` and `y` live
    // in ONE backing vector at a fixed 48-element gap (heap placement of
    // two separate Vecs varies per run and shifts cache-set aliasing),
    // and there is no per-call reset — both loops are in-place updates
    // whose cost is value-independent, and a reset inside the timed
    // closure would bill an extra full-vector copy to both sides,
    // compressing the measured ratio toward 1.
    // The kernel is also short enough that timer overhead is visible, so
    // each timing sample batches `INNER` calls and divides, and the two
    // variants are sampled in alternation so slow phases of the shared
    // core hit both equally.
    const INNER: usize = 100;

    /// The pre-fast-path two-pass update (step, then decay).
    #[inline(never)]
    fn two_pass(y: &mut [f64], alpha: f64, x: &[f64], shrink: f64) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
        for yi in y.iter_mut() {
            *yi -= shrink * *yi;
        }
    }

    // The backing buffer sits below glibc's mmap threshold, so the heap
    // hands back whatever 16-byte slot is free — skip ahead to the first
    // 64-byte-aligned element so vector loads never split cache lines.
    // `n` and the 48-element gap are both multiples of 8, so `x` and `y`
    // start cache-line aligned together.
    let mut raw = lcg_vec(2 * n + 48 + 8, 0xA11);
    let align_skip = (64 - (raw.as_ptr() as usize & 63)) / 8 % 8;
    let buf = &mut raw[align_skip..];
    let (xs, rest) = buf.split_at_mut(n);
    let x: &[f64] = xs;
    let y: &mut [f64] = &mut rest[48..48 + n];
    let reps = sizes.kernel_reps.max(31);
    let mut baseline_ns = f64::INFINITY;
    let mut fast_ns = f64::INFINITY;
    for _ in 0..reps {
        baseline_ns = baseline_ns.min(min_ns(3, || {
            for _ in 0..INNER {
                two_pass(black_box(&mut *y), 0.01, black_box(x), 1e-4);
            }
        }));
        fast_ns = fast_ns.min(min_ns(3, || {
            for _ in 0..INNER {
                reduce::fused_axpy_shrink(black_box(&mut *y), 0.01, black_box(x), 1e-4);
            }
        }));
    }
    baseline_ns /= INNER as f64;
    fast_ns /= INNER as f64;
    KernelRow {
        name: "axpy_shrink",
        size: format!("{n}"),
        reps,
        baseline_ns,
        fast_ns,
        // The two-pass baseline moves 5 cache-line streams per element
        // block to the fused kernel's 3, and both saturate core-private
        // bandwidth at this size, so the physical ceiling is 5/3 = 1.67x
        // plus second-order effects (measured steady ratio 1.72x). The
        // gate sits at 1.6x: tight enough to catch any regression to the
        // pre-fix 1.34x reading, below the bandwidth asymptote.
        gate: Some(1.6),
        throughput: n as f64 / (fast_ns * 1e-9),
        throughput_unit: "elem/s",
    }
}

fn bench_matmul(sizes: &Sizes, pack: &mut MatScratch) -> KernelRow {
    let n = sizes.mat_dim;
    let a = lcg_matrix(n, n, 0x3A7);
    let b = lcg_matrix(n, n, 0x3A8);
    let baseline_ns = min_ns(sizes.kernel_reps, || {
        black_box(black_box(&a).matmul_reference(black_box(&b)));
    });
    let fast_ns = min_ns(sizes.kernel_reps, || {
        black_box(black_box(&a).matmul_with(black_box(&b), pack));
    });
    KernelRow {
        name: "matmul",
        size: format!("{n}x{n}x{n}"),
        reps: sizes.kernel_reps,
        baseline_ns,
        fast_ns,
        gate: Some(2.0),
        throughput: (2 * n * n * n) as f64 / (fast_ns * 1e-9),
        throughput_unit: "flop/s",
    }
}

fn bench_matmul_tn(sizes: &Sizes, pack: &mut MatScratch) -> KernelRow {
    let n = sizes.mat_dim;
    let a = lcg_matrix(n, n, 0x7A7);
    let b = lcg_matrix(n, n, 0x7A8);
    // Baseline: materialize the transpose, then multiply (the pre-fast-path
    // normal-equations idiom).
    let baseline_ns = min_ns(sizes.kernel_reps, || {
        black_box(black_box(&a).transpose().matmul_reference(black_box(&b)));
    });
    let fast_ns = min_ns(sizes.kernel_reps, || {
        black_box(black_box(&a).matmul_tn_with(black_box(&b), pack));
    });
    KernelRow {
        name: "matmul_tn",
        size: format!("{n}x{n}x{n}"),
        reps: sizes.kernel_reps,
        baseline_ns,
        fast_ns,
        gate: Some(2.0),
        throughput: (2 * n * n * n) as f64 / (fast_ns * 1e-9),
        throughput_unit: "flop/s",
    }
}

/// Full-batch gradient step on a synthetic-MNIST batch: allocating reference
/// kernel vs the fused scratch-backed kernel.
fn bench_gradient(sizes: &Sizes) -> (KernelRow, ScratchCounters) {
    let data: Dataset =
        SyntheticMnist::new(SyntheticMnistConfig::default()).generate(sizes.grad_samples, 7);
    let model = LogisticRegression::zeros(data.dim(), data.num_classes());
    let indices: Vec<usize> = (0..data.len()).collect();
    let mut scratch = GradScratch::new();
    let baseline_ns = min_ns(sizes.kernel_reps, || {
        black_box(model.loss_and_gradient(black_box(&data), black_box(&indices)));
    });
    let fast_ns = min_ns(sizes.kernel_reps, || {
        black_box(model.loss_and_gradient_into(
            black_box(&data),
            black_box(&indices),
            &mut scratch,
            1,
        ));
    });
    let warm = scratch.allocations();
    // Steady state: further timed reps must not grow the workspace (this
    // includes the pack buffers inside the gradient's GEMM phase).
    let _ = min_ns(sizes.kernel_reps, || {
        black_box(model.loss_and_gradient_into(&data, &indices, &mut scratch, 1));
    });
    let steady_delta = scratch.allocations() - warm;
    let row = KernelRow {
        name: "grad_step",
        size: format!("{} samples", sizes.grad_samples),
        reps: sizes.kernel_reps,
        baseline_ns,
        fast_ns,
        gate: None,
        throughput: sizes.grad_samples as f64 / (fast_ns * 1e-9),
        throughput_unit: "sample/s",
    };
    (row, ScratchCounters { warm, steady_delta })
}

/// Builds the end-to-end experiment with evaluation disabled and the given
/// gradient path.
fn round_experiment(sizes: &Sizes, grad: GradReduction) -> FlExperiment {
    FlExperiment::prepare(FlExperimentConfig {
        num_devices: sizes.devices,
        scale: sizes.scale,
        test_scale: sizes.scale,
        sgd: SgdConfig::new(0.005, 0.998, None).with_grad_reduction(grad),
        // Larger than any timed round index: never evaluate mid-timing.
        eval_every: 1 << 30,
        ..FlExperimentConfig::paper_like()
    })
}

fn bench_round(sizes: &Sizes) -> RoundResult {
    // Both engines are timed in alternation, one round of each per
    // iteration, and the minimum is kept per engine: rounds run tens of
    // milliseconds, long enough that a slow phase of the shared core
    // lands inside one — interleaving keeps such a phase from billing
    // only one side of the ratio.
    let naive_exp = round_experiment(sizes, GradReduction::Naive);
    let mut naive_engine = naive_exp.engine(sizes.k, sizes.e);
    let fast_exp = round_experiment(sizes, GradReduction::FusedSerial);
    let mut fast_engine = fast_exp.engine(sizes.k, sizes.e);
    // Warmup rounds: touch every allocation path once.
    naive_engine.run_round();
    fast_engine.run_round();
    let warm = fast_engine.scratch_allocations();
    let mut naive_ns = f64::INFINITY;
    let mut fast_ns = f64::INFINITY;
    for _ in 0..sizes.rounds {
        let start = Instant::now();
        naive_engine.run_round();
        naive_ns = naive_ns.min(start.elapsed().as_secs_f64() * 1e9);
        let start = Instant::now();
        fast_engine.run_round();
        fast_ns = fast_ns.min(start.elapsed().as_secs_f64() * 1e9);
    }
    let steady_delta = fast_engine.scratch_allocations() - warm;
    let samples_per_round = sizes.k * fast_exp.samples_per_device() * sizes.e;

    RoundResult {
        naive_ns,
        fast_ns,
        samples_per_round,
        scratch: ScratchCounters { warm, steady_delta },
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns * 1e-9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns * 1e-6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns * 1e-3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn json_kernel(row: &KernelRow) -> String {
    let gate = row.gate.map_or("null".to_string(), |g| format!("{g:.1}"));
    format!(
        r#"{{"name":"{}","size":"{}","reps":{},"baseline_ns":{:.1},"fast_ns":{:.1},"speedup":{:.3},"gate":{gate},"throughput":{:.3e},"throughput_unit":"{}"}}"#,
        row.name,
        row.size,
        row.reps,
        row.baseline_ns,
        row.fast_ns,
        row.speedup(),
        row.throughput,
        row.throughput_unit,
    )
}

fn json_report(
    smoke: bool,
    sizes: &Sizes,
    kernels: &[KernelRow],
    pack: &ScratchCounters,
    grad: &ScratchCounters,
    round: &RoundResult,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"schema\": \"BENCH_perf.v2\",\n  \"smoke\": {smoke},\n"
    ));
    out.push_str("  \"kernels\": [\n");
    for (i, row) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        out.push_str(&format!("    {}{comma}\n", json_kernel(row)));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"pack_scratch\": {{\"warm_allocations\":{},\"steady_delta\":{}}},\n",
        pack.warm, pack.steady_delta
    ));
    out.push_str(&format!(
        "  \"grad_scratch\": {{\"warm_allocations\":{},\"steady_delta\":{}}},\n",
        grad.warm, grad.steady_delta
    ));
    out.push_str(&format!(
        concat!(
            "  \"round\": {{\"devices\":{},\"k\":{},\"e\":{},\"rounds_timed\":{},",
            "\"naive_ns_min\":{:.1},\"fast_ns_min\":{:.1},\"speedup_vs_naive\":{:.3},",
            "\"gate\":1.5,\"samples_per_round\":{},\"throughput_samples_per_s\":{:.3e},",
            "\"scratch_allocations_warm\":{},\"scratch_allocations_steady_delta\":{}}}\n"
        ),
        sizes.devices,
        sizes.k,
        sizes.e,
        sizes.rounds,
        round.naive_ns,
        round.fast_ns,
        round.speedup_vs_naive(),
        round.samples_per_round,
        round.samples_per_round as f64 / (round.fast_ns * 1e-9),
        round.scratch.warm,
        round.scratch.steady_delta,
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes = if smoke { SMOKE } else { FULL };

    banner("Perf harness: fast-path kernels vs naive references");

    section(&format!(
        "kernel microbenches (min of {} reps)",
        sizes.kernel_reps
    ));
    println!(
        "{:>12} {:>16} {:>12} {:>12} {:>9} {:>6} {:>16}",
        "kernel", "size", "baseline", "fast", "speedup", "gate", "throughput"
    );
    let mut pack = MatScratch::new();
    let mut kernels = vec![
        bench_dot(&sizes),
        bench_axpy_shrink(&sizes),
        bench_matmul(&sizes, &mut pack),
    ];
    let pack_warm = pack.allocations();
    kernels.push(bench_matmul_tn(&sizes, &mut pack));
    // Steady state: the tn panels were sized during its own warmup call;
    // one more timed pass of both shapes must not grow the pack buffers.
    let warm_after_tn = pack.allocations();
    {
        let n = sizes.mat_dim;
        let a = lcg_matrix(n, n, 0x3A7);
        let b = lcg_matrix(n, n, 0x3A8);
        black_box(a.matmul_with(&b, &mut pack));
        black_box(a.matmul_tn_with(&b, &mut pack));
    }
    let pack_counters = ScratchCounters {
        warm: pack_warm,
        steady_delta: pack.allocations() - warm_after_tn,
    };
    let (grad_row, grad_counters) = bench_gradient(&sizes);
    kernels.push(grad_row);
    for row in &kernels {
        println!(
            "{:>12} {:>16} {:>12} {:>12} {:>8.2}x {:>6} {:>13.3e} {}",
            row.name,
            row.size,
            fmt_ns(row.baseline_ns),
            fmt_ns(row.fast_ns),
            row.speedup(),
            row.gate.map_or("-".to_string(), |g| format!("{g:.1}x")),
            row.throughput,
            row.throughput_unit,
        );
    }
    println!(
        "pack scratch allocations: {} warm, +{} steady   gradient scratch: {} warm, +{} steady (want +0)",
        pack_counters.warm, pack_counters.steady_delta, grad_counters.warm, grad_counters.steady_delta,
    );

    section(&format!(
        "end-to-end round: {} devices, K = {}, E = {}, min of {} interleaved rounds, eval off",
        sizes.devices, sizes.k, sizes.e, sizes.rounds
    ));
    let round = bench_round(&sizes);
    println!(
        "naive round:  {:>12}\nfused round:  {:>12}\nspeedup_vs_naive: {:.2}x (gate 1.5x, full mode)",
        fmt_ns(round.naive_ns),
        fmt_ns(round.fast_ns),
        round.speedup_vs_naive(),
    );
    println!(
        "samples/round: {}   fused throughput: {:.3e} sample/s",
        round.samples_per_round,
        round.samples_per_round as f64 / (round.fast_ns * 1e-9),
    );
    println!(
        "engine scratch allocations: {} warm, +{} across {} steady rounds",
        round.scratch.warm, round.scratch.steady_delta, sizes.rounds,
    );

    let report = json_report(
        smoke,
        &sizes,
        &kernels,
        &pack_counters,
        &grad_counters,
        &round,
    );
    std::fs::write("BENCH_perf.json", &report).expect("failed to write BENCH_perf.json");
    println!("\nwrote BENCH_perf.json");

    // Gates. Per-kernel speedups and zero steady-state allocations are
    // enforced in every mode (the smoke lane runs them in CI); the
    // headline round ratio is only meaningful at full size.
    let mut failures: Vec<String> = Vec::new();
    for row in &kernels {
        if let Some(gate) = row.gate {
            if row.speedup() < gate {
                failures.push(format!(
                    "{} speedup {:.2}x below the {gate:.1}x gate",
                    row.name,
                    row.speedup()
                ));
            }
        }
    }
    if pack_counters.steady_delta != 0 {
        failures.push(format!(
            "pack scratch grew by {} allocations after warmup",
            pack_counters.steady_delta
        ));
    }
    if grad_counters.steady_delta != 0 {
        failures.push(format!(
            "gradient scratch grew by {} allocations after warmup",
            grad_counters.steady_delta
        ));
    }
    if round.scratch.steady_delta != 0 {
        failures.push(format!(
            "engine scratch grew by {} allocations across steady rounds",
            round.scratch.steady_delta
        ));
    }
    // The headline gate sits at 1.5x, not the 2.5x one might expect from
    // the per-kernel numbers: the bit-identity contract forbids FMA
    // contraction (one rounding vs two), which halves the FLOP ceiling of
    // the gradient phases, and the single-core host nullifies the pool.
    // Measured full-mode headline spread is 1.58x-1.82x; the analysis
    // lives in EXPERIMENTS.md.
    if !smoke && round.speedup_vs_naive() < 1.5 {
        failures.push(format!(
            "headline speedup_vs_naive {:.2}x below the 1.5x gate",
            round.speedup_vs_naive()
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("GATE FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
