//! Perf-regression harness: kernel microbenches + headline round timing.
//!
//! Times the deterministic fast-path kernels (striped dot, tiled matmul,
//! `matmul_tn`, fused axpy+shrink, fused gradient) against the naive
//! reference implementations they replaced, then times a full headline-config
//! federated round under both gradient paths ([`GradReduction::Naive`] vs
//! [`GradReduction::FusedSerial`]) with evaluation disabled so the numbers
//! isolate training arithmetic. Every measurement is a median-of-N
//! wall-clock; allocation counts come from the [`GradScratch`] event counter.
//!
//! Results are printed as a table and written to `BENCH_perf.json` (schema
//! in EXPERIMENTS.md). The headline gate is `round.speedup_vs_naive >= 1.5`.
//!
//! Run: `cargo run --release -p fei-bench --bin perf`
//! CI smoke: append `-- --smoke` for a seconds-scale configuration.

use std::hint::black_box;
use std::time::Instant;

use fei_bench::{banner, section};
use fei_data::{Dataset, SyntheticMnist, SyntheticMnistConfig};
use fei_fl::FedAvg;
use fei_math::{reduce, Matrix};
use fei_ml::{GradReduction, GradScratch, LogisticRegression, Model, SgdConfig};
use fei_testbed::{FlExperiment, FlExperimentConfig};

/// Sizing knobs for one harness run.
struct Sizes {
    /// Vector length for `dot` / `axpy_shrink`.
    vec_len: usize,
    /// Square matrix side for `matmul` / `matmul_tn`.
    mat_dim: usize,
    /// Samples in the gradient-kernel dataset.
    grad_samples: usize,
    /// Repetitions per kernel measurement (median taken).
    kernel_reps: usize,
    /// Devices in the end-to-end fleet.
    devices: usize,
    /// Fraction of the paper's training set to generate.
    scale: f64,
    /// Participants per round (`K`).
    k: usize,
    /// Local epochs (`E`).
    e: usize,
    /// Timed rounds per engine (median taken).
    rounds: usize,
}

/// Headline configuration: the paper-like campaign at `K = 10`, `E = 10`.
const FULL: Sizes = Sizes {
    vec_len: 1 << 16,
    mat_dim: 256,
    grad_samples: 2048,
    kernel_reps: 21,
    devices: 20,
    scale: 0.05,
    k: 10,
    e: 10,
    rounds: 5,
};

/// Seconds-scale configuration for the CI smoke step.
const SMOKE: Sizes = Sizes {
    vec_len: 1 << 12,
    mat_dim: 96,
    grad_samples: 256,
    kernel_reps: 5,
    devices: 5,
    scale: 0.01,
    k: 4,
    e: 2,
    rounds: 3,
};

/// One kernel comparison, also emitted as a JSON object.
struct KernelRow {
    name: &'static str,
    size: String,
    baseline_ns: f64,
    fast_ns: f64,
    /// Work completed per second on the fast path.
    throughput: f64,
    throughput_unit: &'static str,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.baseline_ns / self.fast_ns
    }
}

/// End-to-end round timing under both gradient paths.
struct RoundResult {
    naive_ns: f64,
    fast_ns: f64,
    samples_per_round: usize,
    scratch_allocations_warm: u64,
    scratch_allocations_steady_delta: u64,
}

impl RoundResult {
    fn speedup_vs_naive(&self) -> f64 {
        self.naive_ns / self.fast_ns
    }
}

/// Median wall-clock of `reps` invocations of `f`, in nanoseconds, after one
/// untimed warmup call.
fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Deterministic pseudo-random fill, so runs are comparable across hosts.
fn lcg_vec(len: usize, mut state: u64) -> Vec<f64> {
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_vec(rows, cols, lcg_vec(rows * cols, seed))
}

fn bench_dot(sizes: &Sizes) -> KernelRow {
    let a = lcg_vec(sizes.vec_len, 0xD07);
    let b = lcg_vec(sizes.vec_len, 0xD08);
    let baseline_ns = median_ns(sizes.kernel_reps, || {
        black_box(reduce::dot_serial(black_box(&a), black_box(&b)));
    });
    let fast_ns = median_ns(sizes.kernel_reps, || {
        black_box(reduce::dot(black_box(&a), black_box(&b)));
    });
    KernelRow {
        name: "dot",
        size: format!("{}", sizes.vec_len),
        baseline_ns,
        fast_ns,
        throughput: sizes.vec_len as f64 / (fast_ns * 1e-9),
        throughput_unit: "elem/s",
    }
}

fn bench_axpy_shrink(sizes: &Sizes) -> KernelRow {
    let x = lcg_vec(sizes.vec_len, 0xA11);
    let y0 = lcg_vec(sizes.vec_len, 0xA12);
    let mut y = y0.clone();
    // Baseline: the pre-fast-path two-pass update (step, then decay).
    let baseline_ns = median_ns(sizes.kernel_reps, || {
        y.copy_from_slice(&y0);
        for (yi, xi) in y.iter_mut().zip(&x) {
            *yi += 0.01 * xi;
        }
        for yi in y.iter_mut() {
            *yi *= 1.0 - 1e-4;
        }
        black_box(&y);
    });
    let fast_ns = median_ns(sizes.kernel_reps, || {
        y.copy_from_slice(&y0);
        reduce::fused_axpy_shrink(&mut y, 0.01, &x, 1e-4);
        black_box(&y);
    });
    KernelRow {
        name: "axpy_shrink",
        size: format!("{}", sizes.vec_len),
        baseline_ns,
        fast_ns,
        throughput: sizes.vec_len as f64 / (fast_ns * 1e-9),
        throughput_unit: "elem/s",
    }
}

fn bench_matmul(sizes: &Sizes) -> KernelRow {
    let n = sizes.mat_dim;
    let a = lcg_matrix(n, n, 0x3A7);
    let b = lcg_matrix(n, n, 0x3A8);
    let baseline_ns = median_ns(sizes.kernel_reps, || {
        black_box(black_box(&a).matmul_reference(black_box(&b)));
    });
    let fast_ns = median_ns(sizes.kernel_reps, || {
        black_box(black_box(&a).matmul(black_box(&b)));
    });
    KernelRow {
        name: "matmul",
        size: format!("{n}x{n}x{n}"),
        baseline_ns,
        fast_ns,
        throughput: (2 * n * n * n) as f64 / (fast_ns * 1e-9),
        throughput_unit: "flop/s",
    }
}

fn bench_matmul_tn(sizes: &Sizes) -> KernelRow {
    let n = sizes.mat_dim;
    let a = lcg_matrix(n, n, 0x7A7);
    let b = lcg_matrix(n, n, 0x7A8);
    // Baseline: materialize the transpose, then multiply (the pre-fast-path
    // normal-equations idiom).
    let baseline_ns = median_ns(sizes.kernel_reps, || {
        black_box(black_box(&a).transpose().matmul(black_box(&b)));
    });
    let fast_ns = median_ns(sizes.kernel_reps, || {
        black_box(black_box(&a).matmul_tn(black_box(&b)));
    });
    KernelRow {
        name: "matmul_tn",
        size: format!("{n}x{n}x{n}"),
        baseline_ns,
        fast_ns,
        throughput: (2 * n * n * n) as f64 / (fast_ns * 1e-9),
        throughput_unit: "flop/s",
    }
}

/// Full-batch gradient step on a synthetic-MNIST batch: allocating reference
/// kernel vs the fused scratch-backed kernel.
fn bench_gradient(sizes: &Sizes) -> (KernelRow, u64) {
    let data: Dataset =
        SyntheticMnist::new(SyntheticMnistConfig::default()).generate(sizes.grad_samples, 7);
    let model = LogisticRegression::zeros(data.dim(), data.num_classes());
    let indices: Vec<usize> = (0..data.len()).collect();
    let mut scratch = GradScratch::new();
    let baseline_ns = median_ns(sizes.kernel_reps, || {
        black_box(model.loss_and_gradient(black_box(&data), black_box(&indices)));
    });
    let fast_ns = median_ns(sizes.kernel_reps, || {
        black_box(model.loss_and_gradient_into(
            black_box(&data),
            black_box(&indices),
            &mut scratch,
            1,
        ));
    });
    let warm = scratch.allocations();
    // Steady state: further timed reps must not grow the workspace.
    let _ = median_ns(sizes.kernel_reps, || {
        black_box(model.loss_and_gradient_into(&data, &indices, &mut scratch, 1));
    });
    let steady_delta = scratch.allocations() - warm;
    let row = KernelRow {
        name: "grad_step",
        size: format!("{} samples", sizes.grad_samples),
        baseline_ns,
        fast_ns,
        throughput: sizes.grad_samples as f64 / (fast_ns * 1e-9),
        throughput_unit: "sample/s",
    };
    (row, steady_delta)
}

/// Builds the end-to-end experiment with evaluation disabled and the given
/// gradient path.
fn round_experiment(sizes: &Sizes, grad: GradReduction) -> FlExperiment {
    FlExperiment::prepare(FlExperimentConfig {
        num_devices: sizes.devices,
        scale: sizes.scale,
        test_scale: sizes.scale,
        sgd: SgdConfig::new(0.005, 0.998, None).with_grad_reduction(grad),
        // Larger than any timed round index: never evaluate mid-timing.
        eval_every: 1 << 30,
        ..FlExperimentConfig::paper_like()
    })
}

/// Per-round wall-clock samples for a fresh engine under `grad`.
fn time_rounds(sizes: &Sizes, grad: GradReduction) -> (Vec<f64>, FedAvg) {
    let exp = round_experiment(sizes, grad);
    let mut engine = exp.engine(sizes.k, sizes.e);
    // Warmup round: touches every allocation path once.
    engine.run_round();
    let samples = (0..sizes.rounds)
        .map(|_| {
            let start = Instant::now();
            engine.run_round();
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    (samples, engine)
}

fn bench_round(sizes: &Sizes) -> RoundResult {
    let median = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let (naive_samples, _) = time_rounds(sizes, GradReduction::Naive);

    let exp = round_experiment(sizes, GradReduction::FusedSerial);
    let mut engine = exp.engine(sizes.k, sizes.e);
    engine.run_round();
    let warm = engine.scratch_allocations();
    let fast_samples: Vec<f64> = (0..sizes.rounds)
        .map(|_| {
            let start = Instant::now();
            engine.run_round();
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    let steady_delta = engine.scratch_allocations() - warm;
    let samples_per_round = sizes.k * exp.samples_per_device() * sizes.e;

    RoundResult {
        naive_ns: median(naive_samples),
        fast_ns: median(fast_samples),
        samples_per_round,
        scratch_allocations_warm: warm,
        scratch_allocations_steady_delta: steady_delta,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns * 1e-9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns * 1e-6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns * 1e-3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn json_kernel(row: &KernelRow, reps: usize) -> String {
    format!(
        r#"{{"name":"{}","size":"{}","reps":{},"baseline_ns":{:.1},"fast_ns":{:.1},"speedup":{:.3},"throughput":{:.3e},"throughput_unit":"{}"}}"#,
        row.name,
        row.size,
        reps,
        row.baseline_ns,
        row.fast_ns,
        row.speedup(),
        row.throughput,
        row.throughput_unit,
    )
}

fn json_report(
    smoke: bool,
    sizes: &Sizes,
    kernels: &[KernelRow],
    grad_steady_delta: u64,
    round: &RoundResult,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"schema\": \"BENCH_perf.v1\",\n  \"smoke\": {smoke},\n"
    ));
    out.push_str("  \"kernels\": [\n");
    for (i, row) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        out.push_str(&format!(
            "    {}{comma}\n",
            json_kernel(row, sizes.kernel_reps)
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"grad_scratch_steady_allocations\": {grad_steady_delta},\n"
    ));
    out.push_str(&format!(
        concat!(
            "  \"round\": {{\"devices\":{},\"k\":{},\"e\":{},\"rounds_timed\":{},",
            "\"naive_ns_median\":{:.1},\"fast_ns_median\":{:.1},\"speedup_vs_naive\":{:.3},",
            "\"samples_per_round\":{},\"throughput_samples_per_s\":{:.3e},",
            "\"scratch_allocations_warm\":{},\"scratch_allocations_steady_delta\":{}}}\n"
        ),
        sizes.devices,
        sizes.k,
        sizes.e,
        sizes.rounds,
        round.naive_ns,
        round.fast_ns,
        round.speedup_vs_naive(),
        round.samples_per_round,
        round.samples_per_round as f64 / (round.fast_ns * 1e-9),
        round.scratch_allocations_warm,
        round.scratch_allocations_steady_delta,
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes = if smoke { SMOKE } else { FULL };

    banner("Perf harness: fast-path kernels vs naive references");

    section(&format!(
        "kernel microbenches (median of {} reps)",
        sizes.kernel_reps
    ));
    println!(
        "{:>12} {:>16} {:>12} {:>12} {:>9} {:>16}",
        "kernel", "size", "baseline", "fast", "speedup", "throughput"
    );
    let mut kernels = vec![
        bench_dot(&sizes),
        bench_axpy_shrink(&sizes),
        bench_matmul(&sizes),
        bench_matmul_tn(&sizes),
    ];
    let (grad_row, grad_steady_delta) = bench_gradient(&sizes);
    kernels.push(grad_row);
    for row in &kernels {
        println!(
            "{:>12} {:>16} {:>12} {:>12} {:>8.2}x {:>13.3e} {}",
            row.name,
            row.size,
            fmt_ns(row.baseline_ns),
            fmt_ns(row.fast_ns),
            row.speedup(),
            row.throughput,
            row.throughput_unit,
        );
    }
    println!("\ngradient scratch allocations after warmup: {grad_steady_delta} (want 0)");

    section(&format!(
        "end-to-end round: {} devices, K = {}, E = {}, median of {} rounds, eval off",
        sizes.devices, sizes.k, sizes.e, sizes.rounds
    ));
    let round = bench_round(&sizes);
    println!(
        "naive round:  {:>12}\nfused round:  {:>12}\nspeedup_vs_naive: {:.2}x",
        fmt_ns(round.naive_ns),
        fmt_ns(round.fast_ns),
        round.speedup_vs_naive(),
    );
    println!(
        "samples/round: {}   fused throughput: {:.3e} sample/s",
        round.samples_per_round,
        round.samples_per_round as f64 / (round.fast_ns * 1e-9),
    );
    println!(
        "engine scratch allocations: {} warm, +{} across {} steady rounds",
        round.scratch_allocations_warm, round.scratch_allocations_steady_delta, sizes.rounds,
    );

    let report = json_report(smoke, &sizes, &kernels, grad_steady_delta, &round);
    std::fs::write("BENCH_perf.json", &report).expect("failed to write BENCH_perf.json");
    println!("\nwrote BENCH_perf.json");

    if !smoke && round.speedup_vs_naive() < 1.5 {
        eprintln!(
            "WARNING: headline speedup_vs_naive {:.2} below the 1.5x gate",
            round.speedup_vs_naive()
        );
        std::process::exit(1);
    }
}
