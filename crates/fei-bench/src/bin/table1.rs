//! Regenerates **Table I**: duration of the local-training step (3) for the
//! paper's `(E, n_k)` grid, measured on the simulated Raspberry Pi, next to
//! the paper's published durations. Also reruns the §VI-B least-squares fit
//! of the energy coefficients `c₀`, `c₁`.
//!
//! Run: `cargo run --release -p fei-bench --bin table1`

use fei_bench::{banner, section};
use fei_core::calibration::{fit_timing_model, paper_table1, TRAINING_POWER_WATTS};
use fei_sim::DetRng;
use fei_testbed::RaspberryPi;

fn main() {
    banner("Table I: time duration of step (3) under different training parameters");

    let pi = RaspberryPi::paper_calibrated();
    let mut rng = DetRng::new(0x7AB1);
    let simulated = pi.measure_table1(&mut rng);
    let paper = paper_table1();

    section("durations (seconds)");
    println!(
        "{:>4} {:>6} {:>12} {:>12} {:>8}",
        "E", "n_k", "paper", "simulated", "diff%"
    );
    for (p, s) in paper.iter().zip(&simulated) {
        let diff = (s.seconds - p.seconds) / p.seconds * 100.0;
        println!(
            "{:>4} {:>6} {:>12.4} {:>12.4} {:>7.1}%",
            p.epochs, p.samples, p.seconds, s.seconds, diff
        );
    }

    section("least-squares fit of Eq. (5) coefficients (x 5.553 W training power)");
    for (label, rows) in [("paper Table I", &paper), ("simulated", &simulated)] {
        let fit = fit_timing_model(rows).expect("table data is well-posed");
        let model = fit
            .to_computation_model(TRAINING_POWER_WATTS)
            .expect("fit produces valid coefficients");
        println!(
            "{label:>14}: c0 = {:.3e} J/(sample*epoch)   c1 = {:.3e} J/epoch   (fit rmse {:.2} ms)",
            model.c0(),
            model.c1(),
            fit.rmse_seconds * 1e3,
        );
    }
    println!(
        "{:>14}: c0 = 7.790e-5                  c1 = 3.340e-3   (published §VI-B)",
        "paper reports"
    );
}
