//! Ablation: what happens to EE-FEI when data collection is NOT pre-loaded?
//!
//! The paper's formalism (Eqs. 3-4) includes the IoT network's per-sample
//! upload energy `ρ·n_k`, but its prototype pre-loads every dataset, so the
//! measured traces exclude collection entirely. This ablation quantifies the
//! difference: with NB-IoT's 7.74 mW·s/byte and 785-byte samples, collection
//! costs ~6 J *per sample* — three orders of magnitude above everything
//! else — and completely reshapes the optimal schedule.
//!
//! Run: `cargo run --release -p fei-bench --bin ablation_collection`

use fei_bench::{banner, fmt_joules, section};
use fei_core::{AcsOptimizer, ConvergenceBound, EnergyObjective};
use fei_testbed::{RaspberryPi, Testbed, TestbedConfig};

fn main() {
    banner("Ablation: pre-loaded data vs live NB-IoT collection");

    let preloaded = Testbed::paper_prototype();
    let live = Testbed::new(
        TestbedConfig {
            preloaded_data: false,
            ..Default::default()
        },
        RaspberryPi::paper_calibrated(),
    );

    section("per-round, per-server energy decomposition (E = 20)");
    println!(
        "{:>24} {:>14} {:>14}",
        "component", "pre-loaded", "live NB-IoT"
    );
    let pre_run = preloaded.run(1, 20, 1);
    let live_run = live.run(1, 20, 1);
    for (name, a, b) in [
        (
            "data collection",
            pre_run.breakdown.collection_j,
            live_run.breakdown.collection_j,
        ),
        (
            "waiting",
            pre_run.breakdown.waiting_j,
            live_run.breakdown.waiting_j,
        ),
        (
            "model download",
            pre_run.breakdown.download_j,
            live_run.breakdown.download_j,
        ),
        (
            "local training",
            pre_run.breakdown.training_j,
            live_run.breakdown.training_j,
        ),
        (
            "model upload",
            pre_run.breakdown.upload_j,
            live_run.breakdown.upload_j,
        ),
    ] {
        println!("{name:>24} {:>14} {:>14}", fmt_joules(a), fmt_joules(b));
    }
    println!(
        "{:>24} {:>14} {:>14}",
        "TOTAL",
        fmt_joules(pre_run.total_joules()),
        fmt_joules(live_run.total_joules())
    );

    section("analytic B0/B1 and the re-optimized schedule");
    let bound = ConvergenceBound::new(50.0, 0.05, 1e-4).expect("valid constants");
    for (label, testbed) in [("pre-loaded", &preloaded), ("live NB-IoT", &live)] {
        let model = testbed.energy_model();
        let objective = EnergyObjective::new(bound, model.b0(), model.b1(), 0.1, 20)
            .expect("feasible objective");
        let plan = AcsOptimizer::default()
            .solve(&objective, 20.0, 1.0)
            .expect("solvable");
        println!(
            "{label:>12}: B0 = {:>10} /epoch, B1 = {:>10} /round -> K*={}, E*={}, T*={} ({})",
            fmt_joules(model.b0()),
            fmt_joules(model.b1()),
            plan.k,
            plan.e,
            plan.t,
            fmt_joules(plan.energy),
        );
    }
    println!(
        "\nmechanism: live collection makes every round's fixed cost enormous, so the\n\
         optimizer crams maximal local work into minimal rounds (E* explodes, T* -> 1).\n\
         The paper's measured optimum only applies to the pre-loaded regime."
    );
}
