//! Ablation: participant scheduling and fleet lifetime.
//!
//! EE-FEI picks *how many* servers participate (`K*`); this ablation asks
//! *which ones*. With battery-powered edge devices, uniform-random selection
//! (the paper's policy) concentrates duty unevenly over short horizons,
//! while round-robin and max-remaining-energy ("top-K battery") scheduling
//! spread it — extending the time until the first device dies. This is the
//! energy-aware scheduling direction of the paper's reference \[12\].
//!
//! Run: `cargo run --release -p fei-bench --bin ablation_scheduling`

use fei_bench::{banner, section};
use fei_power::BatteryFleet;
use fei_sim::DetRng;
use fei_testbed::Testbed;

const N: usize = 20;
const K: usize = 5;
const E: usize = 20;
/// Battery capacity per device, joules — sized so depletion happens within
/// the horizon.
const CAPACITY_J: f64 = 500.0;
const MAX_ROUNDS: usize = 2_000;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Policy {
    UniformRandom,
    RoundRobin,
    TopKBattery,
}

fn select(policy: Policy, round: usize, fleet: &BatteryFleet, rng: &mut DetRng) -> Vec<usize> {
    match policy {
        Policy::UniformRandom => {
            let alive = fleet.alive_devices();
            if alive.len() < K {
                return Vec::new();
            }
            let picks = rng.sample_indices(alive.len(), K);
            picks.into_iter().map(|i| alive[i]).collect()
        }
        Policy::RoundRobin => {
            let alive = fleet.alive_devices();
            if alive.len() < K {
                return Vec::new();
            }
            (0..K)
                .map(|i| alive[(round * K + i) % alive.len()])
                .collect()
        }
        Policy::TopKBattery => {
            let picks = fleet.top_k_by_remaining(K);
            if picks.len() < K {
                Vec::new()
            } else {
                picks
            }
        }
    }
}

struct Outcome {
    rounds_until_first_death: usize,
    rounds_until_quorum_lost: usize,
    soc_spread_at_death: f64,
}

fn simulate(policy: Policy, per_round_energy: f64, seed: u64) -> Outcome {
    let mut fleet = BatteryFleet::uniform(N, CAPACITY_J);
    let mut rng = DetRng::new(seed);
    let mut first_death = None;
    for round in 0..MAX_ROUNDS {
        let selected = select(policy, round, &fleet, &mut rng);
        if selected.is_empty() {
            return Outcome {
                rounds_until_first_death: first_death.unwrap_or(round),
                rounds_until_quorum_lost: round,
                soc_spread_at_death: soc_spread(&fleet),
            };
        }
        for device in selected {
            fleet.consume(device, per_round_energy);
        }
        if first_death.is_none() && fleet.alive_devices().len() < N {
            first_death = Some(round + 1);
        }
    }
    Outcome {
        rounds_until_first_death: first_death.unwrap_or(MAX_ROUNDS),
        rounds_until_quorum_lost: MAX_ROUNDS,
        soc_spread_at_death: soc_spread(&fleet),
    }
}

fn soc_spread(fleet: &BatteryFleet) -> f64 {
    let socs: Vec<f64> = (0..fleet.len()).map(|d| fleet.state_of_charge(d)).collect();
    let max = socs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = socs.iter().copied().fold(f64::INFINITY, f64::min);
    max - min
}

fn main() {
    banner("Ablation: participant scheduling and battery-fleet lifetime");

    // Per-participation energy of one server in one (K=5, E=20) round.
    let testbed = Testbed::paper_prototype();
    let run = testbed.run(K, E, 1);
    let per_round_energy = run.total_joules() / K as f64;
    println!(
        "fleet: N={N}, K={K}, E={E}; {:.2} J per participation, {CAPACITY_J} J batteries",
        per_round_energy
    );

    section("lifetime by policy (mean over 5 seeds)");
    println!(
        "{:>16} {:>18} {:>18} {:>14}",
        "policy", "first death (T)", "quorum lost (T)", "SoC spread"
    );
    for (name, policy) in [
        ("uniform random", Policy::UniformRandom),
        ("round robin", Policy::RoundRobin),
        ("top-K battery", Policy::TopKBattery),
    ] {
        let mut first = 0.0;
        let mut quorum = 0.0;
        let mut spread = 0.0;
        let seeds = 5;
        for seed in 0..seeds {
            let o = simulate(policy, per_round_energy, seed);
            first += o.rounds_until_first_death as f64;
            quorum += o.rounds_until_quorum_lost as f64;
            spread += o.soc_spread_at_death;
        }
        let s = seeds as f64;
        println!(
            "{name:>16} {:>18.1} {:>18.1} {:>14.3}",
            first / s,
            quorum / s,
            spread / s
        );
    }
    println!(
        "\nmechanism: total energy per round is policy-independent (homogeneous fleet),\n\
         but balanced duty delays the first depletion — the fleet's usable lifetime —\n\
         which is why energy-aware scheduling composes naturally with EE-FEI's (K*, E*)."
    );
}
