//! Ablation: model capacity and the energy trade-off.
//!
//! The paper trains multinomial logistic regression; its introduction
//! motivates EE-FEI with the *growth* of model-training complexity. This
//! ablation swaps in a one-hidden-layer MLP (same federated pipeline — the
//! runtime is generic over [`fei_ml::Model`]) and compares:
//!
//! * the accuracy ceiling each model reaches;
//! * rounds-to-target at a shared feasible target;
//! * energy-to-target, scaling the paper's calibrated per-epoch compute
//!   energy and upload payload by each model's parameter count (the same
//!   linear-in-work assumption behind Eq. 5).
//!
//! Run: `cargo run --release -p fei-bench --bin ablation_model`

use fei_bench::{banner, fmt_joules, section};
use fei_data::Partition;
use fei_fl::{FedAvg, FedAvgConfig, StopCondition};
use fei_ml::{LogisticRegression, Mlp, Model, SgdConfig};
use fei_sim::DetRng;
use fei_testbed::Testbed;

const K: usize = 5;
const E: usize = 8;
const TARGET: f64 = 0.90;
const MAX_ROUNDS: usize = 200;

fn main() {
    banner("Ablation: logistic regression vs MLP in the same energy pipeline");

    // Shared campaign data (paper_like scale).
    let gen = fei_data::SyntheticMnist::new(fei_data::SyntheticMnistConfig {
        pixel_noise_std: 0.5,
        ..Default::default()
    });
    let train = gen.generate(3_000, 0);
    let test = gen.generate(2_000, 1);
    let clients = Partition::iid(train.len(), 20, &mut DetRng::new(0xF1)).apply(&train);
    let config = FedAvgConfig {
        clients_per_round: K,
        local_epochs: E,
        sgd: SgdConfig::new(0.005, 0.998, None),
        ..Default::default()
    };

    let testbed = Testbed::paper_prototype();
    let model_energy = testbed.energy_model();
    let lr_params = (784 * 10 + 10) as f64;

    section(&format!(
        "training to {:.0}% (K = {K}, E = {E})",
        TARGET * 100.0
    ));
    println!(
        "{:>22} {:>10} {:>10} {:>10} {:>14}",
        "model", "params", "T(target)", "final acc", "energy"
    );

    // Each candidate: (label, boxed runner producing (params, T, final_acc)).
    let lr_model = LogisticRegression::zeros(784, 10);
    let mlp_model = Mlp::new(784, 32, 10, 0xA11);

    let report = |label: &str, params: usize, history: fei_fl::TrainingHistory| {
        let t = history.rounds_to_accuracy(TARGET);
        let final_acc = history
            .accuracy_curve()
            .last()
            .map(|&(_, a)| a)
            .unwrap_or(0.0);
        // Scale the calibrated LR compute/upload energy by parameter count —
        // the linear-in-work assumption of Eq. 5 applied across models.
        let scale = params as f64 / lr_params;
        let energy = t.map(|t| {
            let per_round =
                K as f64 * (model_energy.b0() * E as f64 * scale + model_energy.b1() * scale);
            per_round * t as f64
        });
        println!(
            "{label:>22} {params:>10} {:>10} {final_acc:>10.4} {:>14}",
            t.map_or("-".into(), |t| t.to_string()),
            energy.map_or("-".into(), fmt_joules),
        );
    };

    let mut lr_run = FedAvg::with_model(config.clone(), clients.clone(), test.clone(), lr_model);
    report(
        "logistic regression",
        lr_run.global_model().num_params(),
        lr_run.run_until(StopCondition::accuracy(TARGET, MAX_ROUNDS)),
    );

    let mut mlp_run = FedAvg::with_model(config, clients, test, mlp_model);
    report(
        "MLP (32 hidden)",
        mlp_run.global_model().num_params(),
        mlp_run.run_until(StopCondition::accuracy(TARGET, MAX_ROUNDS)),
    );

    println!(
        "\nreading: the MLP carries ~3x the parameters, so every epoch and every\n\
         upload costs ~3x — on a task logistic regression already handles, extra\n\
         capacity only spends joules. EE-FEI's levers (K*, E*) apply unchanged to\n\
         either model; only the calibrated B0/B1 move."
    );
}
