//! Regenerates **Fig. 6**: total energy to the stringent accuracy target
//! versus `E` (at the Fig.-5 optimum `K = 1`), theoretical bound next to
//! measured traces, with `E*` from each — and the paper's headline number:
//! the energy reduction of the optimized `E*` versus the `K = 1, E = 1`
//! baseline (paper: **49.8 %**).
//!
//! Run: `cargo run --release -p fei-bench --bin fig6`

use fei_bench::{
    banner, calibrate, estimate_loss_floor, fmt_joules, run_calibration_campaign, section,
};
use fei_core::EnergyObjective;
use fei_testbed::{FlExperiment, FlExperimentConfig, Testbed, STRINGENT_TARGET};

const FIXED_K: usize = 1;
const ES: [usize; 8] = [1, 2, 5, 10, 20, 40, 60, 100];

fn main() {
    banner("Fig. 6: energy consumption vs E (theoretical bound vs measured traces)");

    let exp = FlExperiment::prepare(FlExperimentConfig::paper_like());
    let testbed = Testbed::paper_prototype();

    section("calibrating the convergence bound from training runs");
    let runs = run_calibration_campaign(&exp);
    let f_star = estimate_loss_floor(&exp);
    let cal = calibrate(&runs, f_star).expect("calibration campaign crosses the stringent target");
    println!(
        "A0={:.4}  A1={:.4}  A2={:.6}  F*={:.4}  epsilon={:.4}",
        cal.bound.a0(),
        cal.bound.a1(),
        cal.bound.a2(),
        cal.f_star,
        cal.epsilon,
    );

    let model = testbed.energy_model();
    let objective = EnergyObjective::new(
        cal.bound,
        model.b0(),
        model.b1(),
        cal.epsilon,
        testbed.config().num_devices,
    )
    .expect("calibrated objective is feasible");

    section(&format!(
        "energy to {:.0}% accuracy, K = {FIXED_K}",
        STRINGENT_TARGET * 100.0
    ));
    println!(
        "{:>4} {:>10} {:>14} {:>10} {:>14}",
        "E", "T(bound)", "bound energy", "T(meas)", "measured"
    );
    let mut bound_curve = Vec::new();
    let mut measured_curve = Vec::new();
    for &e in &ES {
        let cap = if e <= 2 { 800 } else { 300 };
        let bound_point = objective.eval_integer(FIXED_K, e);
        let (_, t_measured) = exp.run_to_accuracy(FIXED_K, e, STRINGENT_TARGET, cap);
        let measured = t_measured.map(|t| testbed.run(FIXED_K, e, t).total_joules());
        println!(
            "{e:>4} {:>10} {:>14} {:>10} {:>14}",
            bound_point.map_or("-".into(), |(t, _)| t.to_string()),
            bound_point.map_or("-".into(), |(_, en)| fmt_joules(en)),
            t_measured.map_or("-".into(), |t| t.to_string()),
            measured.map_or("-".into(), fmt_joules),
        );
        if let Some((_, en)) = bound_point {
            bound_curve.push((e, en));
        }
        if let Some(en) = measured {
            measured_curve.push((e, en));
        }
    }

    section("optimal E* and the headline reduction");
    let best = |curve: &[(usize, f64)]| {
        curve
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite energies"))
            .copied()
    };
    let bound_best = best(&bound_curve);
    let measured_best = best(&measured_curve);
    println!(
        "E* from theoretical bound: {:?}   E* from measured traces: {:?}",
        bound_best.map(|(e, _)| e),
        measured_best.map(|(e, _)| e),
    );

    let baseline = measured_curve
        .iter()
        .find(|&&(e, _)| e == 1)
        .map(|&(_, en)| en);
    match (baseline, measured_best) {
        (Some(base), Some((e_star, best_energy))) => {
            let saving = (1.0 - best_energy / base) * 100.0;
            println!(
                "measured: E* = {e_star} uses {} vs {} at K=1,E=1 -> {saving:.1}% energy reduction",
                fmt_joules(best_energy),
                fmt_joules(base),
            );
            println!("paper reports: 49.8% reduction vs K=1, E=1");
        }
        _ => println!("baseline K=1, E=1 did not reach the target within the round cap"),
    }
}
