//! Chaos soak: protocol liveness and safety under wire-level misbehaviour.
//!
//! Soaks the fei-proto coordinator/participant cluster across a fixed seed
//! matrix and escalating chaos profiles — frames dropped, duplicated,
//! reordered, and bit-corrupted on both links — and asserts the two
//! protocol guarantees hold on every run:
//!
//! * **liveness** — every targeted round closes (commit or abort) within
//!   the tick budget;
//! * **safety** — no commit ever carries an update from a client whose
//!   heartbeat lease had lapsed (a muted participant rides every fleet as
//!   the probe).
//!
//! Control-plane traffic is billed to an [`fei_core::ledger::EnergyLedger`]
//! at WiFi link energy, so the soak also reports what fleet coordination
//! itself costs.
//!
//! Run: `cargo run --release -p fei-bench --bin chaos_soak`
//! CI smoke: append `-- --smoke` for a seconds-scale configuration.

use fei_bench::{banner, fmt_joules, section};
use fei_proto::ChaosConfig;
use fei_testbed::{ChaosCampaign, ChaosCampaignConfig};

struct Soak {
    seeds: &'static [u64],
    rounds_per_seed: u64,
}

const FULL: Soak = Soak {
    seeds: &[1, 2, 3, 5, 8, 13, 21, 34, 55, 89],
    rounds_per_seed: 8,
};

/// Seconds-scale configuration for the CI smoke step.
const SMOKE: Soak = Soak {
    seeds: &[1, 2, 3],
    rounds_per_seed: 3,
};

struct Profile {
    name: &'static str,
    drop: f64,
    dup: f64,
    reorder: f64,
    corrupt: f64,
}

const PROFILES: &[Profile] = &[
    Profile {
        name: "quiet",
        drop: 0.0,
        dup: 0.0,
        reorder: 0.0,
        corrupt: 0.0,
    },
    Profile {
        name: "lossy",
        drop: 0.10,
        dup: 0.02,
        reorder: 0.05,
        corrupt: 0.0,
    },
    Profile {
        name: "hostile",
        drop: 0.12,
        dup: 0.10,
        reorder: 0.12,
        corrupt: 0.06,
    },
];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let soak = if smoke { SMOKE } else { FULL };
    banner("Chaos soak: coordinator protocol under wire-level misbehaviour");

    section(&format!(
        "{} seeds x {} rounds per seed, 5 honest + 1 heartbeat-muted participant",
        soak.seeds.len(),
        soak.rounds_per_seed
    ));
    println!(
        "{:>8} {:>10} {:>8} {:>9} {:>10} {:>12} {:>8} {:>6}",
        "profile",
        "committed",
        "aborted",
        "rejected",
        "ctrl bytes",
        "ctrl energy",
        "liveness",
        "safety"
    );

    let mut all_ok = true;
    for profile in PROFILES {
        let mut config = ChaosCampaignConfig::default_matrix(soak.seeds.to_vec());
        config.rounds_per_seed = soak.rounds_per_seed;
        config.profile = ChaosConfig {
            drop_prob: profile.drop,
            dup_prob: profile.dup,
            reorder_prob: profile.reorder,
            corrupt_prob: profile.corrupt,
            seed: 0,
        };
        let report = ChaosCampaign::new(config).run();
        let liveness = report.liveness_ok();
        let safety = report.safety_ok();
        all_ok &= liveness && safety;
        let rejected: u64 = report
            .runs
            .iter()
            .map(|r| r.report.coordinator.rejected)
            .sum();
        let control_bytes: u64 = report.runs.iter().map(|r| r.report.control_bytes()).sum();
        println!(
            "{:>8} {:>10} {:>8} {:>9} {:>10} {:>12} {:>8} {:>6}",
            profile.name,
            report.total_committed(),
            report.total_aborted(),
            rejected,
            control_bytes,
            fmt_joules(report.ledger.control_joules()),
            if liveness { "ok" } else { "FAIL" },
            if safety { "ok" } else { "FAIL" },
        );
    }

    println!(
        "\nreading: liveness means every round closed — commit or abort — inside\n\
         the tick budget even when the wire drops, duplicates, reorders, and\n\
         corrupts frames; safety means no expired client's update ever reached\n\
         an aggregate. Aborts rise with hostility (quorum misses are the\n\
         protocol degrading gracefully, not hanging), and the control-energy\n\
         column is the coordination bill the paper's model ignores."
    );

    assert!(all_ok, "chaos soak found a liveness or safety violation");
}
