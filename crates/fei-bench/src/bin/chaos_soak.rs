//! Chaos soak: protocol liveness and safety under wire-level misbehaviour.
//!
//! Soaks the fei-proto coordinator/participant cluster across a fixed seed
//! matrix and escalating chaos profiles — frames dropped, duplicated,
//! reordered, and bit-corrupted on both links — and asserts the protocol
//! guarantees hold on every run:
//!
//! * **liveness** — every targeted round closes (commit or abort) within
//!   the tick budget;
//! * **safety** — no commit ever carries an update from a client whose
//!   heartbeat lease had lapsed (a muted participant rides every fleet as
//!   the probe).
//!
//! With `--coordinator-crashes`, every run additionally schedules seeded
//! coordinator kill/restart events and the soak asserts the two recovery
//! invariants on top:
//!
//! * **recovery liveness** — every round open at a crash commits or aborts
//!   within the recovery budget (restart tick + round deadline);
//! * **recovery safety** — no client update is aggregated twice across a
//!   restart, and the whole (seed, crash schedule) replays bit-identically.
//!
//! Control-plane traffic is billed to an [`fei_core::ledger::EnergyLedger`]
//! at WiFi link energy, so the soak also reports what fleet coordination
//! itself costs; uploads stranded in crash-abandoned rounds are billed as
//! wasted energy.
//!
//! Run: `cargo run --release -p fei-bench --bin chaos_soak`
//! CI smoke: append `-- --smoke` for a seconds-scale configuration.

use fei_bench::{banner, fmt_joules, section};
use fei_proto::ChaosConfig;
use fei_testbed::{ChaosCampaign, ChaosCampaignConfig, ChaosCampaignReport};

struct Soak {
    seeds: &'static [u64],
    rounds_per_seed: u64,
}

const FULL: Soak = Soak {
    seeds: &[1, 2, 3, 5, 8, 13, 21, 34, 55, 89],
    rounds_per_seed: 8,
};

/// Seconds-scale configuration for the CI smoke step.
const SMOKE: Soak = Soak {
    seeds: &[1, 2, 3],
    rounds_per_seed: 3,
};

/// Coordinator kill/restart events per run under `--coordinator-crashes`.
const CRASHES_PER_RUN: u64 = 2;

struct Profile {
    name: &'static str,
    drop: f64,
    dup: f64,
    reorder: f64,
    corrupt: f64,
}

const PROFILES: &[Profile] = &[
    Profile {
        name: "quiet",
        drop: 0.0,
        dup: 0.0,
        reorder: 0.0,
        corrupt: 0.0,
    },
    Profile {
        name: "lossy",
        drop: 0.10,
        dup: 0.02,
        reorder: 0.05,
        corrupt: 0.0,
    },
    Profile {
        name: "hostile",
        drop: 0.12,
        dup: 0.10,
        reorder: 0.12,
        corrupt: 0.06,
    },
];

/// One profile's audited results, kept for the JSON report.
struct ProfileResult {
    name: &'static str,
    report: ChaosCampaignReport,
    replay_identical: bool,
}

impl ProfileResult {
    fn rejected(&self) -> u64 {
        self.report
            .runs
            .iter()
            .map(|r| r.report.coordinator.rejected)
            .sum()
    }

    fn control_bytes(&self) -> u64 {
        self.report
            .runs
            .iter()
            .map(|r| r.report.control_bytes())
            .sum()
    }

    fn recovery_violations(&self) -> u64 {
        self.report
            .runs
            .iter()
            .map(|r| r.report.recovery_violations)
            .sum()
    }

    fn double_aggregations(&self) -> u64 {
        self.report
            .runs
            .iter()
            .map(|r| r.report.double_aggregations)
            .sum()
    }

    fn resumes(&self) -> (u64, u64) {
        self.report.runs.iter().fold((0, 0), |(acc, rej), r| {
            (
                acc + r.report.coordinator.resumes_accepted,
                rej + r.report.coordinator.resumes_rejoined,
            )
        })
    }

    fn aborts(&self) -> (u64, u64, u64, u64) {
        self.report
            .runs
            .iter()
            .fold((0, 0, 0, 0), |(q, f, c, x), r| {
                let a = r.report.coordinator.aborts;
                (
                    q + a.quorum_miss,
                    f + a.fleet_collapse,
                    c + a.cancelled,
                    x + a.coordinator_crash,
                )
            })
    }

    fn json_row(&self, last: bool) -> String {
        let (quorum_miss, fleet_collapse, cancelled, coordinator_crash) = self.aborts();
        let (resumes_accepted, resumes_rejoined) = self.resumes();
        let comma = if last { "" } else { "," };
        format!(
            "    {{\"profile\": \"{}\", \"committed\": {}, \"aborted\": {}, \
             \"aborts\": {{\"quorum_miss\": {quorum_miss}, \"fleet_collapse\": {fleet_collapse}, \
             \"cancelled\": {cancelled}, \"coordinator_crash\": {coordinator_crash}}}, \
             \"rejected\": {}, \"control_bytes\": {}, \"control_joules\": {:.6}, \
             \"wasted_joules\": {:.6}, \"crashes\": {}, \"resumes_accepted\": {resumes_accepted}, \
             \"resumes_rejoined\": {resumes_rejoined}, \"recovery_violations\": {}, \
             \"double_aggregations\": {}, \"liveness_ok\": {}, \"safety_ok\": {}, \
             \"recovery_ok\": {}, \"replay_identical\": {}}}{comma}\n",
            self.name,
            self.report.total_committed(),
            self.report.total_aborted(),
            self.rejected(),
            self.control_bytes(),
            self.report.ledger.control_joules(),
            self.report.ledger.wasted_joules(),
            self.report.total_crashes(),
            self.recovery_violations(),
            self.double_aggregations(),
            self.report.liveness_ok(),
            self.report.safety_ok(),
            self.report.recovery_ok(),
            self.replay_identical,
        )
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let crashes = if args.iter().any(|a| a == "--coordinator-crashes") {
        CRASHES_PER_RUN
    } else {
        0
    };
    let soak = if smoke { SMOKE } else { FULL };
    banner("Chaos soak: coordinator protocol under wire-level misbehaviour");

    section(&format!(
        "{} seeds x {} rounds per seed, 5 honest + 1 heartbeat-muted participant, \
         {crashes} coordinator crashes per run",
        soak.seeds.len(),
        soak.rounds_per_seed
    ));
    println!(
        "{:>8} {:>10} {:>8} {:>9} {:>10} {:>12} {:>8} {:>8} {:>6} {:>8}",
        "profile",
        "committed",
        "aborted",
        "rejected",
        "ctrl bytes",
        "ctrl energy",
        "crashes",
        "liveness",
        "safety",
        "recovery"
    );

    let mut all_ok = true;
    let mut results: Vec<ProfileResult> = Vec::with_capacity(PROFILES.len());
    for profile in PROFILES {
        let mut config = ChaosCampaignConfig::default_matrix(soak.seeds.to_vec())
            .with_coordinator_crashes(crashes);
        config.rounds_per_seed = soak.rounds_per_seed;
        config.profile = ChaosConfig {
            drop_prob: profile.drop,
            dup_prob: profile.dup,
            reorder_prob: profile.reorder,
            corrupt_prob: profile.corrupt,
            seed: 0,
        };
        let report = ChaosCampaign::new(config.clone()).run();
        // Crash schedules are pure in the seed, so the same (seed, crash
        // schedule) matrix must replay bit-identically; without crashes the
        // cluster is already deterministic and the check is nearly free.
        let replay_identical = ChaosCampaign::new(config).run() == report;
        let liveness = report.liveness_ok();
        let safety = report.safety_ok();
        let recovery = report.recovery_ok();
        all_ok &= liveness && safety && recovery && replay_identical;
        let result = ProfileResult {
            name: profile.name,
            report,
            replay_identical,
        };
        println!(
            "{:>8} {:>10} {:>8} {:>9} {:>10} {:>12} {:>8} {:>8} {:>6} {:>8}",
            profile.name,
            result.report.total_committed(),
            result.report.total_aborted(),
            result.rejected(),
            result.control_bytes(),
            fmt_joules(result.report.ledger.control_joules()),
            result.report.total_crashes(),
            if liveness { "ok" } else { "FAIL" },
            if safety { "ok" } else { "FAIL" },
            if recovery && result.replay_identical {
                "ok"
            } else {
                "FAIL"
            },
        );
        results.push(result);
    }

    section("machine-readable (JSON)");
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"BENCH_chaos_soak.v1\",\n  \"smoke\": {smoke},\n"
    ));
    json.push_str(&format!(
        "  \"seeds\": {}, \"rounds_per_seed\": {}, \"coordinator_crashes_per_run\": {crashes},\n",
        soak.seeds.len(),
        soak.rounds_per_seed
    ));
    json.push_str("  \"profiles\": [\n");
    for (i, result) in results.iter().enumerate() {
        json.push_str(&result.json_row(i + 1 == results.len()));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"all_ok\": {all_ok}\n"));
    json.push_str("}\n");
    print!("{json}");
    std::fs::write("BENCH_chaos_soak.json", &json).expect("failed to write BENCH_chaos_soak.json");
    println!("\nwrote BENCH_chaos_soak.json");

    println!(
        "\nreading: liveness means every round closed — commit or abort — inside\n\
         the tick budget even when the wire drops, duplicates, reorders, and\n\
         corrupts frames; safety means no expired client's update ever reached\n\
         an aggregate. With coordinator crashes enabled, recovery means every\n\
         round open at a kill settled within the recovery budget after the\n\
         journal-driven restart, no update was aggregated twice across a\n\
         restart, and each (seed, crash schedule) replayed bit-identically.\n\
         Aborts rise with hostility (quorum misses are the protocol degrading\n\
         gracefully, not hanging), and the control-energy column is the\n\
         coordination bill the paper's model ignores."
    );

    assert!(
        all_ok,
        "chaos soak found a liveness, safety, or recovery violation"
    );
}
