//! Ablation: wire-compression tiers, byte-accurate upload energy, and the
//! re-planned `(K*, E*)`.
//!
//! The paper charges every upload a constant `e_U` sized for the full-f64
//! model. This ablation sweeps the wire codec's encoding tiers (`f64`,
//! `f32`, `q8`) with and without delta-vs-global mode, and asks three
//! questions per tier: how many uplink bytes does a round really move (the
//! engines' own `TransportStats`, not an estimate), what does encode+decode
//! cost in nanoseconds, and — feeding the true frame bytes through
//! [`EeFeiPlanner::replan_for_payload`] — where do the planned `(K*, E*)`
//! and the total campaign energy land once `B₁` reflects the compressed
//! payload?
//!
//! The lossless `f64` tier is the control: it must reproduce the
//! uncompressed engine bit-for-bit, so every other tier's end accuracy is
//! reported as a delta against it.
//!
//! Gates (full mode): `q8+delta` moves at least 4x fewer uplink bytes per
//! round than `f64`, every tier's end accuracy is within 0.5 pp of
//! lossless, and the codec performs zero steady-state allocations.
//!
//! Results are printed as a table and written to `BENCH_compression.json`
//! (schema in EXPERIMENTS.md).
//!
//! Run: `cargo run --release -p fei-bench --bin ablation_compression`
//! CI smoke: append `-- --smoke` for a seconds-scale configuration.

use std::hint::black_box;
use std::time::Instant;

use fei_bench::{banner, section};
use fei_core::{
    ComputationModel, ConvergenceBound, DataCollectionModel, EeFeiPlanner, RoundEnergyModel,
    UploadModel,
};
use fei_fl::{Encoding, FedAvg, WireConfig};
use fei_net::{Link, WireScratch};
use fei_testbed::{FlExperiment, FlExperimentConfig};

/// Sizing knobs for one sweep run.
struct Sizes {
    /// Devices in the fleet.
    devices: usize,
    /// Fraction of the paper's training set to generate.
    scale: f64,
    /// Participants per round (`K`).
    k: usize,
    /// Local epochs (`E`).
    e: usize,
    /// Rounds trained per tier (accuracy is evaluated after the last).
    rounds: usize,
    /// Repetitions per codec measurement (median taken).
    codec_reps: usize,
}

const FULL: Sizes = Sizes {
    devices: 20,
    scale: 0.2,
    k: 10,
    e: 5,
    rounds: 25,
    codec_reps: 21,
};

/// Seconds-scale configuration for the CI smoke step.
const SMOKE: Sizes = Sizes {
    devices: 5,
    scale: 0.01,
    k: 4,
    e: 2,
    rounds: 3,
    codec_reps: 5,
};

/// The sweep: every encoding, absolute and delta-vs-global.
const TIERS: [WireConfig; 6] = [
    WireConfig {
        encoding: Encoding::F64,
        delta: false,
    },
    WireConfig {
        encoding: Encoding::F64,
        delta: true,
    },
    WireConfig {
        encoding: Encoding::F32,
        delta: false,
    },
    WireConfig {
        encoding: Encoding::F32,
        delta: true,
    },
    WireConfig {
        encoding: Encoding::Q8,
        delta: false,
    },
    WireConfig {
        encoding: Encoding::Q8,
        delta: true,
    },
];

/// One sweep cell, also emitted as a JSON object (schema in
/// EXPERIMENTS.md).
struct Row {
    tier: WireConfig,
    payload_bytes: usize,
    uplink_bytes_per_round: u64,
    encode_ns: f64,
    decode_ns: f64,
    end_accuracy: f64,
    planned_k: usize,
    planned_e: usize,
    planned_energy_j: f64,
    nb_iot_k: usize,
    nb_iot_e: usize,
    nb_iot_energy_j: f64,
    wire_allocations_steady_delta: u64,
}

/// Median wall-clock of `reps` invocations of `f`, in nanoseconds, after one
/// untimed warmup call.
fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Trains `sizes.rounds` rounds under `tier` and returns the engine (for
/// accuracy + transport stats) plus the steady-state codec allocation delta.
fn run_tier(sizes: &Sizes, tier: WireConfig) -> (FedAvg, u64) {
    let config = FlExperimentConfig {
        num_devices: sizes.devices,
        scale: sizes.scale,
        test_scale: sizes.scale,
        // Never evaluate mid-run: accuracy is measured once at the end.
        eval_every: 1 << 30,
        ..FlExperimentConfig::paper_like()
    }
    .with_transport(tier);
    let mut engine = FlExperiment::prepare(config).engine(sizes.k, sizes.e);
    // Warmup round: touches every codec allocation path once.
    engine.run_round();
    let warm = engine.wire_allocations();
    for _ in 1..sizes.rounds {
        engine.run_round();
    }
    let steady_delta = engine.wire_allocations() - warm;
    (engine, steady_delta)
}

/// Encode/decode medians over the trained global model (realistic value
/// distribution, not noise).
fn bench_codec(sizes: &Sizes, tier: WireConfig, params: &[f64]) -> (f64, f64) {
    let base: Vec<f64> = params.iter().map(|w| w * 0.99).collect();
    let global = tier.delta.then_some(base.as_slice());
    let mut scratch = WireScratch::new();
    let mut payload = Vec::new();
    let encode_ns = median_ns(sizes.codec_reps, || {
        black_box(scratch.encode_into(tier, black_box(params), global, &mut payload));
    });
    let mut decoded = Vec::new();
    let decode_ns = median_ns(sizes.codec_reps, || {
        scratch
            .decode_into(black_box(&payload), global, &mut decoded)
            .expect("self-encoded payload decodes");
        black_box(&decoded);
    });
    (encode_ns, decode_ns)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns * 1e-6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns * 1e-3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn json_row(row: &Row, lossless: &Row) -> String {
    format!(
        concat!(
            r#"{{"tier":"{}","encoding":"{}","delta":{},"payload_bytes":{},"#,
            r#""uplink_bytes_per_round":{},"reduction_vs_f64":{:.3},"#,
            r#""encode_ns":{:.1},"decode_ns":{:.1},"end_accuracy":{:.4},"#,
            r#""accuracy_delta_pp":{:.3},"wifi_k":{},"wifi_e":{},"#,
            r#""wifi_energy_j":{:.3},"wifi_energy_delta_vs_f64_j":{:.3},"#,
            r#""nb_iot_k":{},"nb_iot_e":{},"nb_iot_energy_j":{:.3},"#,
            r#""nb_iot_energy_delta_vs_f64_j":{:.3},"#,
            r#""wire_allocations_steady_delta":{}}}"#
        ),
        row.tier.name(),
        row.tier.encoding.name(),
        row.tier.delta,
        row.payload_bytes,
        row.uplink_bytes_per_round,
        lossless.uplink_bytes_per_round as f64 / row.uplink_bytes_per_round as f64,
        row.encode_ns,
        row.decode_ns,
        row.end_accuracy,
        (row.end_accuracy - lossless.end_accuracy) * 100.0,
        row.planned_k,
        row.planned_e,
        row.planned_energy_j,
        row.planned_energy_j - lossless.planned_energy_j,
        row.nb_iot_k,
        row.nb_iot_e,
        row.nb_iot_energy_j,
        row.nb_iot_energy_j - lossless.nb_iot_energy_j,
        row.wire_allocations_steady_delta,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes = if smoke { SMOKE } else { FULL };

    banner("Ablation: wire compression tiers, bytes, and the re-planned (K*, E*)");

    // Planner with the A0 = 50 bound used by the other planning ablations:
    // under the headline A0 = 1 the budget collapses to T = 1 at E = 21 for
    // every payload, which hides the trade-off this sweep is after. Only the
    // upload term moves across tiers.
    let bound = ConvergenceBound::new(50.0, 0.05, 1e-4).expect("planning-ablation bound");
    let planner = EeFeiPlanner::new(RoundEnergyModel::paper_default(), bound, 0.1, 20)
        .expect("paper-like plan is feasible");
    let uplink = Link::wifi_uplink();
    // Second scenario: data already resident on-device (no per-round
    // collection) and an NB-IoT uplink whose 7.74 mJ/byte constant makes
    // e_U payload-dominated. Here B1 is essentially the upload itself, so
    // compression visibly moves (K*, E*), not just the energy total.
    let nb_iot = Link::nb_iot();
    let nb_energy = RoundEnergyModel::new(
        DataCollectionModel::new(1e-4).expect("valid rho"),
        ComputationModel::paper_fit(),
        UploadModel::wifi_default(),
        3_000,
    )
    .expect("valid cached-data model");
    let nb_planner =
        EeFeiPlanner::new(nb_energy, bound, 0.1, 20).expect("cached-data plan is feasible");

    section(&format!(
        "encoding x delta ({} devices, K = {}, E = {}, {} rounds per tier)",
        sizes.devices, sizes.k, sizes.e, sizes.rounds
    ));
    println!(
        "{:>10} {:>10} {:>12} {:>10} {:>10} {:>9} {:>11} {:>11} {:>12}",
        "tier",
        "payload",
        "uplink/rnd",
        "encode",
        "decode",
        "accuracy",
        "wifi K*/E*",
        "nbiot K*/E*",
        "nbiot energy"
    );

    let mut rows: Vec<Row> = Vec::new();
    for tier in TIERS {
        let (engine, steady_delta) = run_tier(&sizes, tier);
        let params = engine.global_model().to_flat().to_vec();
        let payload_bytes = tier.payload_len(params.len());
        let stats = engine.transport_stats();
        let (encode_ns, decode_ns) = bench_codec(&sizes, tier, &params);
        let plan = planner
            .replan_for_payload(&uplink, payload_bytes)
            .expect("payload replan stays feasible");
        let nb_plan = nb_planner
            .replan_for_payload(&nb_iot, payload_bytes)
            .expect("nb-iot replan stays feasible");
        let row = Row {
            tier,
            payload_bytes,
            uplink_bytes_per_round: stats.bytes_up / sizes.rounds as u64,
            encode_ns,
            decode_ns,
            end_accuracy: engine.evaluate().accuracy,
            planned_k: plan.solution.k,
            planned_e: plan.solution.e,
            planned_energy_j: plan.solution.energy,
            nb_iot_k: nb_plan.solution.k,
            nb_iot_e: nb_plan.solution.e,
            nb_iot_energy_j: nb_plan.solution.energy,
            wire_allocations_steady_delta: steady_delta,
        };
        println!(
            "{:>10} {:>10} {:>12} {:>10} {:>10} {:>8.2}% {:>11} {:>11} {:>10.0} J",
            row.tier.name(),
            row.payload_bytes,
            row.uplink_bytes_per_round,
            fmt_ns(row.encode_ns),
            fmt_ns(row.decode_ns),
            row.end_accuracy * 100.0,
            format!("{}/{}", row.planned_k, row.planned_e),
            format!("{}/{}", row.nb_iot_k, row.nb_iot_e),
            row.nb_iot_energy_j,
        );
        rows.push(row);
    }

    let lossless = &rows[0];
    let q8_delta = rows
        .iter()
        .find(|r| r.tier.encoding == Encoding::Q8 && r.tier.delta)
        .expect("sweep includes q8+delta");
    let reduction = lossless.uplink_bytes_per_round as f64 / q8_delta.uplink_bytes_per_round as f64;
    let worst_accuracy_gap_pp = rows
        .iter()
        .map(|r| (r.end_accuracy - lossless.end_accuracy).abs() * 100.0)
        .fold(0.0, f64::max);
    let steady_allocations: u64 = rows.iter().map(|r| r.wire_allocations_steady_delta).sum();

    section("machine-readable (JSON)");
    let mut report = String::new();
    report.push_str("{\n");
    report.push_str(&format!(
        "  \"schema\": \"BENCH_compression.v1\",\n  \"smoke\": {smoke},\n"
    ));
    report.push_str(&format!(
        "  \"devices\": {}, \"k\": {}, \"e\": {}, \"rounds\": {},\n",
        sizes.devices, sizes.k, sizes.e, sizes.rounds
    ));
    report.push_str("  \"tiers\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        report.push_str(&format!("    {}{comma}\n", json_row(row, lossless)));
    }
    report.push_str("  ],\n");
    report.push_str(&format!(
        "  \"q8_delta_reduction_vs_f64\": {reduction:.3},\n  \"worst_accuracy_gap_pp\": {worst_accuracy_gap_pp:.3},\n  \"wire_allocations_steady_total\": {steady_allocations}\n"
    ));
    report.push_str("}\n");
    print!("{report}");
    std::fs::write("BENCH_compression.json", &report)
        .expect("failed to write BENCH_compression.json");
    println!("\nwrote BENCH_compression.json");

    println!(
        "\nreading: q8+delta moves {reduction:.1}x fewer uplink bytes than lossless\n\
         f64 while the end accuracy stays within {worst_accuracy_gap_pp:.2} pp of it. Over WiFi\n\
         the upload term is airtime-dominated, so the plan barely moves; over\n\
         NB-IoT (7.74 mJ/byte) e_U is payload-dominated and compression visibly\n\
         shifts the optimum: saved joules per upload mean less pressure to batch\n\
         local epochs, so E* drops with the payload — exactly the Eq. 12 coupling\n\
         the constant-e_U model hides."
    );

    // Gates. The byte reduction and allocation discipline are deterministic,
    // so they hold in smoke mode too; the accuracy gate needs real training
    // and only runs on the full configuration.
    let mut failed = false;
    if reduction < 4.0 {
        eprintln!("GATE FAILED: q8+delta uplink reduction {reduction:.2} below 4x");
        failed = true;
    }
    if steady_allocations != 0 {
        eprintln!("GATE FAILED: {steady_allocations} steady-state codec allocations (want 0)");
        failed = true;
    }
    if !smoke && worst_accuracy_gap_pp > 0.5 {
        eprintln!("GATE FAILED: accuracy gap {worst_accuracy_gap_pp:.3} pp exceeds 0.5 pp");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
