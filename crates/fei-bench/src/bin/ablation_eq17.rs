//! Ablation: the paper's printed Eq. 17 versus the exact stationary point.
//!
//! Differentiating Eq. 12 in `E` yields a quadratic whose positive root is
//! the true per-coordinate minimizer; the closed form printed as Eq. 17 in
//! the paper does not solve it (DESIGN.md §2). This ablation quantifies how
//! suboptimal the printed formula is across a range of systems, and checks
//! the exact root against golden-section search.
//!
//! Run: `cargo run --release -p fei-bench --bin ablation_eq17`

use fei_bench::{banner, section};
use fei_core::{ConvergenceBound, EnergyObjective};
use fei_math::optimize::golden_section_min;

fn main() {
    banner("Ablation: Eq. 17 (as printed) vs the exact E* stationary point");

    let bound = ConvergenceBound::new(10.0, 0.05, 1e-4).expect("valid constants");

    section("per-K comparison on a representative system");
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>16} {:>12}",
        "K", "E*(paper)", "E*(exact)", "E*(numeric)", "paper penalty", "exact err"
    );
    let mut worst_penalty: f64 = 0.0;
    for (b0, b1) in [(0.5, 2.0), (0.05, 2.0), (0.5, 20.0)] {
        let objective = EnergyObjective::new(bound, b0, b1, 0.1, 20).expect("feasible objective");
        println!("-- B0 = {b0}, B1 = {b1}");
        for k in [1.0f64, 5.0, 10.0, 20.0] {
            let paper = objective.e_star_paper(k).expect("A2, B1 > 0");
            let exact = objective.e_star_exact(k).expect("feasible K");
            let e_hi = objective.e_max(k) - 1e-6;
            let numeric = golden_section_min(|e| objective.eval(k, e), 1.0, e_hi, 1e-10).x;
            // How much energy the printed formula wastes vs the exact root.
            let penalty = (objective.eval(k, paper) / objective.eval(k, exact) - 1.0) * 100.0;
            let exact_err = (exact - numeric).abs() / numeric * 100.0;
            worst_penalty = worst_penalty.max(penalty);
            println!(
                "{k:>4} {paper:>12.2} {exact:>12.2} {numeric:>12.2} {penalty:>15.2}% {exact_err:>11.4}%",
            );
        }
    }

    section("summary");
    println!(
        "worst energy penalty of the printed Eq. 17 across the sweep: {worst_penalty:.1}%\n\
         the exact quadratic root tracks golden-section search to numerical precision,\n\
         so ACS in this library uses the exact form (the printed one is kept as\n\
         `EnergyObjective::e_star_paper` for comparison)."
    );
}
