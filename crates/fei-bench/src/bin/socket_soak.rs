//! Socket soak: the real TCP transport, gated on the deterministic oracle.
//!
//! Repeatedly runs a coordinator + 3 participants over real localhost
//! sockets — the OS scheduler, kernel read boundaries, and TCP itself in
//! the loop — with the disk-backed fsync'd journal and the frame trace
//! attached, and audits every run against the oracles:
//!
//! * **replay parity** — replaying the run's frame trace through the
//!   shared decision core must reproduce the live audit bit for bit
//!   (journal bytes, committed model payloads, round verdicts,
//!   `ControlStats`);
//! * **disk parity** — the fsync'd journal file must equal the decision
//!   journal, and the persisted trace must decode to the in-memory one;
//! * **restart continuity** — half the matrix stops the coordinator
//!   mid-campaign and restarts it against the same journal + trace: the
//!   second incarnation replays its own history, recovers, re-rendezvouses
//!   the fleet over fresh sockets, and the *combined* trace still replays
//!   bit-identically.
//!
//! Control traffic is billed at WiFi link energy so the soak reports what
//! real-socket coordination costs next to the simulated chaos soak.
//!
//! Run: `cargo run --release -p fei-bench --bin socket_soak`
//! CI smoke: append `-- --smoke` for a seconds-scale configuration.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fei_bench::{banner, fmt_joules, section};
use fei_core::ledger::{EnergyLedger, EnergyUse};
use fei_net::link::Link;
use fei_proto::node::{
    read_trace, replay_trace, CoordinatorAddr, CoordinatorNode, CoordinatorNodeConfig, NodeAudit,
    NodePersistence, ParticipantNode, ParticipantNodeConfig,
};
use fei_proto::{CoordinatorConfig, ParticipantConfig};

struct Soak {
    /// Campaigns per shape (single-incarnation and restart).
    runs: usize,
    /// Rounds per campaign (split across incarnations in restart runs).
    rounds: u64,
    /// Overall wall-clock budget for the whole soak.
    budget: Duration,
}

const FULL: Soak = Soak {
    runs: 4,
    rounds: 8,
    budget: Duration::from_secs(120),
};

/// Seconds-scale configuration for the CI smoke step.
const SMOKE: Soak = Soak {
    runs: 2,
    rounds: 5,
    budget: Duration::from_secs(60),
};

fn coordinator_config() -> CoordinatorConfig {
    CoordinatorConfig {
        k: 3,
        over_select: 0,
        quorum: 2,
        epochs: 1,
        heartbeat_interval: 10,
        heartbeat_timeout: 200,
        round_deadline: 400,
    }
}

struct RunOutcome {
    shape: &'static str,
    audit: NodeAudit,
    trace_events: usize,
    wall_ms: u128,
    replay_identical: bool,
    disk_identical: bool,
}

/// One campaign: coordinator (optionally split across two incarnations
/// sharing journal + trace) + 3 participant threads over localhost TCP.
fn run_campaign(dir: &Path, rounds: u64, restart: bool) -> RunOutcome {
    let journal = dir.join("soak.journal");
    let trace = dir.join("soak.trace");
    let port_file = dir.join("soak.port");
    let persist = NodePersistence {
        journal: Some(journal.clone()),
        trace: Some(trace.clone()),
        port_file: Some(port_file.clone()),
    };

    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for client in 0..3u64 {
        let stop = Arc::clone(&stop);
        let port_file = port_file.clone();
        workers.push(std::thread::spawn(move || {
            let mut config =
                ParticipantNodeConfig::new(ParticipantConfig::new(client, 2 + 2 * client));
            config.max_cycles = 240_000;
            ParticipantNode::new(CoordinatorAddr::PortFile(port_file), config)
                .run(&stop)
                .expect("participant run")
        }));
    }

    let started = Instant::now();
    let mut report = {
        let mut config = CoordinatorNodeConfig::new(coordinator_config());
        config.target_rounds = if restart { rounds / 2 } else { rounds };
        config.max_cycles = 60_000;
        let mut node = CoordinatorNode::start("127.0.0.1:0", config, persist.clone())
            .expect("coordinator start");
        node.run().expect("coordinator run")
    };
    if restart {
        // Second incarnation: same journal + trace, fresh sockets. It
        // replays its own persisted history, records a Recover event, and
        // finishes the campaign.
        let mut config = CoordinatorNodeConfig::new(coordinator_config());
        config.target_rounds = rounds;
        config.max_cycles = 60_000;
        let mut node =
            CoordinatorNode::start("127.0.0.1:0", config, persist).expect("coordinator restart");
        report = node.run().expect("coordinator resumed run");
    }
    let wall_ms = started.elapsed().as_millis();
    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        worker.join().expect("participant thread");
    }

    // Oracle gates.
    let replayed = replay_trace(&coordinator_config(), &[0xAB; 64], &report.trace);
    let replay_identical = replayed == report.audit;
    let disk_journal = std::fs::read(&journal).expect("journal file");
    let (disk_trace, torn) = read_trace(&trace).expect("trace file");
    let disk_identical =
        disk_journal == report.audit.journal && torn == 0 && disk_trace == report.trace;

    RunOutcome {
        shape: if restart { "restart" } else { "single" },
        trace_events: report.trace.len(),
        audit: report.audit,
        wall_ms,
        replay_identical,
        disk_identical,
    }
}

fn temp_dir(run: usize, shape: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fei-socket-soak-{}-{shape}-{run}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create soak dir");
    dir
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let soak = if smoke { SMOKE } else { FULL };
    banner("Socket soak: real TCP transport vs the deterministic oracle");
    section(&format!(
        "{} single-incarnation + {} restart campaigns, {} rounds each, \
         3 participants over localhost TCP, journal fsync'd per transition",
        soak.runs, soak.runs, soak.rounds
    ));
    println!(
        "{:>3} {:>8} {:>7} {:>9} {:>7} {:>9} {:>9} {:>8} {:>7} {:>6}",
        "#",
        "shape",
        "rounds",
        "committed",
        "epochs",
        "frames",
        "trace ev",
        "wall ms",
        "replay",
        "disk"
    );

    let started = Instant::now();
    let uplink = Link::wifi_uplink();
    let downlink = Link::wifi_downlink();
    let mut ledger = EnergyLedger::new();
    let mut outcomes = Vec::new();
    let mut all_ok = true;
    for run in 0..soak.runs * 2 {
        let restart = run % 2 == 1;
        let dir = temp_dir(run, if restart { "restart" } else { "single" });
        let outcome = run_campaign(&dir, soak.rounds, restart);
        let _ = std::fs::remove_dir_all(&dir);
        let control_joules = uplink.transfer_energy_joules(outcome.audit.stats.bytes_in as usize)
            + downlink.transfer_energy_joules(outcome.audit.stats.bytes_out as usize);
        ledger.charge(
            run,
            EnergyUse::Control,
            control_joules,
            "socket control frames",
        );
        let ok = outcome.replay_identical
            && outcome.disk_identical
            && outcome.audit.stats.committed_rounds >= soak.rounds.saturating_sub(1)
            && (!restart || outcome.audit.epoch >= 1);
        all_ok &= ok;
        println!(
            "{:>3} {:>8} {:>7} {:>9} {:>7} {:>9} {:>9} {:>8} {:>7} {:>6}",
            run,
            outcome.shape,
            outcome.audit.round_log.len(),
            outcome.audit.stats.committed_rounds,
            outcome.audit.epoch + 1,
            outcome.audit.stats.frames_in + outcome.audit.stats.frames_out,
            outcome.trace_events,
            outcome.wall_ms,
            if outcome.replay_identical {
                "ok"
            } else {
                "FAIL"
            },
            if outcome.disk_identical { "ok" } else { "FAIL" },
        );
        outcomes.push(outcome);
    }
    let elapsed = started.elapsed();
    let within_budget = elapsed < soak.budget;
    all_ok &= within_budget;

    section("machine-readable (JSON)");
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"BENCH_socket_soak.v1\",\n  \"smoke\": {smoke},\n"
    ));
    json.push_str(&format!(
        "  \"campaigns\": {}, \"rounds_per_campaign\": {}, \"participants\": 3,\n",
        outcomes.len(),
        soak.rounds
    ));
    json.push_str(&format!(
        "  \"wall_ms\": {}, \"budget_ms\": {}, \"within_budget\": {within_budget},\n",
        elapsed.as_millis(),
        soak.budget.as_millis()
    ));
    json.push_str(&format!(
        "  \"control_joules\": {:.6},\n",
        ledger.control_joules()
    ));
    json.push_str("  \"runs\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let comma = if i + 1 == outcomes.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"shape\": \"{}\", \"rounds_closed\": {}, \"committed\": {}, \
             \"aborted\": {}, \"incarnations\": {}, \"frames_in\": {}, \"frames_out\": {}, \
             \"bytes_in\": {}, \"bytes_out\": {}, \"journal_bytes\": {}, \"trace_events\": {}, \
             \"wall_ms\": {}, \"replay_identical\": {}, \"disk_identical\": {}}}{comma}\n",
            o.shape,
            o.audit.round_log.len(),
            o.audit.stats.committed_rounds,
            o.audit.stats.aborted_rounds,
            o.audit.epoch + 1,
            o.audit.stats.frames_in,
            o.audit.stats.frames_out,
            o.audit.stats.bytes_in,
            o.audit.stats.bytes_out,
            o.audit.journal.len(),
            o.trace_events,
            o.wall_ms,
            o.replay_identical,
            o.disk_identical,
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"all_ok\": {all_ok}\n"));
    json.push_str("}\n");
    print!("{json}");
    std::fs::write("BENCH_socket_soak.json", &json)
        .expect("failed to write BENCH_socket_soak.json");
    println!("\nwrote BENCH_socket_soak.json");

    println!(
        "\nreading: every campaign ran the real protocol over real localhost\n\
         TCP — kernel scheduling, partial reads, reconnects — and still had\n\
         to replay bit-identically from its own frame trace, with the fsync'd\n\
         disk journal byte-equal to the decision journal. Restart campaigns\n\
         additionally stopped the coordinator mid-campaign and resumed it\n\
         from disk (trace replay + journal recovery) with the fleet\n\
         re-rendezvousing over fresh sockets. The control-energy figure is\n\
         the WiFi bill for the coordination traffic ({} total);\n\
         compare with the chaos soak's simulated fleets.",
        fmt_joules(ledger.control_joules())
    );

    assert!(
        all_ok,
        "socket soak found a parity failure, a shortfall, or a blown budget"
    );
}
