//! Regenerates **Table II**: the simulation configuration — printed from the
//! actual objects the benches train with, so the table cannot drift from
//! the code.
//!
//! Run: `cargo run --release -p fei-bench --bin table2`

use fei_bench::banner;
use fei_ml::LogisticRegression;
use fei_testbed::FlExperimentConfig;

fn main() {
    banner("Table II: simulation configuration");

    let paper_cfg = FlExperimentConfig::default();
    let tuned_cfg = FlExperimentConfig::paper_like();
    let model = LogisticRegression::zeros(784, 10);

    println!("{:<22} Multinomial Logistic Regression", "Model Type");
    println!("{:<22} {}*1", "Input Size", model.dim());
    println!("{:<22} {}*1", "Output Size", model.num_classes());
    println!("{:<22} Softmax (stable log-sum-exp)", "Activation Function");
    println!(
        "{:<22} SGD, learning rate {} with decay rate {} (paper Table II)",
        "Optimizer", paper_cfg.sgd.learning_rate, paper_cfg.sgd.decay_per_round
    );
    println!(
        "{:<22} SGD, learning rate {} with decay rate {} (tuned campaign; see EXPERIMENTS.md)",
        "", tuned_cfg.sgd.learning_rate, tuned_cfg.sgd.decay_per_round
    );
    println!("{:<22} full local batch", "Batch size");
    println!(
        "{:<22} {} parameters / {} bytes per upload",
        "Model payload",
        model.num_params(),
        model.payload_bytes()
    );
    println!(
        "{:<22} {} edge servers, {} samples each at scale {}",
        "Fleet",
        tuned_cfg.num_devices,
        (60_000.0 * tuned_cfg.scale) as usize / tuned_cfg.num_devices,
        tuned_cfg.scale
    );
}
