//! Ablation: dropouts, quorum aggregation, and energy-to-accuracy.
//!
//! The paper's energy accounting assumes every selected server delivers
//! every round. This ablation injects upload dropouts and asks what the
//! 92 %-accuracy target *really* costs once retries, wasted rounds, and
//! quorum policy are on the books:
//!
//! * sweep dropout probability × quorum, reporting committed rounds and the
//!   useful / wasted / retransmit energy split to the stringent target;
//! * a permanent-crash campaign with live re-planning, where the
//!   coordinator re-runs ACS against the survivors (`K*` shrinks with the
//!   fleet) instead of stalling below quorum.
//!
//! Run: `cargo run --release -p fei-bench --bin ablation_faults`

use fei_bench::{banner, fmt_joules, section};
use fei_core::{ConvergenceBound, EeFeiPlanner};
use fei_fl::{FaultSpec, StopCondition, ToleranceConfig};
use fei_testbed::{FaultCampaign, FlExperiment, FlExperimentConfig, Testbed, STRINGENT_TARGET};

const K: usize = 10;
const E: usize = 10;
const OVER_SELECT: usize = 2;
const MAX_ROUNDS: usize = 250;

fn tolerance(quorum: usize) -> ToleranceConfig {
    ToleranceConfig {
        over_select: OVER_SELECT,
        quorum: Some(quorum),
        ..Default::default()
    }
}

fn main() {
    banner("Ablation: fault injection, quorum, and energy to 92 %");
    let experiment = FlExperiment::prepare(FlExperimentConfig::paper_like());
    let testbed = Testbed::paper_prototype();

    section(&format!(
        "dropout probability x quorum (K = {K} + {OVER_SELECT} over-selected, E = {E}, \
         target {:.0} %)",
        STRINGENT_TARGET * 100.0
    ));
    println!(
        "{:>8} {:>7} {:>8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "drop p",
        "quorum",
        "T(92%)",
        "abandoned",
        "useful",
        "wasted",
        "retransmit",
        "control",
        "overhead"
    );
    for drop_p in [0.0, 0.2, 0.4, 0.6] {
        for quorum in [1usize, K / 2, K] {
            let spec = FaultSpec {
                upload_loss_prob: drop_p,
                ..Default::default()
            };
            let campaign =
                FaultCampaign::new(experiment.clone(), testbed.clone(), spec, tolerance(quorum));
            let report = campaign.run(K, E, StopCondition::accuracy(STRINGENT_TARGET, MAX_ROUNDS));
            let t = report
                .rounds_to_accuracy(STRINGENT_TARGET)
                .map_or_else(|| "miss".into(), |t| t.to_string());
            println!(
                "{drop_p:>8.1} {quorum:>7} {t:>8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>9.1}%",
                report.history.abandoned_rounds(),
                fmt_joules(report.ledger.useful_joules()),
                fmt_joules(report.ledger.wasted_joules()),
                fmt_joules(report.ledger.retransmit_joules()),
                fmt_joules(report.ledger.control_joules()),
                report.ledger.overhead_fraction() * 100.0,
            );
        }
    }

    section("permanent crashes with live re-planning (crash p = 0.05/round)");
    let spec = FaultSpec {
        crash_prob: 0.05,
        restart_rounds: 0,
        ..Default::default()
    };
    let bound = ConvergenceBound::new(1.0, 0.05, 1e-4).expect("paper-like bound");
    let planner = EeFeiPlanner::new(testbed.energy_model(), bound, 0.1, 20)
        .expect("paper-like plan is feasible");
    let campaign =
        FaultCampaign::new(experiment, testbed, spec, tolerance(1)).with_replanning(planner);
    let report = campaign.run(K, E, StopCondition::accuracy(STRINGENT_TARGET, MAX_ROUNDS));
    for event in &report.replans {
        println!(
            "round {:>4}: fleet down to {:>2} -> re-planned K* = {}, E* = {}",
            event.round, event.surviving, event.k, event.e
        );
    }
    let reached = report.rounds_to_accuracy(STRINGENT_TARGET).map_or_else(
        || "never reached".into(),
        |t| format!("reached in {t} rounds"),
    );
    println!(
        "target {reached}; final (K, E) = ({}, {}); {} useful / {} wasted / {} control; \
         aborted: {}",
        report.final_k,
        report.final_e,
        fmt_joules(report.ledger.useful_joules()),
        fmt_joules(report.ledger.wasted_joules()),
        fmt_joules(report.ledger.control_joules()),
        report
            .aborted
            .map_or_else(|| "no".into(), |e| e.to_string()),
    );

    println!(
        "\nreading: with quorum 1 dropouts mostly cost retransmissions and partial\n\
         rounds; raising the quorum toward K converts the same dropouts into\n\
         abandoned rounds whose full energy is wasted — reliability policy, not\n\
         just loss rate, sets the real energy-to-accuracy. Under permanent\n\
         crashes, re-planning keeps the campaign alive by shrinking K* with the\n\
         surviving fleet. The control column is the coordinator protocol's own\n\
         bill — selection notices, heartbeats, and commit/abort broadcasts at\n\
         WiFi link energy — small but never zero."
    );
}
