//! Ablation: dropouts, quorum aggregation, and energy-to-accuracy.
//!
//! The paper's energy accounting assumes every selected server delivers
//! every round. This ablation injects upload dropouts and asks what the
//! 92 %-accuracy target *really* costs once retries, wasted rounds, and
//! quorum policy are on the books:
//!
//! * sweep dropout probability × quorum, reporting committed rounds and the
//!   useful / wasted / retransmit energy split to the stringent target;
//! * a permanent-crash campaign with live re-planning, where the
//!   coordinator re-runs ACS against the survivors (`K*` shrinks with the
//!   fleet) instead of stalling below quorum.
//!
//! Results — including the abandoned-round (abort) accounting per sweep
//! cell — are also written to `BENCH_ablation_faults.json`.
//!
//! Run: `cargo run --release -p fei-bench --bin ablation_faults`

use fei_bench::{banner, fmt_joules, section};
use fei_core::{ConvergenceBound, EeFeiPlanner};
use fei_fl::{FaultSpec, StopCondition, ToleranceConfig};
use fei_testbed::{FaultCampaign, FlExperiment, FlExperimentConfig, Testbed, STRINGENT_TARGET};

const K: usize = 10;
const E: usize = 10;
const OVER_SELECT: usize = 2;
const MAX_ROUNDS: usize = 250;

fn tolerance(quorum: usize) -> ToleranceConfig {
    ToleranceConfig {
        over_select: OVER_SELECT,
        quorum: Some(quorum),
        ..Default::default()
    }
}

/// One sweep cell, kept for the JSON report.
struct Cell {
    drop_p: f64,
    quorum: usize,
    rounds_to_target: Option<usize>,
    abandoned_rounds: usize,
    useful_j: f64,
    wasted_j: f64,
    retransmit_j: f64,
    control_j: f64,
    overhead_fraction: f64,
}

impl Cell {
    fn json_row(&self, last: bool) -> String {
        let t = self
            .rounds_to_target
            .map_or_else(|| "null".into(), |t| t.to_string());
        let comma = if last { "" } else { "," };
        format!(
            "    {{\"drop_p\": {:.1}, \"quorum\": {}, \"rounds_to_target\": {t}, \
             \"abandoned_rounds\": {}, \"useful_j\": {:.3}, \"wasted_j\": {:.3}, \
             \"retransmit_j\": {:.3}, \"control_j\": {:.3}, \"overhead_fraction\": {:.4}}}{comma}\n",
            self.drop_p,
            self.quorum,
            self.abandoned_rounds,
            self.useful_j,
            self.wasted_j,
            self.retransmit_j,
            self.control_j,
            self.overhead_fraction,
        )
    }
}

fn main() {
    banner("Ablation: fault injection, quorum, and energy to 92 %");
    let experiment = FlExperiment::prepare(FlExperimentConfig::paper_like());
    let testbed = Testbed::paper_prototype();

    section(&format!(
        "dropout probability x quorum (K = {K} + {OVER_SELECT} over-selected, E = {E}, \
         target {:.0} %)",
        STRINGENT_TARGET * 100.0
    ));
    println!(
        "{:>8} {:>7} {:>8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "drop p",
        "quorum",
        "T(92%)",
        "abandoned",
        "useful",
        "wasted",
        "retransmit",
        "control",
        "overhead"
    );
    let mut cells: Vec<Cell> = Vec::new();
    for drop_p in [0.0, 0.2, 0.4, 0.6] {
        for quorum in [1usize, K / 2, K] {
            let spec = FaultSpec {
                upload_loss_prob: drop_p,
                ..Default::default()
            };
            let campaign =
                FaultCampaign::new(experiment.clone(), testbed.clone(), spec, tolerance(quorum));
            let report = campaign.run(K, E, StopCondition::accuracy(STRINGENT_TARGET, MAX_ROUNDS));
            let cell = Cell {
                drop_p,
                quorum,
                rounds_to_target: report.rounds_to_accuracy(STRINGENT_TARGET),
                abandoned_rounds: report.history.abandoned_rounds(),
                useful_j: report.ledger.useful_joules(),
                wasted_j: report.ledger.wasted_joules(),
                retransmit_j: report.ledger.retransmit_joules(),
                control_j: report.ledger.control_joules(),
                overhead_fraction: report.ledger.overhead_fraction(),
            };
            let t = cell
                .rounds_to_target
                .map_or_else(|| "miss".into(), |t| t.to_string());
            println!(
                "{drop_p:>8.1} {quorum:>7} {t:>8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>9.1}%",
                cell.abandoned_rounds,
                fmt_joules(cell.useful_j),
                fmt_joules(cell.wasted_j),
                fmt_joules(cell.retransmit_j),
                fmt_joules(cell.control_j),
                cell.overhead_fraction * 100.0,
            );
            cells.push(cell);
        }
    }

    section("permanent crashes with live re-planning (crash p = 0.05/round)");
    let spec = FaultSpec {
        crash_prob: 0.05,
        restart_rounds: 0,
        ..Default::default()
    };
    let bound = ConvergenceBound::new(1.0, 0.05, 1e-4).expect("paper-like bound");
    let planner = EeFeiPlanner::new(testbed.energy_model(), bound, 0.1, 20)
        .expect("paper-like plan is feasible");
    let campaign =
        FaultCampaign::new(experiment, testbed, spec, tolerance(1)).with_replanning(planner);
    let report = campaign.run(K, E, StopCondition::accuracy(STRINGENT_TARGET, MAX_ROUNDS));
    for event in &report.replans {
        println!(
            "round {:>4}: fleet down to {:>2} -> re-planned K* = {}, E* = {}",
            event.round, event.surviving, event.k, event.e
        );
    }
    let reached = report.rounds_to_accuracy(STRINGENT_TARGET).map_or_else(
        || "never reached".into(),
        |t| format!("reached in {t} rounds"),
    );
    println!(
        "target {reached}; final (K, E) = ({}, {}); {} useful / {} wasted / {} control; \
         aborted: {}",
        report.final_k,
        report.final_e,
        fmt_joules(report.ledger.useful_joules()),
        fmt_joules(report.ledger.wasted_joules()),
        fmt_joules(report.ledger.control_joules()),
        report
            .aborted
            .as_ref()
            .map_or_else(|| "no".into(), |e| e.to_string()),
    );

    section("machine-readable (JSON)");
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"BENCH_ablation_faults.v1\",\n");
    json.push_str(&format!(
        "  \"k\": {K}, \"e\": {E}, \"over_select\": {OVER_SELECT}, \"max_rounds\": {MAX_ROUNDS},\n"
    ));
    json.push_str("  \"dropout_sweep\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&cell.json_row(i + 1 == cells.len()));
    }
    json.push_str("  ],\n");
    json.push_str("  \"crash_campaign\": {\n");
    json.push_str(&format!(
        "    \"rounds_to_target\": {},\n",
        report
            .rounds_to_accuracy(STRINGENT_TARGET)
            .map_or_else(|| "null".into(), |t| t.to_string())
    ));
    json.push_str(&format!(
        "    \"final_k\": {}, \"final_e\": {}, \"replans\": {}, \"abandoned_rounds\": {},\n",
        report.final_k,
        report.final_e,
        report.replans.len(),
        report.history.abandoned_rounds()
    ));
    json.push_str(&format!(
        "    \"aborted\": {},\n",
        report
            .aborted
            .as_ref()
            .map_or_else(|| "null".into(), |e| format!("{:?}", e.to_string()))
    ));
    json.push_str(&format!(
        "    \"useful_j\": {:.3}, \"wasted_j\": {:.3}, \"control_j\": {:.3}\n",
        report.ledger.useful_joules(),
        report.ledger.wasted_joules(),
        report.ledger.control_joules()
    ));
    json.push_str("  }\n");
    json.push_str("}\n");
    print!("{json}");
    std::fs::write("BENCH_ablation_faults.json", &json)
        .expect("failed to write BENCH_ablation_faults.json");
    println!("\nwrote BENCH_ablation_faults.json");

    println!(
        "\nreading: with quorum 1 dropouts mostly cost retransmissions and partial\n\
         rounds; raising the quorum toward K converts the same dropouts into\n\
         abandoned rounds whose full energy is wasted — reliability policy, not\n\
         just loss rate, sets the real energy-to-accuracy. Under permanent\n\
         crashes, re-planning keeps the campaign alive by shrinking K* with the\n\
         surviving fleet. The control column is the coordinator protocol's own\n\
         bill — selection notices, heartbeats, and commit/abort broadcasts at\n\
         WiFi link energy — small but never zero."
    );
}
