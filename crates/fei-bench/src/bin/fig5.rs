//! Regenerates **Fig. 5**: total energy to train to the stringent accuracy
//! target versus `K` (fixed `E = 40`) — the theoretical bound (Eq. 12 with
//! calibrated constants) next to the "measured" testbed traces, with the
//! optimal `K*` from each highlighted.
//!
//! The paper finds `K* = 1` under its IID split; the reproduction's curves
//! must show the same monotone-from-one shape.
//!
//! Run: `cargo run --release -p fei-bench --bin fig5`

use fei_bench::{
    banner, calibrate, estimate_loss_floor, fmt_joules, run_calibration_campaign, section,
};
use fei_core::EnergyObjective;
use fei_testbed::{FlExperiment, FlExperimentConfig, Testbed, STRINGENT_TARGET};

const FIXED_E: usize = 40;
const KS: [usize; 7] = [1, 2, 3, 5, 10, 15, 20];

fn main() {
    banner("Fig. 5: energy consumption vs K (theoretical bound vs measured traces)");

    let exp = FlExperiment::prepare(FlExperimentConfig::paper_like());
    let testbed = Testbed::paper_prototype();

    section("calibrating the convergence bound from training runs");
    let runs = run_calibration_campaign(&exp);
    let f_star = estimate_loss_floor(&exp);
    let cal = calibrate(&runs, f_star).expect("calibration campaign crosses the stringent target");
    println!(
        "A0={:.4}  A1={:.4}  A2={:.6}  F*={:.4}  epsilon={:.4}",
        cal.bound.a0(),
        cal.bound.a1(),
        cal.bound.a2(),
        cal.f_star,
        cal.epsilon,
    );

    let model = testbed.energy_model();
    let objective = EnergyObjective::new(
        cal.bound,
        model.b0(),
        model.b1(),
        cal.epsilon,
        testbed.config().num_devices,
    )
    .expect("calibrated objective is feasible");

    section(&format!(
        "energy to {:.0}% accuracy, E = {FIXED_E}",
        STRINGENT_TARGET * 100.0
    ));
    println!(
        "{:>4} {:>10} {:>14} {:>10} {:>14}",
        "K", "T(bound)", "bound energy", "T(meas)", "measured"
    );
    let mut bound_curve = Vec::new();
    let mut measured_curve = Vec::new();
    for &k in &KS {
        let bound_point = objective.eval_integer(k, FIXED_E);
        let (_, t_measured) = exp.run_to_accuracy(k, FIXED_E, STRINGENT_TARGET, 200);
        let measured = t_measured.map(|t| testbed.run(k, FIXED_E, t).total_joules());
        println!(
            "{k:>4} {:>10} {:>14} {:>10} {:>14}",
            bound_point.map_or("-".into(), |(t, _)| t.to_string()),
            bound_point.map_or("-".into(), |(_, e)| fmt_joules(e)),
            t_measured.map_or("-".into(), |t| t.to_string()),
            measured.map_or("-".into(), fmt_joules),
        );
        if let Some((_, e)) = bound_point {
            bound_curve.push((k, e));
        }
        if let Some(e) = measured {
            measured_curve.push((k, e));
        }
    }

    section("optimal K*");
    let k_star_bound = bound_curve
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite energies"))
        .map(|&(k, _)| k);
    let k_star_measured = measured_curve
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite energies"))
        .map(|&(k, _)| k);
    println!(
        "K* from theoretical bound: {k_star_bound:?}   K* from measured traces: {k_star_measured:?}"
    );
    println!("paper: K* = 1 under the IID split (both its bound and its traces)");
}
