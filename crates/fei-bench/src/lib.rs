//! Shared infrastructure for the table/figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). This library holds the pieces they
//! share: the calibration pipeline that fits the convergence-bound constants
//! from real training runs, and small text-report formatting helpers.

#![forbid(unsafe_code)]

use fei_core::calibration::{fit_bound_constants, GapObservation};
use fei_core::{ConvergenceBound, CoreError};
use fei_fl::TrainingHistory;
use fei_ml::{LocalTrainer, LogisticRegression, SgdConfig};
use fei_testbed::experiment::gap_observations;
use fei_testbed::{FlExperiment, STRINGENT_TARGET};

/// A completed calibration: bound constants plus the accuracy-target
/// translation.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Fitted convergence-bound constants.
    pub bound: ConvergenceBound,
    /// Estimated minimal training loss `F(ω*)`.
    pub f_star: f64,
    /// Loss-gap value corresponding to the stringent accuracy target — the
    /// `ε` handed to the optimizer.
    pub epsilon: f64,
}

/// One training run retained for calibration.
#[derive(Debug, Clone)]
pub struct CalibrationRun {
    /// Participants per round.
    pub k: usize,
    /// Local epochs per round.
    pub e: usize,
    /// The recorded history.
    pub history: TrainingHistory,
}

/// The `(K, E, rounds)` combinations trained for calibration. Chosen to
/// spread the design matrix across all three bound terms — `1/(TE)`, `1/K`,
/// and `E−1` — and run for a *fixed* number of rounds (no early stop) so the
/// fit sees the full gap decay of every combination.
pub const CALIBRATION_COMBOS: [(usize, usize, usize); 6] = [
    (1, 1, 400),
    (1, 20, 80),
    (5, 5, 100),
    (10, 1, 400),
    (10, 40, 50),
    (20, 10, 60),
];

/// Executes the calibration campaign: trains every combo in
/// [`CALIBRATION_COMBOS`] for its fixed round budget.
pub fn run_calibration_campaign(exp: &FlExperiment) -> Vec<CalibrationRun> {
    CALIBRATION_COMBOS
        .iter()
        .map(|&(k, e, rounds)| CalibrationRun {
            k,
            e,
            history: exp.run_rounds(k, e, rounds),
        })
        .collect()
}

/// Estimates the minimal training loss `F(ω*)` by centralized training on
/// the union of all client data — the reference the loss gaps in Eq. 10 are
/// measured against. A small slack keeps every observed gap positive.
pub fn estimate_loss_floor(exp: &FlExperiment) -> f64 {
    let union = exp.training_union();
    let mut model = LogisticRegression::zeros(union.dim(), union.num_classes());
    let trainer = LocalTrainer::new(SgdConfig::new(0.02, 1.0, None));
    trainer.train(&mut model, &union, 800, 0);
    model.loss(&union) - 0.01
}

/// Fits the bound constants and the `ε` translation from calibration runs.
///
/// `f_star` is the estimated minimal training loss (see
/// [`estimate_loss_floor`]); it is clamped below the smallest observed loss
/// so every retained gap is positive. `ε` is the mean gap at the rounds
/// where runs first crossed the stringent accuracy target.
///
/// # Errors
///
/// Propagates [`CoreError::CalibrationFailed`] from the regression, and
/// fails if no run ever crossed the stringent target.
pub fn calibrate(runs: &[CalibrationRun], f_star: f64) -> Result<Calibration, CoreError> {
    let min_loss = runs
        .iter()
        .flat_map(|r| r.history.loss_curve())
        .map(|(_, l)| l)
        .fold(f64::INFINITY, f64::min);
    if !min_loss.is_finite() {
        return Err(CoreError::CalibrationFailed {
            detail: "no loss observations in calibration runs".into(),
        });
    }
    let f_star = f_star.min(min_loss - 0.002);

    let mut observations: Vec<GapObservation> = Vec::new();
    for run in runs {
        observations.extend(gap_observations(&run.history, run.e, run.k, f_star, 2));
    }
    let bound = fit_bound_constants(&observations)?;

    let mut crossing_gaps = Vec::new();
    for run in runs {
        if let Some(t) = run.history.rounds_to_accuracy(STRINGENT_TARGET) {
            if let Some(&(_, loss)) = run
                .history
                .loss_curve()
                .iter()
                .find(|&&(round, _)| round + 1 == t)
            {
                crossing_gaps.push(loss - f_star);
            }
        }
    }
    if crossing_gaps.is_empty() {
        return Err(CoreError::CalibrationFailed {
            detail: "no calibration run reached the stringent accuracy target".into(),
        });
    }
    let epsilon = crossing_gaps.iter().sum::<f64>() / crossing_gaps.len() as f64;
    Ok(Calibration {
        bound,
        f_star,
        epsilon,
    })
}

/// Prints a banner for a table/figure report.
pub fn banner(title: &str) {
    let line = "=".repeat(title.len() + 4);
    println!("{line}\n| {title} |\n{line}");
}

/// Prints a section heading.
pub fn section(title: &str) {
    println!("\n--- {title} ---");
}

/// Renders a crude ASCII sparkline of `values` scaled into `height` rows —
/// enough to see the Fig. 3 power plateaus in a terminal.
pub fn sparkline(values: &[f64], width: usize) -> String {
    const GLYPHS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let chunk = values.len().div_ceil(width);
    values
        .chunks(chunk)
        .map(|c| {
            let mean = c.iter().sum::<f64>() / c.len() as f64;
            let idx = (((mean - lo) / span) * 7.0).round() as usize;
            GLYPHS[idx.min(7)]
        })
        .collect()
}

/// Formats joules with sensible precision.
pub fn fmt_joules(j: f64) -> String {
    if j >= 1_000.0 {
        format!("{:.1} kJ", j / 1_000.0)
    } else if j >= 1.0 {
        format!("{j:.2} J")
    } else {
        format!("{:.1} mJ", j * 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use fei_testbed::FlExperimentConfig;

    use super::*;

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.0, 1.0, 1.0], 4);
        assert_eq!(s.chars().count(), 4);
        let chars: Vec<char> = s.chars().collect();
        assert!(chars[0] < chars[2]);
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[1.0], 0), "");
    }

    #[test]
    fn sparkline_constant_input() {
        let s = sparkline(&[5.0; 16], 8);
        assert_eq!(s.chars().count(), 8);
    }

    #[test]
    fn fmt_joules_ranges() {
        assert_eq!(fmt_joules(0.0035), "3.5 mJ");
        assert_eq!(fmt_joules(2.5), "2.50 J");
        assert_eq!(fmt_joules(1_500.0), "1.5 kJ");
    }

    #[test]
    fn calibration_pipeline_on_tiny_campaign() {
        // A miniature end-to-end calibration: small fleet, easy data.
        let cfg = FlExperimentConfig {
            num_devices: 4,
            scale: 0.01,
            test_scale: 0.05,
            ..FlExperimentConfig::paper_like()
        };
        let exp = FlExperiment::prepare(cfg);
        let runs: Vec<CalibrationRun> =
            [(1usize, 1usize), (2, 5), (4, 10), (1, 10), (2, 1), (4, 1)]
                .iter()
                .map(|&(k, e)| {
                    let (history, _) = exp.run_to_accuracy(k, e, STRINGENT_TARGET, 150);
                    CalibrationRun { k, e, history }
                })
                .collect();
        let f_star = estimate_loss_floor(&exp);
        match calibrate(&runs, f_star) {
            Ok(cal) => {
                assert!(cal.epsilon > 0.0);
                assert!(cal.bound.a0() > 0.0);
                assert!(cal.f_star.is_finite());
            }
            // A tiny campaign may legitimately fail to cross the stringent
            // target; the error must say so rather than panic.
            Err(CoreError::CalibrationFailed { detail }) => {
                assert!(!detail.is_empty());
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}
