//! Criterion bench: FedAvg aggregation and model (de)serialization — the
//! coordinator-side costs of step (4) / Eq. 2 per global round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fei_fl::{aggregate, AggregationRule};
use fei_net::codec::{decode_frame, encode_frame};
use std::hint::black_box;

fn model_sized_updates(k: usize) -> Vec<(Vec<f64>, usize)> {
    let params = 784 * 10 + 10;
    (0..k)
        .map(|i| ((0..params).map(|j| (i * j) as f64 * 1e-6).collect(), 3_000))
        .collect()
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate");
    for k in [1usize, 5, 10, 20] {
        let updates = model_sized_updates(k);
        group.bench_with_input(BenchmarkId::new("uniform", k), &updates, |b, u| {
            b.iter(|| aggregate(black_box(u), AggregationRule::Uniform));
        });
        group.bench_with_input(BenchmarkId::new("weighted", k), &updates, |b, u| {
            b.iter(|| aggregate(black_box(u), AggregationRule::WeightedBySamples));
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    // One model upload: 7 850 f64 parameters.
    let payload: Vec<u8> = (0..7_850usize * 8).map(|i| i as u8).collect();
    c.bench_function("codec/encode_model_frame", |b| {
        b.iter(|| encode_frame(2, black_box(&payload)));
    });
    let wire = encode_frame(2, &payload);
    c.bench_function("codec/decode_model_frame", |b| {
        b.iter(|| decode_frame(black_box(&wire)).expect("valid frame"));
    });
}

criterion_group!(benches, bench_aggregation, bench_codec);
criterion_main!(benches);
