//! Criterion bench: simulation-substrate throughput — 1 kHz power-meter
//! sampling (Fig. 3's measurement chain) and the discrete-event kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fei_power::{PowerMeter, PowerProfile, PowerState, PowerTimeline};
use fei_sim::{DetRng, SimDuration, SimTime, Simulation};
use std::hint::black_box;

fn round_timeline(rounds: usize) -> PowerTimeline {
    let mut tl = PowerTimeline::new();
    for _ in 0..rounds {
        tl.push(PowerState::Waiting, SimDuration::from_millis(20));
        tl.push(PowerState::Downloading, SimDuration::from_millis(27));
        tl.push(PowerState::Training, SimDuration::from_millis(600));
        tl.push(PowerState::Uploading, SimDuration::from_millis(28));
    }
    tl
}

fn bench_meter(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_meter_sampling");
    for rounds in [2usize, 20, 100] {
        let tl = round_timeline(rounds);
        let samples = (tl.total_duration().as_secs_f64() * 1_000.0) as u64;
        group.throughput(Throughput::Elements(samples));
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &tl, |b, tl| {
            let meter = PowerMeter::km001c();
            let profile = PowerProfile::raspberry_pi_4b();
            b.iter(|| {
                let mut rng = DetRng::new(7);
                meter.sample(black_box(tl), &profile, &mut rng)
            });
        });
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_kernel");
    for events in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(events as u64));
        group.bench_with_input(BenchmarkId::from_parameter(events), &events, |b, &n| {
            b.iter(|| {
                let mut sim = Simulation::new();
                let mut rng = DetRng::new(1);
                for i in 0..n {
                    sim.schedule_at(SimTime::from_nanos(rng.next_below(1 << 40) + i as u64), i);
                }
                let mut count = 0usize;
                sim.run(|_, _, _| count += 1);
                black_box(count)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_meter, bench_event_queue);
criterion_main!(benches);
