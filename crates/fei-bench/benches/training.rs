//! Criterion bench: local-training throughput — the simulated counterpart of
//! Table I's step-(3) timing grid. The wall-clock of one epoch should scale
//! linearly in `n_k`, the same law the paper fits (`time ≈ a·E·n_k + b·E`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fei_data::{SyntheticMnist, SyntheticMnistConfig};
use fei_ml::{LocalTrainer, LogisticRegression, SgdConfig};
use std::hint::black_box;

fn bench_epoch_scaling(c: &mut Criterion) {
    let gen = SyntheticMnist::new(SyntheticMnistConfig::default());
    let mut group = c.benchmark_group("local_epoch");
    for n_k in [100usize, 500, 1000] {
        let data = gen.generate(n_k, 0);
        group.throughput(Throughput::Elements(n_k as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n_k), &data, |b, data| {
            let trainer = LocalTrainer::new(SgdConfig::paper_default());
            let mut model = LogisticRegression::zeros(data.dim(), data.num_classes());
            b.iter(|| {
                trainer.train(black_box(&mut model), black_box(data), 1, 0);
            });
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let gen = SyntheticMnist::new(SyntheticMnistConfig::default());
    let data = gen.generate(500, 0);
    let model = LogisticRegression::zeros(data.dim(), data.num_classes());
    c.bench_function("loss_eval_500", |b| {
        b.iter(|| black_box(&model).loss(black_box(&data)));
    });
    c.bench_function("accuracy_eval_500", |b| {
        b.iter(|| fei_ml::accuracy(black_box(&model), black_box(&data)));
    });
}

criterion_group!(benches, bench_epoch_scaling, bench_inference);
criterion_main!(benches);
