//! Criterion bench: ACS (Algorithm 1) versus exhaustive grid search on the
//! Eq. 12 objective — the paper's implicit claim that closed-form alternate
//! search is cheap enough to run at the coordinator every reconfiguration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fei_core::{AcsOptimizer, ConvergenceBound, EnergyObjective, GridSearch};
use std::hint::black_box;

fn objective(n: usize) -> EnergyObjective {
    let bound = ConvergenceBound::new(1.0, 0.05, 1e-4).expect("valid bound");
    EnergyObjective::new(bound, 0.5, 2.0, 0.1, n).expect("feasible objective")
}

fn bench_optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer");
    for n in [20usize, 100, 500] {
        let o = objective(n);
        group.bench_with_input(BenchmarkId::new("acs", n), &o, |b, o| {
            let acs = AcsOptimizer::default();
            b.iter(|| acs.solve(black_box(o), n as f64, 1.0).expect("solvable"));
        });
        group.bench_with_input(BenchmarkId::new("grid", n), &o, |b, o| {
            let grid = GridSearch::default();
            b.iter(|| grid.solve(black_box(o)).expect("solvable"));
        });
    }
    group.finish();
}

fn bench_closed_forms(c: &mut Criterion) {
    let o = objective(20);
    c.bench_function("closed_form/k_star", |b| {
        b.iter(|| o.k_star(black_box(10.0)));
    });
    c.bench_function("closed_form/e_star_exact", |b| {
        b.iter(|| o.e_star_exact(black_box(10.0)));
    });
    c.bench_function("closed_form/eval_eq12", |b| {
        b.iter(|| o.eval(black_box(10.0), black_box(10.0)));
    });
}

criterion_group!(benches, bench_optimizers, bench_closed_forms);
criterion_main!(benches);
