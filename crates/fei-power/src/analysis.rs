//! Trace analysis: recovering the paper's per-step mean powers.
//!
//! §VI-B reports the mean power of each step (waiting 3.6 W, downloading
//! 4.286 W, training 5.553 W, uploading 5.015 W) from the measured traces.
//! [`per_state_mean_power`] recomputes those numbers from a sampled
//! [`PowerTrace`] and its ground-truth [`PowerTimeline`].

// BTreeMap, not HashMap: reports iterate the map, and seeded hash order
// would make report ordering differ run to run.
use std::collections::BTreeMap;

use crate::meter::PowerTrace;
use crate::state::PowerState;
use crate::timeline::PowerTimeline;

/// Mean sampled power per ground-truth state. States never visited are
/// absent from the map.
pub fn per_state_mean_power(
    trace: &PowerTrace,
    timeline: &PowerTimeline,
) -> BTreeMap<PowerState, f64> {
    let mut sums: BTreeMap<PowerState, (f64, usize)> = BTreeMap::new();
    for (i, &w) in trace.samples().iter().enumerate() {
        if let Some(state) = timeline.state_at(trace.time_of(i)) {
            let entry = sums.entry(state).or_insert((0.0, 0));
            entry.0 += w;
            entry.1 += 1;
        }
    }
    sums.into_iter()
        .map(|(state, (sum, count))| (state, sum / count as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use fei_sim::{DetRng, SimDuration};

    use super::*;
    use crate::meter::PowerMeter;
    use crate::state::PowerProfile;

    fn two_round_timeline() -> PowerTimeline {
        let mut tl = PowerTimeline::new();
        for _ in 0..2 {
            tl.push(PowerState::Waiting, SimDuration::from_millis(300));
            tl.push(PowerState::Downloading, SimDuration::from_millis(150));
            tl.push(PowerState::Training, SimDuration::from_millis(600));
            tl.push(PowerState::Uploading, SimDuration::from_millis(150));
        }
        tl
    }

    #[test]
    fn recovers_plateaus_from_noiseless_trace() {
        let tl = two_round_timeline();
        let profile = PowerProfile::raspberry_pi_4b();
        let meter = PowerMeter::new(1_000.0, 0.0, 0.0, SimDuration::from_millis(1));
        let trace = meter.sample(&tl, &profile, &mut DetRng::new(1));
        let means = per_state_mean_power(&trace, &tl);
        for state in PowerState::ALL {
            let got = means[&state];
            assert!(
                (got - profile.power(state)).abs() < 1e-9,
                "{state:?}: {got} vs {}",
                profile.power(state)
            );
        }
    }

    #[test]
    fn recovers_plateaus_from_noisy_trace_within_tolerance() {
        let tl = two_round_timeline();
        let profile = PowerProfile::raspberry_pi_4b();
        let trace = PowerMeter::km001c().sample(&tl, &profile, &mut DetRng::new(5));
        let means = per_state_mean_power(&trace, &tl);
        // Download spikes push the download mean slightly above the plateau,
        // exactly as the paper's Fig. 3 shows; everything else is tight.
        assert!((means[&PowerState::Waiting] - 3.600).abs() < 0.02);
        assert!((means[&PowerState::Training] - 5.553).abs() < 0.02);
        assert!((means[&PowerState::Uploading] - 5.015).abs() < 0.02);
        assert!(means[&PowerState::Downloading] >= 4.286 - 0.02);
        assert!(means[&PowerState::Downloading] < 4.286 + 0.3);
    }

    #[test]
    fn unvisited_states_absent() {
        let mut tl = PowerTimeline::new();
        tl.push(PowerState::Training, SimDuration::from_millis(100));
        let profile = PowerProfile::default();
        let meter = PowerMeter::new(1_000.0, 0.0, 0.0, SimDuration::from_millis(1));
        let trace = meter.sample(&tl, &profile, &mut DetRng::new(1));
        let means = per_state_mean_power(&trace, &tl);
        assert_eq!(means.len(), 1);
        assert!(means.contains_key(&PowerState::Training));
    }

    #[test]
    fn empty_trace_empty_map() {
        let tl = PowerTimeline::new();
        let meter = PowerMeter::km001c();
        let trace = meter.sample(&tl, &PowerProfile::default(), &mut DetRng::new(1));
        assert!(per_state_mean_power(&trace, &tl).is_empty());
    }
}
