//! Power and energy substrate for the EE-FEI testbed.
//!
//! The paper instruments each Raspberry Pi with a POWER-Z KM001C USB meter
//! sampling at 1 kHz and observes four power plateaus per global round
//! (Fig. 3): waiting 3.600 W, model downloading 4.286 W, local training
//! 5.553 W, and model uploading 5.015 W. This crate reproduces that
//! measurement chain:
//!
//! * [`state::PowerState`] / [`state::PowerProfile`] — the four states and a
//!   device's plateau powers (with the Pi 4B preset from the paper);
//! * [`timeline::PowerTimeline`] — the ground-truth sequence of state
//!   segments a device traverses during a round;
//! * [`meter::PowerMeter`] — the 1 kHz sampler, with Gaussian sensor noise
//!   and the download-start spikes visible in Fig. 3;
//! * [`meter::PowerTrace`] — sampled traces with energy integration and
//!   per-window statistics;
//! * [`analysis`] — recovery of per-state mean powers from a sampled trace
//!   (the numbers §VI-B reports);
//! * [`budget::BatteryFleet`] — per-device energy budgets for lifetime
//!   analysis and energy-aware participant scheduling.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod budget;
pub mod meter;
pub mod state;
pub mod timeline;

pub use analysis::per_state_mean_power;
pub use budget::BatteryFleet;
pub use meter::{PowerMeter, PowerTrace};
pub use state::{PowerProfile, PowerState};
pub use timeline::PowerTimeline;
