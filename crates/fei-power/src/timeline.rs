//! Ground-truth power-state timelines.
//!
//! A timeline records which [`PowerState`] a device is in over contiguous
//! time segments. The testbed builds one timeline per device per experiment;
//! the meter samples it, and exact energy integrals come straight from the
//! segment durations (power × time per segment).

use fei_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::state::{PowerProfile, PowerState};

/// One contiguous segment of a timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment start time.
    pub start: SimTime,
    /// Segment length.
    pub duration: SimDuration,
    /// Device state throughout the segment.
    pub state: PowerState,
}

impl Segment {
    /// The instant just past the end of the segment.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// An append-only sequence of contiguous power-state segments.
///
/// # Example
///
/// ```
/// use fei_power::{PowerTimeline, PowerState, PowerProfile};
/// use fei_sim::SimDuration;
///
/// let mut tl = PowerTimeline::new();
/// tl.push(PowerState::Waiting, SimDuration::from_secs(1));
/// tl.push(PowerState::Training, SimDuration::from_secs(2));
/// let e = tl.energy_joules(&PowerProfile::raspberry_pi_4b());
/// assert!((e - (3.6 + 2.0 * 5.553)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerTimeline {
    segments: Vec<Segment>,
}

impl PowerTimeline {
    /// Creates an empty timeline starting at `t = 0`.
    pub fn new() -> Self {
        Self {
            segments: Vec::new(),
        }
    }

    /// Appends a segment of `state` lasting `duration`. Zero-length segments
    /// are dropped; consecutive segments in the same state are merged.
    pub fn push(&mut self, state: PowerState, duration: SimDuration) {
        if duration == SimDuration::ZERO {
            return;
        }
        if let Some(last) = self.segments.last_mut() {
            if last.state == state {
                last.duration += duration;
                return;
            }
        }
        let start = self.end();
        self.segments.push(Segment {
            start,
            duration,
            state,
        });
    }

    /// The segments, in order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// End time of the timeline (total span).
    pub fn end(&self) -> SimTime {
        self.segments.last().map_or(SimTime::ZERO, Segment::end)
    }

    /// Total duration covered.
    pub fn total_duration(&self) -> SimDuration {
        self.end().duration_since(SimTime::ZERO)
    }

    /// Device state at time `t`, or `None` past the end.
    ///
    /// Segment intervals are half-open `[start, end)`.
    pub fn state_at(&self, t: SimTime) -> Option<PowerState> {
        // Binary search over segment starts.
        let idx = self.segments.partition_point(|s| s.start <= t);
        if idx == 0 {
            return None;
        }
        let seg = &self.segments[idx - 1];
        (t < seg.end()).then_some(seg.state)
    }

    /// Exact energy integral over the whole timeline, in joules.
    pub fn energy_joules(&self, profile: &PowerProfile) -> f64 {
        self.segments
            .iter()
            .map(|s| profile.power(s.state) * s.duration.as_secs_f64())
            .sum()
    }

    /// Exact energy attributable to one state, in joules.
    pub fn energy_in_state_joules(&self, profile: &PowerProfile, state: PowerState) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.state == state)
            .map(|s| profile.power(s.state) * s.duration.as_secs_f64())
            .sum()
    }

    /// Total time spent in one state.
    pub fn time_in_state(&self, state: PowerState) -> SimDuration {
        self.segments
            .iter()
            .filter(|s| s.state == state)
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration)
    }

    /// Appends all segments of `other`, preserving their durations (the
    /// other timeline is assumed to continue from this one's end).
    pub fn extend_with(&mut self, other: &PowerTimeline) {
        for seg in &other.segments {
            self.push(seg.state, seg.duration);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_timeline() -> PowerTimeline {
        let mut tl = PowerTimeline::new();
        tl.push(PowerState::Waiting, SimDuration::from_millis(500));
        tl.push(PowerState::Downloading, SimDuration::from_millis(100));
        tl.push(PowerState::Training, SimDuration::from_millis(1_200));
        tl.push(PowerState::Uploading, SimDuration::from_millis(200));
        tl
    }

    #[test]
    fn segments_are_contiguous() {
        let tl = round_timeline();
        assert_eq!(tl.segments().len(), 4);
        for pair in tl.segments().windows(2) {
            assert_eq!(pair[0].end(), pair[1].start);
        }
        assert_eq!(tl.total_duration(), SimDuration::from_millis(2_000));
    }

    #[test]
    fn state_lookup_half_open() {
        let tl = round_timeline();
        assert_eq!(tl.state_at(SimTime::ZERO), Some(PowerState::Waiting));
        assert_eq!(
            tl.state_at(SimTime::from_millis(499)),
            Some(PowerState::Waiting)
        );
        assert_eq!(
            tl.state_at(SimTime::from_millis(500)),
            Some(PowerState::Downloading)
        );
        assert_eq!(
            tl.state_at(SimTime::from_millis(1_999)),
            Some(PowerState::Uploading)
        );
        assert_eq!(tl.state_at(SimTime::from_millis(2_000)), None);
    }

    #[test]
    fn empty_timeline_queries() {
        let tl = PowerTimeline::new();
        assert_eq!(tl.state_at(SimTime::ZERO), None);
        assert_eq!(tl.total_duration(), SimDuration::ZERO);
        assert_eq!(tl.energy_joules(&PowerProfile::default()), 0.0);
    }

    #[test]
    fn energy_is_sum_of_power_times_time() {
        let tl = round_timeline();
        let p = PowerProfile::raspberry_pi_4b();
        let expected = 3.6 * 0.5 + 4.286 * 0.1 + 5.553 * 1.2 + 5.015 * 0.2;
        assert!((tl.energy_joules(&p) - expected).abs() < 1e-9);
    }

    #[test]
    fn per_state_energy_partitions_total() {
        let tl = round_timeline();
        let p = PowerProfile::raspberry_pi_4b();
        let parts: f64 = PowerState::ALL
            .iter()
            .map(|&s| tl.energy_in_state_joules(&p, s))
            .sum();
        assert!((parts - tl.energy_joules(&p)).abs() < 1e-9);
    }

    #[test]
    fn time_in_state_accumulates_across_rounds() {
        let mut tl = round_timeline();
        tl.extend_with(&round_timeline());
        assert_eq!(
            tl.time_in_state(PowerState::Training),
            SimDuration::from_millis(2_400)
        );
        assert_eq!(tl.total_duration(), SimDuration::from_millis(4_000));
    }

    #[test]
    fn adjacent_same_state_segments_merge() {
        let mut tl = PowerTimeline::new();
        tl.push(PowerState::Waiting, SimDuration::from_secs(1));
        tl.push(PowerState::Waiting, SimDuration::from_secs(2));
        assert_eq!(tl.segments().len(), 1);
        assert_eq!(tl.total_duration(), SimDuration::from_secs(3));
    }

    #[test]
    fn zero_length_segments_dropped() {
        let mut tl = PowerTimeline::new();
        tl.push(PowerState::Training, SimDuration::ZERO);
        assert!(tl.segments().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    fn arb_state() -> impl Strategy<Value = PowerState> {
        prop_oneof![
            Just(PowerState::Waiting),
            Just(PowerState::Downloading),
            Just(PowerState::Training),
            Just(PowerState::Uploading),
        ]
    }

    proptest! {
        /// Total energy always equals the sum of the per-state energies, and
        /// total duration the sum of per-state times.
        #[test]
        fn energy_and_time_partition(
            segs in proptest::collection::vec((arb_state(), 0u64..5_000), 0..32),
        ) {
            let mut tl = PowerTimeline::new();
            for (state, ms) in segs {
                tl.push(state, SimDuration::from_millis(ms));
            }
            let p = PowerProfile::raspberry_pi_4b();
            let split: f64 = PowerState::ALL
                .iter()
                .map(|&s| tl.energy_in_state_joules(&p, s))
                .sum();
            prop_assert!((split - tl.energy_joules(&p)).abs() < 1e-6);
            let time_split = PowerState::ALL
                .iter()
                .fold(SimDuration::ZERO, |acc, &s| acc + tl.time_in_state(s));
            prop_assert_eq!(time_split, tl.total_duration());
        }

        /// `state_at` agrees with a linear scan.
        #[test]
        fn state_lookup_agrees_with_scan(
            segs in proptest::collection::vec((arb_state(), 1u64..100), 1..16),
            probe_ms in 0u64..2_000,
        ) {
            let mut tl = PowerTimeline::new();
            for (state, ms) in &segs {
                tl.push(*state, SimDuration::from_millis(*ms));
            }
            let probe = SimTime::from_millis(probe_ms);
            let scan = tl
                .segments()
                .iter()
                .find(|s| s.start <= probe && probe < s.end())
                .map(|s| s.state);
            prop_assert_eq!(tl.state_at(probe), scan);
        }
    }
}
