//! The simulated USB power meter.
//!
//! The POWER-Z KM001C in the prototype samples voltage/current/power at
//! 1 kHz. [`PowerMeter`] reproduces that: it walks a ground-truth
//! [`PowerTimeline`] on a regular sampling grid, reads the plateau power of
//! the current state, adds Gaussian sensor noise, and injects the brief
//! power spikes the paper observes at the start of every model download
//! (the "two peaks" of step (2) in Fig. 3).

use fei_sim::{DetRng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::state::{PowerProfile, PowerState};
use crate::timeline::PowerTimeline;

/// Configuration and sampler for the simulated power meter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerMeter {
    sample_rate_hz: f64,
    noise_std_w: f64,
    spike_amplitude_w: f64,
    spike_duration: SimDuration,
}

impl PowerMeter {
    /// The prototype's meter: 1 kHz sampling, 50 mW sensor noise, and
    /// ~1.2 W × 8 ms spikes at download start.
    pub fn km001c() -> Self {
        Self {
            sample_rate_hz: 1_000.0,
            noise_std_w: 0.05,
            spike_amplitude_w: 1.2,
            spike_duration: SimDuration::from_millis(8),
        }
    }

    /// Creates a meter with explicit characteristics.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate_hz <= 0`, or noise/spike amplitudes are
    /// negative or non-finite.
    pub fn new(
        sample_rate_hz: f64,
        noise_std_w: f64,
        spike_amplitude_w: f64,
        spike_duration: SimDuration,
    ) -> Self {
        assert!(
            sample_rate_hz.is_finite() && sample_rate_hz > 0.0,
            "sample rate must be positive"
        );
        assert!(
            noise_std_w.is_finite() && noise_std_w >= 0.0,
            "noise must be non-negative"
        );
        assert!(
            spike_amplitude_w.is_finite() && spike_amplitude_w >= 0.0,
            "spike amplitude must be non-negative"
        );
        Self {
            sample_rate_hz,
            noise_std_w,
            spike_amplitude_w,
            spike_duration,
        }
    }

    /// Sampling rate in hertz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Samples a timeline into a [`PowerTrace`].
    ///
    /// Samples are taken at `k / rate` seconds for every grid point inside
    /// the timeline. Noise and spikes are drawn from `rng`, so traces are
    /// reproducible per seed.
    pub fn sample(
        &self,
        timeline: &PowerTimeline,
        profile: &PowerProfile,
        rng: &mut DetRng,
    ) -> PowerTrace {
        let period = SimDuration::from_secs_f64(1.0 / self.sample_rate_hz);
        // Start instants of Downloading segments host the Fig. 3 spikes.
        let spike_starts: Vec<SimTime> = timeline
            .segments()
            .iter()
            .filter(|s| s.state == PowerState::Downloading)
            .map(|s| s.start)
            .collect();

        let mut samples = Vec::new();
        let mut t = SimTime::ZERO;
        while t < timeline.end() {
            if let Some(state) = timeline.state_at(t) {
                let mut watts = profile.power(state);
                // Double-peak spike: one at segment start, one half a spike
                // later, decaying linearly over the spike duration.
                for &s0 in &spike_starts {
                    for peak in [s0, s0 + self.spike_duration] {
                        if t >= peak && t < peak + self.spike_duration {
                            let frac = t.duration_since(peak).as_secs_f64()
                                / self.spike_duration.as_secs_f64();
                            watts += self.spike_amplitude_w * (1.0 - frac);
                        }
                    }
                }
                watts += rng.gaussian_with(0.0, self.noise_std_w);
                samples.push(watts.max(0.0));
            }
            t += period;
        }
        PowerTrace { period, samples }
    }
}

impl Default for PowerMeter {
    fn default() -> Self {
        Self::km001c()
    }
}

/// A sampled power trace: regularly spaced wattage readings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    period: SimDuration,
    samples: Vec<f64>,
}

impl PowerTrace {
    /// Creates a trace from a sampling period and raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn from_samples(period: SimDuration, samples: Vec<f64>) -> Self {
        assert!(
            period > SimDuration::ZERO,
            "sampling period must be non-zero"
        );
        Self { period, samples }
    }

    /// Sampling period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The wattage samples in order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Timestamp of sample `i`.
    pub fn time_of(&self, i: usize) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(self.period.as_nanos() * i as u64)
    }

    /// Rectangle-rule energy integral of the whole trace, in joules.
    pub fn energy_joules(&self) -> f64 {
        self.samples.iter().sum::<f64>() * self.period.as_secs_f64()
    }

    /// Mean power over the samples falling in `[from, to)`, or `None` if the
    /// window holds no samples.
    pub fn mean_power_between(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let period_s = self.period.as_secs_f64();
        let lo = (from.as_secs_f64() / period_s).ceil() as usize;
        let hi = ((to.as_secs_f64() / period_s).ceil() as usize).min(self.samples.len());
        if lo >= hi {
            return None;
        }
        let window = &self.samples[lo..hi];
        Some(window.iter().sum::<f64>() / window.len() as f64)
    }

    /// Peak sampled power, or `None` on an empty trace.
    pub fn peak_power(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_timeline() -> PowerTimeline {
        let mut tl = PowerTimeline::new();
        tl.push(PowerState::Waiting, SimDuration::from_millis(200));
        tl.push(PowerState::Downloading, SimDuration::from_millis(100));
        tl.push(PowerState::Training, SimDuration::from_millis(400));
        tl.push(PowerState::Uploading, SimDuration::from_millis(100));
        tl
    }

    fn noiseless_meter() -> PowerMeter {
        PowerMeter::new(1_000.0, 0.0, 0.0, SimDuration::from_millis(8))
    }

    #[test]
    fn sample_count_matches_rate() {
        let tl = simple_timeline();
        let trace = noiseless_meter().sample(&tl, &PowerProfile::default(), &mut DetRng::new(1));
        // 800 ms at 1 kHz -> 800 samples.
        assert_eq!(trace.len(), 800);
        assert!(!trace.is_empty());
    }

    #[test]
    fn noiseless_energy_matches_timeline_exactly() {
        let tl = simple_timeline();
        let profile = PowerProfile::default();
        let trace = noiseless_meter().sample(&tl, &profile, &mut DetRng::new(1));
        let exact = tl.energy_joules(&profile);
        assert!(
            (trace.energy_joules() - exact).abs() < exact * 1e-6,
            "trace {} vs exact {exact}",
            trace.energy_joules()
        );
    }

    #[test]
    fn noisy_energy_is_close_to_timeline() {
        let tl = simple_timeline();
        let profile = PowerProfile::default();
        let trace = PowerMeter::km001c().sample(&tl, &profile, &mut DetRng::new(2));
        let exact = tl.energy_joules(&profile);
        assert!(
            (trace.energy_joules() - exact).abs() < exact * 0.02,
            "trace {} vs exact {exact}",
            trace.energy_joules()
        );
    }

    #[test]
    fn spikes_appear_at_download_start() {
        let tl = simple_timeline();
        let meter = PowerMeter::new(1_000.0, 0.0, 2.0, SimDuration::from_millis(8));
        let trace = meter.sample(&tl, &PowerProfile::default(), &mut DetRng::new(3));
        // The download plateau is 4.286 W; the spike peaks well above it.
        let spike_window_peak = trace.samples()[200..216]
            .iter()
            .copied()
            .fold(0.0, f64::max);
        assert!(spike_window_peak > 5.0, "peak {spike_window_peak}");
        // Steady-state training shows no spike.
        let training_peak = trace.samples()[400..600]
            .iter()
            .copied()
            .fold(0.0, f64::max);
        assert!((training_peak - 5.553).abs() < 1e-9);
    }

    #[test]
    fn traces_are_reproducible_per_seed() {
        let tl = simple_timeline();
        let meter = PowerMeter::km001c();
        let a = meter.sample(&tl, &PowerProfile::default(), &mut DetRng::new(7));
        let b = meter.sample(&tl, &PowerProfile::default(), &mut DetRng::new(7));
        let c = meter.sample(&tl, &PowerProfile::default(), &mut DetRng::new(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_power_window() {
        let tl = simple_timeline();
        let trace = noiseless_meter().sample(&tl, &PowerProfile::default(), &mut DetRng::new(1));
        let m = trace
            .mean_power_between(SimTime::from_millis(300), SimTime::from_millis(700))
            .unwrap();
        assert!((m - 5.553).abs() < 1e-9);
        assert!(trace
            .mean_power_between(SimTime::from_millis(900), SimTime::from_millis(950))
            .is_none());
    }

    #[test]
    fn peak_power_and_times() {
        let trace = PowerTrace::from_samples(SimDuration::from_millis(1), vec![1.0, 3.0, 2.0]);
        assert_eq!(trace.peak_power(), Some(3.0));
        assert_eq!(trace.time_of(2), SimTime::from_millis(2));
        let empty = PowerTrace::from_samples(SimDuration::from_millis(1), vec![]);
        assert_eq!(empty.peak_power(), None);
        assert_eq!(empty.energy_joules(), 0.0);
    }

    #[test]
    fn empty_timeline_empty_trace() {
        let tl = PowerTimeline::new();
        let trace = noiseless_meter().sample(&tl, &PowerProfile::default(), &mut DetRng::new(1));
        assert!(trace.is_empty());
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn rejects_zero_rate() {
        let _ = PowerMeter::new(0.0, 0.0, 0.0, SimDuration::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Meter energy converges to the exact timeline integral for any
        /// noiseless sampling of any timeline (within discretization error).
        #[test]
        fn meter_energy_tracks_timeline(
            segs in proptest::collection::vec((0usize..4, 50u64..500), 1..8),
            seed in any::<u64>(),
        ) {
            let mut tl = PowerTimeline::new();
            for (si, ms) in segs {
                tl.push(PowerState::ALL[si], SimDuration::from_millis(ms));
            }
            let profile = PowerProfile::raspberry_pi_4b();
            let meter = PowerMeter::new(1_000.0, 0.0, 0.0, SimDuration::from_millis(1));
            let trace = meter.sample(&tl, &profile, &mut DetRng::new(seed));
            let exact = tl.energy_joules(&profile);
            // One sample of error per segment boundary at most.
            let tolerance = 6.0e-3 * 8.0 + exact * 1e-9;
            prop_assert!((trace.energy_joules() - exact).abs() <= tolerance,
                "trace {} vs exact {}", trace.energy_joules(), exact);
        }
    }
}
