//! Device power states and plateau powers.

use serde::{Deserialize, Serialize};

/// The four power states of an edge server during a global round, in the
/// order the paper observes them (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PowerState {
    /// Step (1): waiting for the coordinator/IoT data; idle draw.
    Waiting,
    /// Step (2): receiving the global model and loading it.
    Downloading,
    /// Step (3): running `E` local SGD epochs.
    Training,
    /// Step (4): uploading the local model to the coordinator.
    Uploading,
}

impl PowerState {
    /// All states in round order.
    pub const ALL: [PowerState; 4] = [
        PowerState::Waiting,
        PowerState::Downloading,
        PowerState::Training,
        PowerState::Uploading,
    ];
}

/// A device's mean power draw in each state, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// Idle / waiting power.
    pub waiting_w: f64,
    /// Model-download power.
    pub downloading_w: f64,
    /// Local-training power.
    pub training_w: f64,
    /// Model-upload power.
    pub uploading_w: f64,
}

impl PowerProfile {
    /// The Raspberry Pi 4B plateaus measured by the paper's prototype
    /// (§VI-B): 3.600, 4.286, 5.553, and 5.015 W.
    pub fn raspberry_pi_4b() -> Self {
        Self {
            waiting_w: 3.600,
            downloading_w: 4.286,
            training_w: 5.553,
            uploading_w: 5.015,
        }
    }

    /// Creates a profile from explicit plateau powers.
    ///
    /// # Panics
    ///
    /// Panics if any power is negative or not finite.
    pub fn new(waiting_w: f64, downloading_w: f64, training_w: f64, uploading_w: f64) -> Self {
        for (name, p) in [
            ("waiting", waiting_w),
            ("downloading", downloading_w),
            ("training", training_w),
            ("uploading", uploading_w),
        ] {
            assert!(
                p.is_finite() && p >= 0.0,
                "{name} power must be finite and non-negative"
            );
        }
        Self {
            waiting_w,
            downloading_w,
            training_w,
            uploading_w,
        }
    }

    /// Power draw in `state`, in watts.
    pub fn power(&self, state: PowerState) -> f64 {
        match state {
            PowerState::Waiting => self.waiting_w,
            PowerState::Downloading => self.downloading_w,
            PowerState::Training => self.training_w,
            PowerState::Uploading => self.uploading_w,
        }
    }

    /// Power above idle in `state` — the *marginal* cost of doing work
    /// instead of waiting, used when attributing energy to FL steps.
    pub fn power_above_idle(&self, state: PowerState) -> f64 {
        (self.power(state) - self.waiting_w).max(0.0)
    }
}

impl Default for PowerProfile {
    fn default() -> Self {
        Self::raspberry_pi_4b()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_profile_matches_paper_plateaus() {
        let p = PowerProfile::raspberry_pi_4b();
        assert_eq!(p.power(PowerState::Waiting), 3.600);
        assert_eq!(p.power(PowerState::Downloading), 4.286);
        assert_eq!(p.power(PowerState::Training), 5.553);
        assert_eq!(p.power(PowerState::Uploading), 5.015);
        assert_eq!(PowerProfile::default(), p);
    }

    #[test]
    fn plateau_ordering_matches_fig3() {
        // Fig. 3: waiting < downloading < uploading < training.
        let p = PowerProfile::raspberry_pi_4b();
        assert!(p.waiting_w < p.downloading_w);
        assert!(p.downloading_w < p.uploading_w);
        assert!(p.uploading_w < p.training_w);
    }

    #[test]
    fn marginal_power_is_relative_to_idle() {
        let p = PowerProfile::raspberry_pi_4b();
        assert!((p.power_above_idle(PowerState::Training) - 1.953).abs() < 1e-12);
        assert_eq!(p.power_above_idle(PowerState::Waiting), 0.0);
    }

    #[test]
    fn marginal_power_clamps_below_idle() {
        let p = PowerProfile::new(5.0, 1.0, 5.0, 5.0);
        assert_eq!(p.power_above_idle(PowerState::Downloading), 0.0);
    }

    #[test]
    #[should_panic(expected = "training power")]
    fn rejects_negative_power() {
        let _ = PowerProfile::new(1.0, 1.0, -2.0, 1.0);
    }

    #[test]
    fn all_lists_states_in_round_order() {
        assert_eq!(
            PowerState::ALL,
            [
                PowerState::Waiting,
                PowerState::Downloading,
                PowerState::Training,
                PowerState::Uploading
            ]
        );
    }
}
