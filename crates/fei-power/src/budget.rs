//! Per-device energy budgets (battery model).
//!
//! The paper's motivation is fleet sustainability: edge devices run on
//! constrained power sources. This module tracks cumulative consumption per
//! device against a capacity, supporting lifetime analysis of a training
//! schedule ("how many rounds until the first device dies?") and
//! energy-aware participant scheduling (the online policy of the paper's
//! reference \[12\]).

use serde::{Deserialize, Serialize};

/// A fleet of device batteries with fixed capacities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatteryFleet {
    capacity_j: Vec<f64>,
    consumed_j: Vec<f64>,
}

impl BatteryFleet {
    /// Creates a fleet where every device has the same capacity, in joules.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0` or `capacity_j` is not positive and finite.
    // fei-lint: allow(ledger-discipline, reason = "battery capacity is a bound, not a spend; spends are classified where EnergyLedger::charge is called")
    pub fn uniform(devices: usize, capacity_j: f64) -> Self {
        assert!(devices > 0, "need at least one device");
        assert!(
            capacity_j.is_finite() && capacity_j > 0.0,
            "capacity must be positive and finite"
        );
        Self {
            capacity_j: vec![capacity_j; devices],
            consumed_j: vec![0.0; devices],
        }
    }

    /// Creates a fleet with per-device capacities.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or any capacity is non-positive.
    pub fn from_capacities(capacities: Vec<f64>) -> Self {
        assert!(!capacities.is_empty(), "need at least one device");
        assert!(
            capacities.iter().all(|c| c.is_finite() && *c > 0.0),
            "capacities must be positive and finite"
        );
        let n = capacities.len();
        Self {
            capacity_j: capacities,
            consumed_j: vec![0.0; n],
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.capacity_j.len()
    }

    /// Whether the fleet is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.capacity_j.is_empty()
    }

    /// Charges `joules` of consumption to `device`.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range or `joules` is negative/not
    /// finite.
    // fei-lint: allow(ledger-discipline, reason = "battery drain mirrors a spend already classified at the ledger; the budget tracks remaining capacity only")
    pub fn consume(&mut self, device: usize, joules: f64) {
        assert!(device < self.len(), "device {device} out of range");
        assert!(
            joules.is_finite() && joules >= 0.0,
            "consumption must be non-negative"
        );
        self.consumed_j[device] += joules;
    }

    /// Energy consumed so far by `device`, joules.
    pub fn consumed(&self, device: usize) -> f64 {
        self.consumed_j[device]
    }

    /// Remaining energy of `device`, clamped at zero.
    pub fn remaining(&self, device: usize) -> f64 {
        (self.capacity_j[device] - self.consumed_j[device]).max(0.0)
    }

    /// Remaining state of charge of `device` in `[0, 1]`.
    pub fn state_of_charge(&self, device: usize) -> f64 {
        self.remaining(device) / self.capacity_j[device]
    }

    /// Whether `device` has exhausted its budget.
    pub fn is_depleted(&self, device: usize) -> bool {
        self.consumed_j[device] >= self.capacity_j[device]
    }

    /// Devices that still have energy left, ascending.
    pub fn alive_devices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&d| !self.is_depleted(d)).collect()
    }

    /// The `k` alive devices with the most remaining energy — a max-lifetime
    /// participant schedule. Returns fewer than `k` when not enough devices
    /// are alive. Ties break toward lower indices.
    pub fn top_k_by_remaining(&self, k: usize) -> Vec<usize> {
        let mut alive = self.alive_devices();
        alive.sort_by(|&a, &b| {
            self.remaining(b)
                .partial_cmp(&self.remaining(a))
                .expect("invariant: charges are validated finite, so remaining energy is never NaN")
                .then(a.cmp(&b))
        });
        alive.truncate(k);
        alive.sort_unstable();
        alive
    }

    /// Total energy consumed across the fleet.
    pub fn total_consumed(&self) -> f64 {
        self.consumed_j.iter().sum()
    }

    /// Minimum state of charge across the fleet — the "first device to die"
    /// indicator.
    pub fn min_state_of_charge(&self) -> f64 {
        (0..self.len())
            .map(|d| self.state_of_charge(d))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_fleet_is_fully_charged() {
        let fleet = BatteryFleet::uniform(5, 100.0);
        assert_eq!(fleet.len(), 5);
        assert!(!fleet.is_empty());
        for d in 0..5 {
            assert_eq!(fleet.remaining(d), 100.0);
            assert_eq!(fleet.state_of_charge(d), 1.0);
            assert!(!fleet.is_depleted(d));
        }
        assert_eq!(fleet.alive_devices(), vec![0, 1, 2, 3, 4]);
        assert_eq!(fleet.total_consumed(), 0.0);
        assert_eq!(fleet.min_state_of_charge(), 1.0);
    }

    #[test]
    fn consumption_accumulates_and_depletes() {
        let mut fleet = BatteryFleet::uniform(2, 10.0);
        fleet.consume(0, 4.0);
        fleet.consume(0, 4.0);
        assert_eq!(fleet.consumed(0), 8.0);
        assert_eq!(fleet.remaining(0), 2.0);
        assert!(!fleet.is_depleted(0));
        fleet.consume(0, 5.0);
        assert!(fleet.is_depleted(0));
        assert_eq!(fleet.remaining(0), 0.0);
        assert_eq!(fleet.state_of_charge(0), 0.0);
        assert_eq!(fleet.alive_devices(), vec![1]);
        assert_eq!(fleet.total_consumed(), 13.0);
    }

    #[test]
    fn top_k_prefers_fullest_batteries() {
        let mut fleet = BatteryFleet::uniform(4, 100.0);
        fleet.consume(0, 50.0);
        fleet.consume(1, 10.0);
        fleet.consume(2, 90.0);
        // remaining: 50, 90, 10, 100 -> top-2 = {3, 1}.
        assert_eq!(fleet.top_k_by_remaining(2), vec![1, 3]);
        assert_eq!(fleet.top_k_by_remaining(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn top_k_excludes_depleted_and_truncates() {
        let mut fleet = BatteryFleet::uniform(3, 10.0);
        fleet.consume(1, 10.0);
        assert_eq!(fleet.top_k_by_remaining(3), vec![0, 2]);
    }

    #[test]
    fn top_k_breaks_ties_by_index() {
        let fleet = BatteryFleet::uniform(4, 10.0);
        assert_eq!(fleet.top_k_by_remaining(2), vec![0, 1]);
    }

    #[test]
    fn heterogeneous_capacities() {
        let mut fleet = BatteryFleet::from_capacities(vec![10.0, 100.0]);
        fleet.consume(0, 5.0);
        fleet.consume(1, 5.0);
        assert_eq!(fleet.state_of_charge(0), 0.5);
        assert_eq!(fleet.state_of_charge(1), 0.95);
        assert_eq!(fleet.min_state_of_charge(), 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn consume_rejects_bad_device() {
        BatteryFleet::uniform(1, 1.0).consume(1, 0.1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn consume_rejects_negative() {
        BatteryFleet::uniform(1, 1.0).consume(0, -0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_capacity() {
        let _ = BatteryFleet::from_capacities(vec![0.0]);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Remaining + consumed never exceeds capacity by more than the
        /// overshoot, and state of charge stays in [0, 1].
        #[test]
        fn charge_invariants(
            charges in proptest::collection::vec((0usize..4, 0.0f64..50.0), 0..32),
        ) {
            let mut fleet = BatteryFleet::uniform(4, 100.0);
            for (d, j) in charges {
                fleet.consume(d, j);
            }
            for d in 0..4 {
                let soc = fleet.state_of_charge(d);
                prop_assert!((0.0..=1.0).contains(&soc));
                prop_assert!(fleet.remaining(d) <= 100.0);
                prop_assert_eq!(fleet.is_depleted(d), fleet.remaining(d) == 0.0);
            }
            let alive = fleet.alive_devices();
            let top = fleet.top_k_by_remaining(4);
            prop_assert_eq!(alive.len(), top.len());
        }
    }
}
