//! Packed GEMM micro-kernels and their reusable pack workspace.
//!
//! [`Matrix::matmul`](crate::matrix::Matrix::matmul) and
//! [`Matrix::matmul_tn`](crate::matrix::Matrix::matmul_tn) run on the
//! register-blocked kernel in this module: for each `TILE`-wide strip of
//! the inner dimension, the B-tile is packed once into contiguous
//! `NR`-wide column panels and each `MR`-row A-panel is packed into a
//! k-major strip, so the inner loop streams both operands linearly and
//! keeps an `MR × NR` accumulator block entirely in registers.
//!
//! **Bit-identity contract.** The packed schedule is constructed so every
//! output element still accumulates its `k` contributions in ascending
//! order — `kk` tiles ascend, `kl` within a tile ascends, and the
//! accumulator block is loaded from the output (which holds the previous
//! tiles' partials) before the inner loop and stored back after. The
//! exact-zero skip of the reference kernel is preserved per `(i, k)`
//! pair: a packed A-panel records whether it contains any exact zero
//! during packing; zero-free panels take a branch-free body (skipping
//! nothing — identical to the branchy body when no skip would fire,
//! ~20% faster), panels with zeros take the branchy body that skips
//! exactly where [`Matrix::matmul_reference`](crate::matrix::Matrix::matmul_reference)
//! skips. Equivalence is pinned bitwise by unit tests and proptests in
//! `matrix.rs`.
//!
//! The pack buffers live in a [`MatScratch`] workspace that callers can
//! reuse across products; like `GradScratch`/`WireScratch` it counts
//! every buffer growth so benches can assert zero steady-state
//! allocations.

/// Square cache-block edge for the packed kernels, in elements — shared
/// with the historical tiled kernels so the per-element accumulation
/// order (and therefore every produced bit) is unchanged.
pub const TILE: usize = 64;

/// Rows of the register-blocked accumulator (A-panel height).
pub const MR: usize = 4;

/// Columns of the register-blocked accumulator (B-panel width).
pub const NR: usize = 8;

/// Reusable pack workspace for the GEMM micro-kernels.
///
/// Holds the packed A-panel (`MR × TILE`) and packed B-tile
/// (`TILE × n`, rounded to whole `NR` panels) between calls. Buffers
/// only ever grow; [`MatScratch::allocations`] counts each growth so the
/// perf harness can verify the steady state allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct MatScratch {
    a_pack: Vec<f64>,
    b_pack: Vec<f64>,
    allocations: u64,
}

impl MatScratch {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of times any internal buffer had to grow since creation.
    /// Zero growth across warm calls == zero steady-state allocations.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Ensures capacity for a product with `panels` full B-panels,
    /// returning the A-panel and B-tile buffers.
    fn prepare(&mut self, panels: usize) -> (&mut [f64], &mut [f64]) {
        let a_need = TILE * MR;
        let b_need = TILE * panels * NR;
        if self.a_pack.len() < a_need {
            self.allocations += 1;
            self.a_pack.resize(a_need, 0.0);
        }
        if self.b_pack.len() < b_need {
            self.allocations += 1;
            self.b_pack.resize(b_need, 0.0);
        }
        (&mut self.a_pack[..a_need], &mut self.b_pack[..b_need])
    }
}

/// How the packed kernel reads the A operand.
#[derive(Debug, Clone, Copy)]
pub enum AOrder {
    /// `a[i, k] = data[i * kd + k]` — plain row-major A (for `matmul`).
    RowMajor,
    /// `a[i, k] = data[k * m + i]` — A is the transpose of a row-major
    /// `kd × m` buffer (for `matmul_tn`, without materializing it).
    Transposed,
}

/// Element accessor for the two A layouts.
#[inline(always)]
fn a_at(a: &[f64], order: AOrder, m: usize, kd: usize, i: usize, k: usize) -> f64 {
    match order {
        AOrder::RowMajor => a[i * kd + k],
        AOrder::Transposed => {
            let _ = kd;
            a[k * m + i]
        }
    }
}

/// Packed GEMM: `out += a * b` where `a` is `m × kd` (logical, see
/// [`AOrder`]), `b` is `kd × n` row-major, `out` is `m × n` row-major
/// and accumulates on top of whatever the caller left there (zero it
/// first for a plain product).
///
/// Contribution order per output element is `k`-ascending with an exact
/// per-`(i, k)` zero skip on `a`, matching the reference triple loop
/// bit-for-bit — which is why the fused gradient kernel can phrase its
/// `G += Eᵀ X` accumulation as a call to this function (`E` read via
/// [`AOrder::Transposed`]) without perturbing golden numerics.
///
/// # Panics
///
/// Panics (via slice indexing) if any buffer is shorter than its shape
/// implies.
#[allow(clippy::too_many_arguments)] // the GEMM shape (a, b, out, m, kd, n) is irreducible; grouping into a struct would only move the argument list
pub fn packed_gemm(
    a: &[f64],
    order: AOrder,
    b: &[f64],
    out: &mut [f64],
    m: usize,
    kd: usize,
    n: usize,
    scratch: &mut MatScratch,
) {
    let panels = n / NR;
    let n_main = panels * NR;
    let m_main = (m / MR) * MR;
    let (a_pack, b_pack) = scratch.prepare(panels);

    for kk in (0..kd).step_by(TILE) {
        let k_end = (kk + TILE).min(kd);
        let kt = k_end - kk;

        // Pack the B-tile into contiguous k-major panels: panel `p`
        // holds columns [p*NR, (p+1)*NR) for all kt inner indices.
        for p in 0..panels {
            let jp = p * NR;
            let dst = &mut b_pack[p * kt * NR..(p + 1) * kt * NR];
            for kl in 0..kt {
                let src = &b[(kk + kl) * n + jp..(kk + kl) * n + jp + NR];
                dst[kl * NR..kl * NR + NR].copy_from_slice(src);
            }
        }

        // Full MR-row groups take the register-blocked micro-kernel.
        for ig in (0..m_main).step_by(MR) {
            // Pack the A-panel k-major (apack[kl*MR + r] = a[ig+r, kk+kl])
            // and record whether any exact zero needs the skipping body.
            let mut has_zero = false;
            for r in 0..MR {
                for kl in 0..kt {
                    let av = a_at(a, order, m, kd, ig + r, kk + kl);
                    a_pack[kl * MR + r] = av;
                    // fei-lint: allow(float-eq, reason = "detects exact zeros so zero-free panels can drop the sparsity branch while performing the same contributions as matmul_reference")
                    has_zero |= av == 0.0;
                }
            }
            let ap = &a_pack[..kt * MR];

            for p in 0..panels {
                let jp = p * NR;
                let bp = &b_pack[p * kt * NR..p * kt * NR + kt * NR];
                gemm_block_4x8(out, n, ig, jp, ap, bp, has_zero);
            }

            // Column tail (n % NR): scalar, same k-ascending order and
            // the same per-(i,k) zero skip as the reference kernel.
            for j in n_main..n {
                for r in 0..MR {
                    let mut acc = out[(ig + r) * n + j];
                    for kl in 0..kt {
                        let av = ap[kl * MR + r];
                        // fei-lint: allow(float-eq, reason = "exact-zero sparsity skip mirrors matmul_reference per-(i,k), preserving the packed kernel's bit-identity")
                        if av == 0.0 {
                            continue;
                        }
                        acc += av * b[(kk + kl) * n + j];
                    }
                    out[(ig + r) * n + j] = acc;
                }
            }
        }

        // Row tail (m % MR): row-at-a-time over the full width, ascending
        // k within the tile — the historical blocked loop.
        for i in m_main..m {
            let out_row = &mut out[i * n..(i + 1) * n];
            for kl in 0..kt {
                let av = a_at(a, order, m, kd, i, kk + kl);
                // fei-lint: allow(float-eq, reason = "exact-zero sparsity skip mirrors matmul_reference per-(i,k), preserving the packed kernel's bit-identity")
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[(kk + kl) * n..(kk + kl) * n + n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// The `MR × NR` register-blocked inner kernel: loads the accumulator
/// block from `out` (previous k-tiles' partials), streams the packed
/// panels with ascending `kl`, stores the block back.
///
/// The 32 accumulators are named scalars — an indexed `[[f64; NR]; MR]`
/// spills to the stack — and the zero-free path is branch-free (see the
/// module docs for why that cannot change any bits).
#[inline(always)]
#[allow(clippy::too_many_lines)]
fn gemm_block_4x8(
    out: &mut [f64],
    n: usize,
    ig: usize,
    jp: usize,
    ap: &[f64],
    bp: &[f64],
    has_zero: bool,
) {
    let (mut c00, mut c01, mut c02, mut c03, mut c04, mut c05, mut c06, mut c07);
    let (mut c10, mut c11, mut c12, mut c13, mut c14, mut c15, mut c16, mut c17);
    let (mut c20, mut c21, mut c22, mut c23, mut c24, mut c25, mut c26, mut c27);
    let (mut c30, mut c31, mut c32, mut c33, mut c34, mut c35, mut c36, mut c37);
    {
        let r0 = &out[ig * n + jp..ig * n + jp + NR];
        c00 = r0[0];
        c01 = r0[1];
        c02 = r0[2];
        c03 = r0[3];
        c04 = r0[4];
        c05 = r0[5];
        c06 = r0[6];
        c07 = r0[7];
        let r1 = &out[(ig + 1) * n + jp..(ig + 1) * n + jp + NR];
        c10 = r1[0];
        c11 = r1[1];
        c12 = r1[2];
        c13 = r1[3];
        c14 = r1[4];
        c15 = r1[5];
        c16 = r1[6];
        c17 = r1[7];
        let r2 = &out[(ig + 2) * n + jp..(ig + 2) * n + jp + NR];
        c20 = r2[0];
        c21 = r2[1];
        c22 = r2[2];
        c23 = r2[3];
        c24 = r2[4];
        c25 = r2[5];
        c26 = r2[6];
        c27 = r2[7];
        let r3 = &out[(ig + 3) * n + jp..(ig + 3) * n + jp + NR];
        c30 = r3[0];
        c31 = r3[1];
        c32 = r3[2];
        c33 = r3[3];
        c34 = r3[4];
        c35 = r3[5];
        c36 = r3[6];
        c37 = r3[7];
    }
    if has_zero {
        for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
            let (b0, b1, b2, b3) = (bv[0], bv[1], bv[2], bv[3]);
            let (b4, b5, b6, b7) = (bv[4], bv[5], bv[6], bv[7]);
            let a0 = av[0];
            // fei-lint: allow(float-eq, reason = "exact-zero sparsity skip mirrors matmul_reference per-(i,k), preserving the packed kernel's bit-identity")
            if a0 != 0.0 {
                c00 += a0 * b0;
                c01 += a0 * b1;
                c02 += a0 * b2;
                c03 += a0 * b3;
                c04 += a0 * b4;
                c05 += a0 * b5;
                c06 += a0 * b6;
                c07 += a0 * b7;
            }
            let a1 = av[1];
            // fei-lint: allow(float-eq, reason = "exact-zero sparsity skip mirrors matmul_reference per-(i,k), preserving the packed kernel's bit-identity")
            if a1 != 0.0 {
                c10 += a1 * b0;
                c11 += a1 * b1;
                c12 += a1 * b2;
                c13 += a1 * b3;
                c14 += a1 * b4;
                c15 += a1 * b5;
                c16 += a1 * b6;
                c17 += a1 * b7;
            }
            let a2 = av[2];
            // fei-lint: allow(float-eq, reason = "exact-zero sparsity skip mirrors matmul_reference per-(i,k), preserving the packed kernel's bit-identity")
            if a2 != 0.0 {
                c20 += a2 * b0;
                c21 += a2 * b1;
                c22 += a2 * b2;
                c23 += a2 * b3;
                c24 += a2 * b4;
                c25 += a2 * b5;
                c26 += a2 * b6;
                c27 += a2 * b7;
            }
            let a3 = av[3];
            // fei-lint: allow(float-eq, reason = "exact-zero sparsity skip mirrors matmul_reference per-(i,k), preserving the packed kernel's bit-identity")
            if a3 != 0.0 {
                c30 += a3 * b0;
                c31 += a3 * b1;
                c32 += a3 * b2;
                c33 += a3 * b3;
                c34 += a3 * b4;
                c35 += a3 * b5;
                c36 += a3 * b6;
                c37 += a3 * b7;
            }
        }
    } else {
        // No exact zeros in this A-panel: the skip branches above would
        // never fire, so dropping them performs the identical sequence
        // of adds — branch-free and vectorizable.
        for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
            let (b0, b1, b2, b3) = (bv[0], bv[1], bv[2], bv[3]);
            let (b4, b5, b6, b7) = (bv[4], bv[5], bv[6], bv[7]);
            let a0 = av[0];
            c00 += a0 * b0;
            c01 += a0 * b1;
            c02 += a0 * b2;
            c03 += a0 * b3;
            c04 += a0 * b4;
            c05 += a0 * b5;
            c06 += a0 * b6;
            c07 += a0 * b7;
            let a1 = av[1];
            c10 += a1 * b0;
            c11 += a1 * b1;
            c12 += a1 * b2;
            c13 += a1 * b3;
            c14 += a1 * b4;
            c15 += a1 * b5;
            c16 += a1 * b6;
            c17 += a1 * b7;
            let a2 = av[2];
            c20 += a2 * b0;
            c21 += a2 * b1;
            c22 += a2 * b2;
            c23 += a2 * b3;
            c24 += a2 * b4;
            c25 += a2 * b5;
            c26 += a2 * b6;
            c27 += a2 * b7;
            let a3 = av[3];
            c30 += a3 * b0;
            c31 += a3 * b1;
            c32 += a3 * b2;
            c33 += a3 * b3;
            c34 += a3 * b4;
            c35 += a3 * b5;
            c36 += a3 * b6;
            c37 += a3 * b7;
        }
    }
    {
        let r0 = &mut out[ig * n + jp..ig * n + jp + NR];
        r0[0] = c00;
        r0[1] = c01;
        r0[2] = c02;
        r0[3] = c03;
        r0[4] = c04;
        r0[5] = c05;
        r0[6] = c06;
        r0[7] = c07;
        let r1 = &mut out[(ig + 1) * n + jp..(ig + 1) * n + jp + NR];
        r1[0] = c10;
        r1[1] = c11;
        r1[2] = c12;
        r1[3] = c13;
        r1[4] = c14;
        r1[5] = c15;
        r1[6] = c16;
        r1[7] = c17;
        let r2 = &mut out[(ig + 2) * n + jp..(ig + 2) * n + jp + NR];
        r2[0] = c20;
        r2[1] = c21;
        r2[2] = c22;
        r2[3] = c23;
        r2[4] = c24;
        r2[5] = c25;
        r2[6] = c26;
        r2[7] = c27;
        let r3 = &mut out[(ig + 3) * n + jp..(ig + 3) * n + jp + NR];
        r3[0] = c30;
        r3[1] = c31;
        r3[2] = c32;
        r3[3] = c33;
        r3[4] = c34;
        r3[5] = c35;
        r3[6] = c36;
        r3[7] = c37;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_counts_growth_once_per_size() {
        let mut s = MatScratch::new();
        assert_eq!(s.allocations(), 0);
        let _ = s.prepare(4);
        let grown = s.allocations();
        assert!(grown >= 1);
        let _ = s.prepare(4);
        let _ = s.prepare(2);
        assert_eq!(s.allocations(), grown, "warm prepare must not grow");
        let _ = s.prepare(8);
        assert!(s.allocations() > grown, "larger panel count must grow");
    }
}
