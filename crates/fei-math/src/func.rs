//! Scalar and vector activation functions.
//!
//! Numerically stable softmax / log-sum-exp are the core of the multinomial
//! logistic regression used throughout the paper's evaluation (Table II).

/// Numerically stable softmax computed in place over `logits`.
///
/// # Panics
///
/// Panics if `logits` is empty.
///
/// # Example
///
/// ```
/// use fei_math::func::softmax_in_place;
///
/// let mut v = [0.0, 0.0];
/// softmax_in_place(&mut v);
/// assert!((v[0] - 0.5).abs() < 1e-12);
/// ```
pub fn softmax_in_place(logits: &mut [f64]) {
    assert!(!logits.is_empty(), "softmax needs at least one logit");
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for l in logits.iter_mut() {
        *l = (*l - max).exp();
        sum += *l;
    }
    for l in logits.iter_mut() {
        *l /= sum;
    }
}

/// Numerically stable `log(sum_i exp(x_i))`.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "log_sum_exp needs at least one value");
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    max + xs.iter().map(|&x| (x - max).exp()).sum::<f64>().ln()
}

/// Logistic sigmoid `1 / (1 + e^{-x})`, stable for large `|x|`.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Index of the maximum element (first one on ties).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn argmax(xs: &[f64]) -> usize {
    assert!(!xs.is_empty(), "argmax needs at least one value");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_uniform_on_equal_logits() {
        let mut v = [1.0; 4];
        softmax_in_place(&mut v);
        for x in v {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut v = [1.0, 3.0, 2.0];
        softmax_in_place(&mut v);
        let sum: f64 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(v[1] > v[2] && v[2] > v[0]);
    }

    #[test]
    fn softmax_survives_large_logits() {
        let mut v = [1000.0, 1001.0];
        softmax_in_place(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_matches_naive_for_small_values() {
        let xs = [0.1, 0.2, 0.3];
        let naive: f64 = xs.iter().map(|x: &f64| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_survives_large_values() {
        assert!((log_sum_exp(&[1000.0, 1000.0]) - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_all_neg_infinity() {
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn sigmoid_symmetry_and_extremes() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(1000.0) > 0.999999);
        assert!(sigmoid(-1000.0) < 1e-6);
        assert!(sigmoid(-1000.0) >= 0.0);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn softmax_is_distribution(v in proptest::collection::vec(-50.0f64..50.0, 1..16)) {
            let mut s = v.clone();
            softmax_in_place(&mut s);
            prop_assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }

        #[test]
        fn softmax_preserves_argmax(v in proptest::collection::vec(-50.0f64..50.0, 2..16)) {
            let mut s = v.clone();
            softmax_in_place(&mut s);
            prop_assert_eq!(argmax(&v), argmax(&s));
        }

        #[test]
        fn log_sum_exp_bounds(v in proptest::collection::vec(-100.0f64..100.0, 1..16)) {
            let lse = log_sum_exp(&v);
            let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(lse >= max - 1e-9);
            prop_assert!(lse <= max + (v.len() as f64).ln() + 1e-9);
        }
    }
}
