//! Epsilon-aware floating-point comparison.
//!
//! Exact `==`/`!=` on `f64` energy, accuracy, and loss values is forbidden
//! across the workspace (enforced by `fei-lint`'s `float-eq` rule): two
//! mathematically equal quantities computed along different code paths —
//! the serial and threaded FedAvg engines, say — may differ in the last
//! ulp, and an exact comparison silently turns that into a behavioural
//! divergence. These helpers are the sanctioned alternative wherever a
//! tolerance is the right semantics. (Exact comparisons remain correct for
//! zero-guards before division and configuration sentinels; those sites
//! carry a `// fei-lint: allow(float-eq, ...)` escape instead.)

/// Default absolute tolerance: well below any physically meaningful joule
/// or accuracy delta in this workspace, well above accumulated ulp noise.
pub const DEFAULT_ABS_TOL: f64 = 1e-12;

/// Default relative tolerance, for quantities far from zero.
pub const DEFAULT_REL_TOL: f64 = 1e-9;

/// `true` when `a` and `b` agree to within `abs_tol` absolutely or
/// `rel_tol` relative to the larger magnitude.
///
/// Non-finite inputs compare equal only when exactly identical (so
/// `inf == inf` holds but `NaN` never equals anything), matching IEEE
/// intuition while staying total.
pub fn approx_eq_tol(a: f64, b: f64, abs_tol: f64, rel_tol: f64) -> bool {
    // fei-lint: allow(float-eq, reason = "the epsilon helper itself: exact short-circuit covers identical values and infinities")
    if a == b {
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    let diff = (a - b).abs();
    diff <= abs_tol || diff <= rel_tol * a.abs().max(b.abs())
}

/// [`approx_eq_tol`] with the workspace default tolerances.
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_tol(a, b, DEFAULT_ABS_TOL, DEFAULT_REL_TOL)
}

/// Negation of [`approx_eq`].
pub fn approx_ne(a: f64, b: f64) -> bool {
    !approx_eq(a, b)
}

/// `true` when `x` is within [`DEFAULT_ABS_TOL`] of zero. `NaN` is not
/// approximately zero.
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= DEFAULT_ABS_TOL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_are_approx_eq() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(0.0, 0.0));
        assert!(approx_eq(0.0, -0.0));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
    }

    #[test]
    fn ulp_noise_is_absorbed() {
        let a = 0.1 + 0.2;
        assert!(approx_eq(a, 0.3));
        assert!(approx_ne(a, 0.3 + 1e-6));
        // Relative tolerance scales with magnitude.
        let big = 1e12;
        assert!(approx_eq(big, big + 1e2));
        assert!(approx_ne(big, big + 1e5));
    }

    #[test]
    fn nan_never_compares_equal() {
        assert!(approx_ne(f64::NAN, f64::NAN));
        assert!(approx_ne(f64::NAN, 0.0));
        assert!(!approx_zero(f64::NAN));
        assert!(approx_ne(f64::INFINITY, f64::NEG_INFINITY));
        assert!(approx_ne(f64::INFINITY, 1e300));
    }

    #[test]
    fn approx_zero_window() {
        assert!(approx_zero(0.0));
        assert!(approx_zero(1e-13));
        assert!(approx_zero(-1e-13));
        assert!(!approx_zero(1e-9));
    }

    #[test]
    fn custom_tolerances_are_respected() {
        assert!(approx_eq_tol(1.0, 1.05, 0.1, 0.0));
        assert!(!approx_eq_tol(1.0, 1.05, 0.01, 0.0));
        assert!(approx_eq_tol(100.0, 101.0, 0.0, 0.02));
        assert!(!approx_eq_tol(100.0, 101.0, 0.0, 0.001));
    }
}
