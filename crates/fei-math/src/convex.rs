//! Discrete convexity probes.
//!
//! The paper proves (Lemmas 1–2, Theorem 1) that the energy objective
//! Eq. (12) is strictly biconvex in `(K, E)`. These helpers let the test
//! suite *check* that claim numerically on the implemented objective, and let
//! the ACS driver assert its per-coordinate slices really are convex before
//! trusting a closed-form stationary point.

/// Central second difference `f(x+h) - 2 f(x) + f(x-h)`.
///
/// For a convex function this is non-negative for every `x` and `h > 0`.
pub fn second_difference<F: Fn(f64) -> f64>(f: F, x: f64, h: f64) -> f64 {
    f(x + h) - 2.0 * f(x) + f(x - h)
}

/// Checks convexity of `f` on `[lo, hi]` by sampling `steps` interior points
/// and verifying every central second difference is at least `-tol`.
///
/// Points where the objective is non-finite (outside the feasible region of
/// the bound, for example) are skipped.
///
/// # Panics
///
/// Panics if `steps < 3` or `lo >= hi`.
///
/// # Example
///
/// ```
/// use fei_math::convex::is_convex_on_grid;
///
/// assert!(is_convex_on_grid(|x| x * x, -5.0, 5.0, 50, 1e-9));
/// assert!(!is_convex_on_grid(|x| -(x * x), -5.0, 5.0, 50, 1e-9));
/// ```
pub fn is_convex_on_grid<F: Fn(f64) -> f64>(
    f: F,
    lo: f64,
    hi: f64,
    steps: usize,
    tol: f64,
) -> bool {
    assert!(steps >= 3, "need at least 3 grid points");
    assert!(lo < hi, "need a non-degenerate interval");
    let h = (hi - lo) / (steps as f64 - 1.0);
    for i in 1..steps - 1 {
        let x = lo + h * i as f64;
        let (a, b, c) = (f(x - h), f(x), f(x + h));
        if !(a.is_finite() && b.is_finite() && c.is_finite()) {
            continue;
        }
        if a - 2.0 * b + c < -tol {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_difference_of_parabola_is_2h_squared() {
        let d = second_difference(|x| x * x, 3.0, 0.5);
        assert!((d - 2.0 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn second_difference_of_line_is_zero() {
        let d = second_difference(|x| 4.0 * x - 7.0, 1.0, 0.25);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn detects_convexity_of_exp() {
        assert!(is_convex_on_grid(f64::exp, -2.0, 2.0, 64, 1e-9));
    }

    #[test]
    fn rejects_concave_log() {
        assert!(!is_convex_on_grid(|x| x.ln(), 0.5, 10.0, 64, 1e-9));
    }

    #[test]
    fn linear_passes_with_tolerance() {
        assert!(is_convex_on_grid(|x| 3.0 * x, 0.0, 1.0, 16, 1e-9));
    }

    #[test]
    fn skips_infeasible_points() {
        // Convex where finite, NaN elsewhere — should still pass.
        let f = |x: f64| if x < 0.0 { f64::NAN } else { x * x };
        assert!(is_convex_on_grid(f, -1.0, 2.0, 32, 1e-9));
    }

    #[test]
    #[should_panic(expected = "grid points")]
    fn rejects_too_few_points() {
        let _ = is_convex_on_grid(|x| x, 0.0, 1.0, 2, 1e-9);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn rejects_degenerate_interval() {
        let _ = is_convex_on_grid(|x| x, 1.0, 1.0, 8, 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Any convex quadratic passes; any strictly concave quadratic fails.
        #[test]
        fn quadratic_classification(a in 0.01f64..5.0, b in -3.0f64..3.0, c in -3.0f64..3.0) {
            let convex = move |x: f64| a * x * x + b * x + c;
            let concave = move |x: f64| -a * x * x + b * x + c;
            prop_assert!(is_convex_on_grid(convex, -10.0, 10.0, 40, 1e-9));
            prop_assert!(!is_convex_on_grid(concave, -10.0, 10.0, 40, 1e-9));
        }
    }
}
