//! Explicit SIMD lane layer: fixed-width accumulator blocks with a pinned
//! pairwise fold order.
//!
//! The striped reductions in [`reduce`](crate::reduce) all share one
//! numeric contract: element `i` of a full block feeds lane `i % LANES`,
//! and the lanes are folded in the fixed pairwise tree
//! `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`. This module makes that
//! contract a *type*: [`F64x4`] and [`F64x8`] are hand-unrolled lane
//! blocks (no `std::simd`, no `unsafe` — named `f64` fields that LLVM
//! keeps in vector registers) whose `fold_pairwise` methods are the only
//! way lanes recombine. Every kernel built on them — `dot`, `dot2`,
//! `sum_squares`, the packed matmul micro-kernels — therefore inherits
//! the same combination order, which is what keeps the fast path
//! bit-identical across serial/threaded engines and golden-numerics
//! pins.
//!
//! Two codegen facts shape the API, both measured on the perf harness:
//!
//! * **Named fields, not arrays.** An indexed `[f64; 8]` accumulator
//!   round-trips through the stack; named locals stay in `ymm`
//!   registers (~1.7x on `dot`).
//! * **Reductions only.** For *element-wise* streams (AXPY-style
//!   updates) an explicit `load → op → store` over lane blocks defeats
//!   LLVM's store coalescing and runs ~3x *slower* than the plain
//!   iterator loop it auto-vectorizes. Element-wise kernels therefore
//!   route through the scalar lane op ([`axpy_shrink_step`]) applied in
//!   loop form; the lane *types* are reserved for accumulation, where
//!   they win.

/// Four-lane `f64` accumulator block (one AVX2 register).
///
/// Fold order: `(l0 + l1) + (l2 + l3)` — fixed, public contract.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct F64x4 {
    pub l0: f64,
    pub l1: f64,
    pub l2: f64,
    pub l3: f64,
}

/// Eight-lane `f64` accumulator block (two AVX2 registers), the width of
/// [`LANES`](super::LANES) used by the striped reductions.
///
/// Fold order: `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` — i.e. the fold
/// of the low [`F64x4`] half plus the fold of the high half. Fixed,
/// public contract.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct F64x8 {
    pub lo: F64x4,
    pub hi: F64x4,
}

impl F64x4 {
    /// All-zero accumulator.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Loads lanes from the first four elements of `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c.len() < 4`.
    #[inline(always)]
    pub fn load(c: &[f64]) -> Self {
        F64x4 {
            l0: c[0],
            l1: c[1],
            l2: c[2],
            l3: c[3],
        }
    }

    /// Lane-wise `self + a*b` over the first four elements of each slice
    /// (separate multiply and add — never contracted to FMA, so bits
    /// match the scalar arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if either slice is shorter than four elements.
    #[inline(always)]
    pub fn add_prod(self, a: &[f64], b: &[f64]) -> Self {
        F64x4 {
            l0: self.l0 + a[0] * b[0],
            l1: self.l1 + a[1] * b[1],
            l2: self.l2 + a[2] * b[2],
            l3: self.l3 + a[3] * b[3],
        }
    }

    /// Lane-wise `self + a*a` over the first four elements.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() < 4`.
    #[inline(always)]
    pub fn add_sq(self, a: &[f64]) -> Self {
        F64x4 {
            l0: self.l0 + a[0] * a[0],
            l1: self.l1 + a[1] * a[1],
            l2: self.l2 + a[2] * a[2],
            l3: self.l3 + a[3] * a[3],
        }
    }

    /// Folds the four lanes in the fixed pairwise tree
    /// `(l0 + l1) + (l2 + l3)`.
    #[inline(always)]
    pub fn fold_pairwise(self) -> f64 {
        (self.l0 + self.l1) + (self.l2 + self.l3)
    }
}

impl F64x8 {
    /// All-zero accumulator.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Loads lanes from the first eight elements of `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c.len() < 8`.
    #[inline(always)]
    pub fn load(c: &[f64]) -> Self {
        F64x8 {
            lo: F64x4::load(&c[..4]),
            hi: F64x4::load(&c[4..8]),
        }
    }

    /// Lane-wise `self + a*b` over the first eight elements of each
    /// slice. Lane `i` accumulates `a[i] * b[i]`; no cross-lane
    /// arithmetic happens until [`fold_pairwise`](Self::fold_pairwise).
    ///
    /// # Panics
    ///
    /// Panics if either slice is shorter than eight elements.
    #[inline(always)]
    pub fn add_prod(self, a: &[f64], b: &[f64]) -> Self {
        F64x8 {
            lo: self.lo.add_prod(&a[..4], &b[..4]),
            hi: self.hi.add_prod(&a[4..8], &b[4..8]),
        }
    }

    /// Lane-wise `self + a*a` over the first eight elements.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() < 8`.
    #[inline(always)]
    pub fn add_sq(self, a: &[f64]) -> Self {
        F64x8 {
            lo: self.lo.add_sq(&a[..4]),
            hi: self.hi.add_sq(&a[4..8]),
        }
    }

    /// Folds the eight lanes in the fixed pairwise tree
    /// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` — exactly the historical
    /// `fold_lanes` order the golden numerics pin.
    #[inline(always)]
    pub fn fold_pairwise(self) -> f64 {
        self.lo.fold_pairwise() + self.hi.fold_pairwise()
    }
}

/// The scalar lane op behind [`fused_axpy_shrink`](super::fused_axpy_shrink):
/// `t = y + alpha*x; t - shrink*t`.
///
/// Element-wise kernels apply this in plain iterator loops rather than
/// through lane-block load/store (see the module docs for the measured
/// reason); keeping the arithmetic here makes the lane layer the single
/// owner of the update formula that the two-pass/fused bit-identity
/// tests pin.
#[inline(always)]
pub fn axpy_shrink_step(y: f64, x: f64, alpha: f64, shrink: f64) -> f64 {
    let t = y + alpha * x;
    t - shrink * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_order_is_the_pinned_tree() {
        // Values chosen so every alternative association changes the bits.
        let v = [1e16, 1.0, -1e16, 3.0, 1e-8, 7e7, -3.25, 0.125];
        let acc = F64x8::zero().add_prod(&v, &[1.0; 8]);
        let manual = ((v[0] + v[1]) + (v[2] + v[3])) + ((v[4] + v[5]) + (v[6] + v[7]));
        assert_eq!(acc.fold_pairwise().to_bits(), manual.to_bits());
    }

    #[test]
    fn f64x4_fold_is_low_half_of_f64x8() {
        let v = [0.1, 0.2, 0.4, 0.8];
        let four = F64x4::zero().add_sq(&v);
        let manual = (v[0] * v[0] + v[1] * v[1]) + (v[2] * v[2] + v[3] * v[3]);
        assert_eq!(four.fold_pairwise().to_bits(), manual.to_bits());
    }

    #[test]
    fn load_store_roundtrip_semantics() {
        let c = [1.0, -2.0, 3.0, -0.0, 5.0, 6.5, -7.0, 8.25];
        let v = F64x8::load(&c);
        assert_eq!(v.lo.l0.to_bits(), 1.0f64.to_bits());
        assert_eq!(v.lo.l3.to_bits(), (-0.0f64).to_bits());
        assert_eq!(v.hi.l3.to_bits(), 8.25f64.to_bits());
    }

    #[test]
    fn axpy_step_matches_two_pass_bitwise() {
        for &(y, x) in &[(1.0, 0.5), (-0.0, 0.0), (1e300, -1e300), (0.25, -1.5)] {
            let mut two = y;
            two += 0.01 * x;
            two -= 1e-4 * two;
            assert_eq!(axpy_shrink_step(y, x, 0.01, 1e-4).to_bits(), two.to_bits());
        }
    }
}
