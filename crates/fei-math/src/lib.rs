//! Dense linear-algebra, statistics, and 1-D optimization kernels used across
//! the EE-FEI workspace.
//!
//! The crate is intentionally self-contained (no external numeric
//! dependencies): the paper's workloads — multinomial logistic regression on
//! 784-dimensional inputs, least-squares calibration of energy coefficients,
//! and scalar convex searches inside the ACS optimizer — only need small,
//! predictable kernels, so we implement exactly those.
//!
//! # Example
//!
//! ```
//! use fei_math::matrix::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

#![forbid(unsafe_code)]

pub mod approx;
pub mod convex;
pub mod func;
pub mod linalg;
pub mod matrix;
pub mod optimize;
pub mod pack;
pub mod reduce;
pub mod stats;

pub use approx::{approx_eq, approx_eq_tol, approx_ne, approx_zero};
pub use convex::{is_convex_on_grid, second_difference};
pub use func::{argmax, log_sum_exp, sigmoid, softmax_in_place};
pub use linalg::{solve_linear_system, LeastSquares, LinalgError};
pub use matrix::{Matrix, MatrixError};
pub use optimize::{golden_section_min, minimize_over_integers, GoldenSectionResult};
pub use pack::MatScratch;
pub use stats::{
    linear_fit, mean, percentile, r_squared, rmse, std_dev, try_mean, try_percentile, try_std_dev,
    try_variance, variance, LinearFit,
};
