//! Summary statistics and simple regression helpers.
//!
//! Used by the power-trace analyzer (`fei-power`) to extract per-step mean
//! powers from sampled traces (Fig. 3), and by the calibration code to report
//! fit quality for the Table I timing model.

/// Arithmetic mean.
///
/// NaN inputs propagate into the result; use [`try_mean`] when the data may
/// contain non-finite values.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// NaN-guarded arithmetic mean: `None` when `xs` is empty or contains any
/// NaN, so callers never silently propagate poisoned values.
pub fn try_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (divides by `n`).
///
/// NaN inputs propagate into the result; use [`try_variance`] when the data
/// may contain non-finite values.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// NaN-guarded population variance: `None` when `xs` is empty or contains
/// any NaN.
pub fn try_variance(xs: &[f64]) -> Option<f64> {
    let m = try_mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation.
///
/// NaN inputs propagate into the result; use [`try_std_dev`] when the data
/// may contain non-finite values.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// NaN-guarded population standard deviation: `None` when `xs` is empty or
/// contains any NaN.
pub fn try_std_dev(xs: &[f64]) -> Option<f64> {
    try_variance(xs).map(f64::sqrt)
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// # Panics
///
/// Panics if `xs` is empty, contains NaN, or `p` is outside `[0, 100]`.
/// [`try_percentile`] reports the same conditions as `None` instead.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    assert!(
        !xs.iter().any(|x| x.is_nan()),
        "percentile requires orderable values"
    );
    try_percentile(xs, p).expect("invariant: preconditions asserted above")
}

/// NaN-guarded linear-interpolated percentile: `None` when `xs` is empty,
/// contains any NaN, or `p` is outside `[0, 100]`.
pub fn try_percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&p) || xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() as f64 - 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    Some(if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    })
}

/// Root-mean-square error between predictions and targets.
///
/// # Panics
///
/// Panics if the slices are empty or of different lengths.
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "rmse requires equal lengths");
    assert!(!predicted.is_empty(), "rmse of empty slices");
    let sum: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum();
    (sum / predicted.len() as f64).sqrt()
}

/// Coefficient of determination `R²` of predictions against targets.
///
/// Returns 1.0 when the targets are constant and perfectly predicted, and can
/// be negative when the fit is worse than predicting the mean.
///
/// # Panics
///
/// Panics if the slices are empty or of different lengths.
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "r_squared requires equal lengths"
    );
    assert!(!predicted.is_empty(), "r_squared of empty slices");
    let m = mean(actual);
    let ss_tot: f64 = actual.iter().map(|a| (a - m) * (a - m)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (a - p) * (a - p))
        .sum();
    // fei-lint: allow(float-eq, reason = "R² degenerate-variance sentinel: exactly-constant actuals are the defined special case")
    if ss_tot == 0.0 {
        // fei-lint: allow(float-eq, reason = "a perfect fit of constant data is exactly zero residual by construction")
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Result of a simple 1-D linear fit `y ≈ slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least-squares fit of a straight line through `(x, y)` pairs.
///
/// # Panics
///
/// Panics if fewer than two points are given, lengths differ, or all `x` are
/// identical (vertical line).
///
/// # Example
///
/// ```
/// use fei_math::stats::linear_fit;
///
/// let fit = linear_fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]);
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// ```
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "linear_fit requires equal lengths");
    assert!(xs.len() >= 2, "linear_fit needs at least two points");
    let mx = mean(xs);
    let my = mean(ys);
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    assert!(sxx > 0.0, "linear_fit needs at least two distinct x values");
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let predicted: Vec<f64> = xs.iter().map(|&x| slope * x + intercept).collect();
    LinearFit {
        slope,
        intercept,
        r_squared: r_squared(&predicted, ys),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 73.0), 42.0);
    }

    #[test]
    fn try_variants_match_panicking_versions_on_clean_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(try_mean(&xs), Some(mean(&xs)));
        assert_eq!(try_variance(&xs), Some(variance(&xs)));
        assert_eq!(try_std_dev(&xs), Some(std_dev(&xs)));
        assert_eq!(try_percentile(&xs, 50.0), Some(percentile(&xs, 50.0)));
    }

    #[test]
    fn try_variants_reject_empty_and_nan() {
        assert_eq!(try_mean(&[]), None);
        assert_eq!(try_variance(&[]), None);
        assert_eq!(try_std_dev(&[]), None);
        assert_eq!(try_percentile(&[], 50.0), None);
        let poisoned = [1.0, f64::NAN, 3.0];
        assert_eq!(try_mean(&poisoned), None);
        assert_eq!(try_variance(&poisoned), None);
        assert_eq!(try_std_dev(&poisoned), None);
        assert_eq!(try_percentile(&poisoned, 50.0), None);
        // Infinities are orderable and keep their usual float semantics.
        assert_eq!(try_percentile(&[f64::INFINITY, 0.0], 0.0), Some(0.0));
    }

    #[test]
    fn try_percentile_rejects_out_of_range_p() {
        assert_eq!(try_percentile(&[1.0], 101.0), None);
        assert_eq!(try_percentile(&[1.0], -0.5), None);
    }

    #[test]
    #[should_panic(expected = "orderable")]
    fn percentile_rejects_nan() {
        let _ = percentile(&[1.0, f64::NAN], 50.0);
    }

    #[test]
    #[should_panic(expected = "[0, 100]")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn rmse_zero_for_perfect_prediction() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(rmse(&[0.0, 0.0], &[3.0, 4.0]), (12.5f64).sqrt());
    }

    #[test]
    fn r_squared_perfect_and_mean_prediction() {
        let actual = [1.0, 2.0, 3.0];
        assert_eq!(r_squared(&actual, &actual), 1.0);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&mean_pred, &actual).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_exact_line() {
        let fit = linear_fit(&[0.0, 1.0, 2.0, 3.0], &[-1.0, 1.0, 3.0, 5.0]);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 19.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "distinct x")]
    fn linear_fit_rejects_vertical() {
        let _ = linear_fit(&[1.0, 1.0], &[0.0, 1.0]);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        #[test]
        fn variance_is_nonnegative(xs in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
            prop_assert!(variance(&xs) >= 0.0);
        }

        #[test]
        fn percentile_is_monotone(
            xs in proptest::collection::vec(-1e3f64..1e3, 2..64),
            p1 in 0.0f64..100.0,
            p2 in 0.0f64..100.0,
        ) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-9);
        }

        #[test]
        fn linear_fit_recovers_planted_line(
            slope in -10.0f64..10.0,
            intercept in -10.0f64..10.0,
        ) {
            let xs: Vec<f64> = (0..12).map(f64::from).collect();
            let ys: Vec<f64> = xs.iter().map(|&x| slope * x + intercept).collect();
            let fit = linear_fit(&xs, &ys);
            prop_assert!((fit.slope - slope).abs() < 1e-8);
            prop_assert!((fit.intercept - intercept).abs() < 1e-7);
        }
    }
}
