//! Linear solvers and least squares.
//!
//! `fei-core` calibrates the paper's energy coefficients (`c0`, `c1` from
//! Table I, and the convergence constants `A0`, `A1`, `A2` from loss traces)
//! with ordinary least squares via the normal equations; the systems involved
//! are tiny (2–3 unknowns), so partial-pivot Gaussian elimination is exact
//! enough and dependency-free.

use std::error::Error;
use std::fmt;

use crate::matrix::Matrix;

/// Errors produced by the linear-algebra solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The system matrix is singular (or numerically so) and cannot be solved.
    SingularMatrix,
    /// Input shapes are inconsistent with the requested operation.
    ShapeMismatch {
        /// Human-readable description of the violated expectation.
        expected: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::SingularMatrix => write!(f, "matrix is singular to working precision"),
            LinalgError::ShapeMismatch { expected } => {
                write!(f, "shape mismatch: expected {expected}")
            }
        }
    }
}

impl Error for LinalgError {}

/// Solves `a * x = b` for square `a` by Gaussian elimination with partial
/// pivoting.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when `a` is not square or `b` has
/// the wrong length, and [`LinalgError::SingularMatrix`] when a pivot is
/// (numerically) zero.
///
/// # Example
///
/// ```
/// use fei_math::matrix::Matrix;
/// use fei_math::linalg::solve_linear_system;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let x = solve_linear_system(&a, &[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_linear_system(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: format!("square matrix, got {}x{}", n, a.cols()),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: format!("rhs of length {n}, got {}", b.len()),
        });
    }

    // Augmented working copy.
    let mut m = a.clone();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot: pick the row with the largest magnitude in this column.
        let pivot_row = (col..n)
            // `total_cmp` is total even on NaN input, so a poisoned matrix
            // degrades to NaN output instead of panicking mid-elimination.
            .max_by(|&i, &j| m[(i, col)].abs().total_cmp(&m[(j, col)].abs()))
            .expect("invariant: col < n makes the pivot range non-empty");
        let pivot = m[(pivot_row, col)];
        if pivot.abs() < 1e-12 {
            return Err(LinalgError::SingularMatrix);
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot_row, j)];
                m[(pivot_row, j)] = tmp;
            }
            rhs.swap(col, pivot_row);
        }
        for row in (col + 1)..n {
            let factor = m[(row, col)] / m[(col, col)];
            // fei-lint: allow(float-eq, reason = "exact-zero fast path: skips rows that are already eliminated, any tolerance would skip real work")
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                let v = m[(col, j)];
                m[(row, j)] -= factor * v;
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for j in (row + 1)..n {
            acc -= m[(row, j)] * x[j];
        }
        x[row] = acc / m[(row, row)];
    }
    Ok(x)
}

/// Ordinary least squares: finds `beta` minimizing `||X beta - y||^2`.
///
/// Solved through the normal equations `XᵀX beta = Xᵀy`; appropriate for the
/// small, well-conditioned design matrices used in EE-FEI calibration.
///
/// # Example
///
/// ```
/// use fei_math::linalg::LeastSquares;
/// use fei_math::matrix::Matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Fit y = 2x + 1 exactly.
/// let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]]);
/// let fit = LeastSquares::fit(&x, &[1.0, 3.0, 5.0])?;
/// assert!((fit.coefficients()[0] - 2.0).abs() < 1e-10);
/// assert!((fit.coefficients()[1] - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LeastSquares {
    coefficients: Vec<f64>,
    residual_sum_sq: f64,
}

impl LeastSquares {
    /// Fits `beta` so that `design * beta ≈ targets`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `targets.len()` differs
    /// from the number of design rows or when there are fewer rows than
    /// unknowns, and [`LinalgError::SingularMatrix`] when the normal matrix is
    /// rank-deficient.
    pub fn fit(design: &Matrix, targets: &[f64]) -> Result<Self, LinalgError> {
        if targets.len() != design.rows() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} targets, got {}", design.rows(), targets.len()),
            });
        }
        if design.rows() < design.cols() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!(
                    "at least {} rows for {} unknowns, got {}",
                    design.cols(),
                    design.cols(),
                    design.rows()
                ),
            });
        }
        // XᵀX via the transposed-operand kernel: no materialized transpose,
        // bit-identical to `design.transpose().matmul(design)`.
        let xtx = design.matmul_tn(design);
        let xty = design.transpose().matvec(targets);
        let coefficients = solve_linear_system(&xtx, &xty)?;

        let predictions = design.matvec(&coefficients);
        let residual_sum_sq = predictions
            .iter()
            .zip(targets)
            .map(|(p, t)| (p - t) * (p - t))
            .sum();
        Ok(Self {
            coefficients,
            residual_sum_sq,
        })
    }

    /// Ridge (Tikhonov-regularized) least squares: minimizes
    /// `||X beta - y||² + lambda ||beta||²` via `(XᵀX + λI) beta = Xᵀy`.
    ///
    /// Regularization keeps near-collinear calibration designs solvable (a
    /// real risk when training runs share similar `(K, E)` mixes); `lambda
    /// = 0` reduces to [`LeastSquares::fit`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on inconsistent inputs or a
    /// negative `lambda`, and [`LinalgError::SingularMatrix`] when the
    /// regularized normal matrix is still singular (only possible with
    /// `lambda = 0`).
    pub fn fit_ridge(design: &Matrix, targets: &[f64], lambda: f64) -> Result<Self, LinalgError> {
        if !(lambda.is_finite() && lambda >= 0.0) {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("non-negative finite lambda, got {lambda}"),
            });
        }
        if targets.len() != design.rows() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} targets, got {}", design.rows(), targets.len()),
            });
        }
        let mut xtx = design.matmul_tn(design);
        for i in 0..xtx.rows() {
            xtx[(i, i)] += lambda;
        }
        let xty = design.transpose().matvec(targets);
        let coefficients = solve_linear_system(&xtx, &xty)?;
        let predictions = design.matvec(&coefficients);
        let residual_sum_sq = predictions
            .iter()
            .zip(targets)
            .map(|(p, t)| (p - t) * (p - t))
            .sum();
        Ok(Self {
            coefficients,
            residual_sum_sq,
        })
    }

    /// The fitted coefficient vector `beta`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Sum of squared residuals at the optimum.
    pub fn residual_sum_sq(&self) -> f64 {
        self.residual_sum_sq
    }

    /// Root-mean-square error over the `n` fitted points.
    pub fn rmse(&self, n: usize) -> f64 {
        assert!(n > 0, "rmse needs at least one point");
        (self.residual_sum_sq / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = Matrix::identity(3);
        let x = solve_linear_system(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_system_requiring_pivot() {
        // First pivot is zero; partial pivoting must swap rows.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve_linear_system(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(
            solve_linear_system(&a, &[1.0, 2.0]),
            Err(LinalgError::SingularMatrix)
        );
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            solve_linear_system(&a, &[0.0, 0.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_rhs_length() {
        let a = Matrix::identity(2);
        assert!(matches!(
            solve_linear_system(&a, &[0.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn least_squares_recovers_exact_line() {
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]);
        let fit = LeastSquares::fit(&x, &[1.0, 3.0, 5.0, 7.0]).unwrap();
        assert!((fit.coefficients()[0] - 2.0).abs() < 1e-10);
        assert!((fit.coefficients()[1] - 1.0).abs() < 1e-10);
        assert!(fit.residual_sum_sq() < 1e-18);
    }

    #[test]
    fn least_squares_on_noisy_data_minimizes_residual() {
        // y = 3x - 2 with symmetric perturbation: OLS must recover the line.
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]);
        let y = [-2.1, 1.1, 3.9, 7.1];
        let fit = LeastSquares::fit(&x, &y).unwrap();
        let beta = fit.coefficients();
        assert!((beta[0] - 3.0).abs() < 0.1, "slope {}", beta[0]);
        assert!((beta[1] + 2.0).abs() < 0.2, "intercept {}", beta[1]);
        assert!(fit.rmse(4) < 0.2);
    }

    #[test]
    fn ridge_with_zero_lambda_matches_ols() {
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]);
        let y = [1.0, 3.2, 4.9, 7.1];
        let ols = LeastSquares::fit(&x, &y).unwrap();
        let ridge = LeastSquares::fit_ridge(&x, &y, 0.0).unwrap();
        for (a, b) in ols.coefficients().iter().zip(ridge.coefficients()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]);
        let y = [1.0, 3.0, 5.0, 7.0];
        let small = LeastSquares::fit_ridge(&x, &y, 0.01).unwrap();
        let large = LeastSquares::fit_ridge(&x, &y, 100.0).unwrap();
        let norm = |f: &LeastSquares| f.coefficients().iter().map(|c| c * c).sum::<f64>();
        assert!(norm(&large) < norm(&small));
    }

    #[test]
    fn ridge_solves_collinear_designs() {
        // Two identical columns: OLS is singular, ridge is not.
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let y = [2.0, 4.0, 6.0];
        assert_eq!(LeastSquares::fit(&x, &y), Err(LinalgError::SingularMatrix));
        let ridge = LeastSquares::fit_ridge(&x, &y, 1e-6).unwrap();
        // Symmetry splits the slope evenly.
        assert!((ridge.coefficients()[0] - 1.0).abs() < 1e-3);
        assert!((ridge.coefficients()[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn ridge_rejects_negative_lambda() {
        let x = Matrix::identity(2);
        assert!(matches!(
            LeastSquares::fit_ridge(&x, &[1.0, 1.0], -1.0),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn least_squares_rejects_underdetermined() {
        let x = Matrix::zeros(1, 2);
        assert!(matches!(
            LeastSquares::fit(&x, &[1.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn errors_display_nonempty() {
        assert!(!LinalgError::SingularMatrix.to_string().is_empty());
        let e = LinalgError::ShapeMismatch {
            expected: "x".into(),
        };
        assert!(e.to_string().contains('x'));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Solving `A x = b` then multiplying back must reproduce `b`
        /// for well-conditioned diagonally dominant systems.
        #[test]
        fn solve_then_multiply_round_trips(
            diag in proptest::collection::vec(1.0f64..10.0, 3),
            off in proptest::collection::vec(-0.3f64..0.3, 9),
            b in proptest::collection::vec(-100.0f64..100.0, 3),
        ) {
            let mut a = Matrix::zeros(3, 3);
            for i in 0..3 {
                for j in 0..3 {
                    a[(i, j)] = if i == j { diag[i] + 1.0 } else { off[i * 3 + j] };
                }
            }
            let x = solve_linear_system(&a, &b).unwrap();
            let back = a.matvec(&x);
            for (orig, recon) in b.iter().zip(&back) {
                prop_assert!((orig - recon).abs() < 1e-6, "{} vs {}", orig, recon);
            }
        }

        /// OLS must recover planted coefficients exactly on noise-free data.
        #[test]
        fn least_squares_recovers_planted_coefficients(
            slope in -5.0f64..5.0,
            intercept in -5.0f64..5.0,
        ) {
            let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
            let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
            let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            let design = Matrix::from_rows(&row_refs);
            let y: Vec<f64> = xs.iter().map(|&x| slope * x + intercept).collect();
            let fit = LeastSquares::fit(&design, &y).unwrap();
            prop_assert!((fit.coefficients()[0] - slope).abs() < 1e-8);
            prop_assert!((fit.coefficients()[1] - intercept).abs() < 1e-8);
        }
    }
}
