//! One-dimensional minimization utilities.
//!
//! The ACS optimizer in `fei-core` alternates per-coordinate minimizations of
//! the biconvex objective Eq. (12). Closed forms exist (Eqs. 15 and 17) but we
//! also need numeric minimizers to *verify* them and to handle the integer
//! rounding at the end of the search.

/// Result of a golden-section search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoldenSectionResult {
    /// Abscissa of the (approximate) minimum.
    pub x: f64,
    /// Objective value at [`GoldenSectionResult::x`].
    pub value: f64,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
}

/// Golden-section search for the minimum of a unimodal `f` on `[lo, hi]`.
///
/// Terminates when the bracketing interval is shorter than `tol`.
///
/// # Panics
///
/// Panics if `lo > hi` or `tol <= 0`.
///
/// # Example
///
/// ```
/// use fei_math::optimize::golden_section_min;
///
/// let r = golden_section_min(|x| (x - 2.0).powi(2), 0.0, 10.0, 1e-9);
/// assert!((r.x - 2.0).abs() < 1e-6);
/// ```
pub fn golden_section_min<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
) -> GoldenSectionResult {
    assert!(lo <= hi, "invalid bracket: lo={lo} > hi={hi}");
    assert!(tol > 0.0, "tolerance must be positive");
    const INV_PHI: f64 = 0.618_033_988_749_894_8;

    let mut a = lo;
    let mut b = hi;
    let mut evaluations = 0;
    let mut x1 = b - INV_PHI * (b - a);
    let mut x2 = a + INV_PHI * (b - a);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    evaluations += 2;

    while (b - a) > tol {
        if f1 <= f2 {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - INV_PHI * (b - a);
            f1 = f(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + INV_PHI * (b - a);
            f2 = f(x2);
        }
        evaluations += 1;
        // Guard against non-finite objectives collapsing the bracket.
        if !(f1.is_finite() || f2.is_finite()) {
            break;
        }
    }

    let x = 0.5 * (a + b);
    let value = f(x);
    evaluations += 1;
    GoldenSectionResult {
        x,
        value,
        evaluations,
    }
}

/// Minimizes `f` over the integers in `[lo, hi]` by exhaustive evaluation.
///
/// Intended for the final integer-rounding step of the ACS search, where the
/// feasible range of `K` (at most `N = 20` edge servers) or of `E` is small.
/// Non-finite objective values are treated as infeasible and skipped.
///
/// Returns `(argmin, min)` or `None` if the range is empty or every value is
/// non-finite.
///
/// # Example
///
/// ```
/// use fei_math::optimize::minimize_over_integers;
///
/// let (x, v) = minimize_over_integers(|k| ((k as f64) - 3.4).powi(2), 1, 10).unwrap();
/// assert_eq!(x, 3);
/// assert!((v - 0.16).abs() < 1e-12);
/// ```
pub fn minimize_over_integers<F: FnMut(u64) -> f64>(
    mut f: F,
    lo: u64,
    hi: u64,
) -> Option<(u64, f64)> {
    let mut best: Option<(u64, f64)> = None;
    for k in lo..=hi {
        let v = f(k);
        if !v.is_finite() {
            continue;
        }
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((k, v)),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_finds_parabola_minimum() {
        let r = golden_section_min(|x| (x - 5.0).powi(2) + 1.0, -10.0, 20.0, 1e-10);
        assert!((r.x - 5.0).abs() < 1e-6);
        assert!((r.value - 1.0).abs() < 1e-10);
        assert!(r.evaluations > 2);
    }

    #[test]
    fn golden_section_respects_bracket_edges() {
        // Monotone decreasing on the bracket: minimum at the right edge.
        let r = golden_section_min(|x| -x, 0.0, 1.0, 1e-9);
        assert!((r.x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn golden_section_handles_degenerate_bracket() {
        let r = golden_section_min(|x| x * x, 3.0, 3.0, 1e-9);
        assert_eq!(r.x, 3.0);
        assert_eq!(r.value, 9.0);
    }

    #[test]
    #[should_panic(expected = "invalid bracket")]
    fn golden_section_rejects_reversed_bracket() {
        let _ = golden_section_min(|x| x, 1.0, 0.0, 1e-9);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn golden_section_rejects_bad_tol() {
        let _ = golden_section_min(|x| x, 0.0, 1.0, 0.0);
    }

    #[test]
    fn integer_minimizer_exhaustive() {
        let (x, _) = minimize_over_integers(|k| (k as f64 - 7.6).abs(), 0, 20).unwrap();
        assert_eq!(x, 8);
    }

    #[test]
    fn integer_minimizer_skips_non_finite() {
        let (x, v) =
            minimize_over_integers(|k| if k < 3 { f64::INFINITY } else { k as f64 }, 0, 5).unwrap();
        assert_eq!(x, 3);
        assert_eq!(v, 3.0);
    }

    #[test]
    fn integer_minimizer_empty_or_all_infeasible() {
        assert_eq!(minimize_over_integers(|_| f64::NAN, 0, 5), None);
        assert_eq!(minimize_over_integers(|k| k as f64, 5, 4), None);
    }

    #[test]
    fn integer_minimizer_prefers_first_on_ties() {
        let (x, _) = minimize_over_integers(|_| 1.0, 2, 9).unwrap();
        assert_eq!(x, 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Golden section must locate the vertex of any parabola bracketed by
        /// the search interval.
        #[test]
        fn golden_section_locates_parabola_vertex(
            center in -50.0f64..50.0,
            scale in 0.1f64..10.0,
        ) {
            let r = golden_section_min(|x| scale * (x - center).powi(2), -100.0, 100.0, 1e-9);
            prop_assert!((r.x - center).abs() < 1e-5, "found {} expected {}", r.x, center);
        }

        /// The integer minimizer agrees with a direct scan.
        #[test]
        fn integer_minimizer_agrees_with_scan(offset in 0.0f64..20.0) {
            let f = |k: u64| (k as f64 - offset).powi(2);
            let (x, v) = minimize_over_integers(f, 0, 20).unwrap();
            for k in 0..=20u64 {
                prop_assert!(v <= f(k) + 1e-12, "k={k} beats argmin {x}");
            }
        }
    }
}
