//! A minimal dense row-major matrix.
//!
//! This is the parameter container for the logistic-regression model in
//! `fei-ml` and the design-matrix type for least-squares calibration in
//! `fei-core`. Access is bounds-checked, but the hot kernels — [`Matrix::
//! matmul`], [`Matrix::matmul_tn`], [`dot`] — run cache-blocked and striped
//! (see [`crate::reduce`]); the blocked schedules are constructed to be
//! bit-identical to the naive reference loops, which the equivalence tests
//! pin down.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::pack::{self, AOrder, MatScratch};
use crate::reduce;

/// Typed shape error for the fallible matrix kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixError {
    /// Operand shapes are incompatible for the named operation.
    DimMismatch {
        /// The operation that failed (`"matmul"`, `"matmul_tn"`, …).
        op: &'static str,
        /// Left operand shape `(rows, cols)`.
        lhs: (usize, usize),
        /// Right operand shape `(rows, cols)`.
        rhs: (usize, usize),
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: incompatible shapes {}x{} and {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
        }
    }
}

impl std::error::Error for MatrixError {}

/// Dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use fei_math::matrix::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 6.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows * cols"
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty, any row is empty, or rows have unequal
    /// lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–matrix product `self * rhs` on the packed micro-kernel.
    ///
    /// Dispatches to the register-blocked packed kernel
    /// ([`crate::pack`]), which is bit-identical to the naive reference
    /// loop ([`Matrix::matmul_reference`]): packing reorders *where*
    /// operands live, never the ascending-`k` order in which each output
    /// element accumulates its contributions.
    ///
    /// Allocates a transient pack workspace; hot callers should hold a
    /// [`MatScratch`] and use [`Matrix::matmul_with`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`; [`Matrix::try_matmul`] reports
    /// the mismatch as a typed error instead.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.matmul_with(rhs, &mut MatScratch::new())
    }

    /// [`Matrix::matmul`] reusing a caller-held pack workspace: warm
    /// calls with same-or-smaller shapes allocate nothing beyond the
    /// output matrix.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_with(&self, rhs: &Matrix, scratch: &mut MatScratch) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions must agree: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        pack::packed_gemm(
            &self.data,
            AOrder::RowMajor,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
            scratch,
        );
        out
    }

    /// Matrix–matrix product with a typed dimension-mismatch error.
    ///
    /// # Errors
    ///
    /// [`MatrixError::DimMismatch`] when `self.cols() != rhs.rows()`.
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::DimMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        Ok(self.matmul_with(rhs, &mut MatScratch::new()))
    }

    /// Naive triple-loop product: the pre-fast-path reference kernel, kept
    /// for equivalence tests and the perf-regression harness.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_reference(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions must agree: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                // fei-lint: allow(float-eq, reason = "exact-zero sparsity fast path; the packed kernel mirrors this skip per (i,k) to stay bit-identical, and a tolerance would silently drop small contributions")
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed-operand product `selfᵀ * rhs`, without materializing the
    /// transpose.
    ///
    /// `self` is `m × n`, `rhs` is `m × p`, the result is `n × p`. Runs
    /// on the same packed micro-kernel as [`Matrix::matmul`] with the
    /// A-panel packed straight from `self`'s columns (no transpose is
    /// materialized), and is bit-identical to
    /// `self.transpose().matmul(rhs)` — each output element accumulates
    /// its `k` contributions in the same ascending order.
    ///
    /// Allocates a transient pack workspace; hot callers should hold a
    /// [`MatScratch`] and use [`Matrix::matmul_tn_with`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`; [`Matrix::try_matmul_tn`]
    /// reports the mismatch as a typed error instead.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        self.matmul_tn_with(rhs, &mut MatScratch::new())
    }

    /// [`Matrix::matmul_tn`] reusing a caller-held pack workspace: warm
    /// calls with same-or-smaller shapes allocate nothing beyond the
    /// output matrix.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn_with(&self, rhs: &Matrix, scratch: &mut MatScratch) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "transposed inner dimensions must agree: {}x{} (transposed) * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        pack::packed_gemm(
            &self.data,
            AOrder::Transposed,
            &rhs.data,
            &mut out.data,
            self.cols,
            self.rows,
            rhs.cols,
            scratch,
        );
        out
    }

    /// Transposed-operand product with a typed dimension-mismatch error.
    ///
    /// # Errors
    ///
    /// [`MatrixError::DimMismatch`] when `self.rows() != rhs.rows()`.
    pub fn try_matmul_tn(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.rows != rhs.rows {
            return Err(MatrixError::DimMismatch {
                op: "matmul_tn",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        Ok(self.matmul_tn_with(rhs, &mut MatScratch::new()))
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(
            v.len(),
            self.cols,
            "vector length must equal matrix columns"
        );
        (0..self.rows).map(|i| dot(self.row(i), v)).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// In-place `self += alpha * other` (AXPY over the whole buffer).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy requires equal shapes"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Fused `self += alpha * other` followed by multiplicative shrinkage
    /// `self -= shrink * self`, in one pass over the buffer.
    ///
    /// Bit-identical to calling [`Matrix::axpy`] then shrinking element-wise
    /// (see [`crate::reduce::fused_axpy_shrink`]), at half the memory
    /// traffic — the SGD "gradient step + weight decay" composite.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy_shrink(&mut self, alpha: f64, other: &Matrix, shrink: f64) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy_shrink requires equal shapes"
        );
        reduce::fused_axpy_shrink(&mut self.data, alpha, &other.data, shrink);
    }

    /// Sets every entry to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Squared Frobenius norm, `sum_ij self[i][j]^2`, via the deterministic
    /// striped reduction ([`crate::reduce::sum_squares`]).
    pub fn frobenius_norm_sq(&self) -> f64 {
        reduce::sum_squares(&self.data)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.frobenius_norm_sq().sqrt()
    }

    /// Element-wise maximum absolute difference with another matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "max_abs_diff requires equal shapes"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices — the deterministic striped
/// reduction from [`crate::reduce::dot`], re-exported here as the
/// workspace's canonical dot product.
///
/// # Panics
///
/// Panics if lengths differ.
pub use crate::reduce::dot;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_requested_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zeros_rejects_empty() {
        let _ = Matrix::zeros(0, 4);
    }

    #[test]
    fn from_vec_round_trips() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[5.0, 6.0]), vec![17.0, 39.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 4.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::from_rows(&[&[2.0, 3.0]]));
    }

    #[test]
    fn scale_and_fill_zero() {
        let mut a = Matrix::from_rows(&[&[2.0, -4.0]]);
        a.scale(-1.5);
        assert_eq!(a, Matrix::from_rows(&[&[-3.0, 6.0]]));
        a.fill_zero();
        assert_eq!(a, Matrix::zeros(1, 2));
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.frobenius_norm_sq(), 25.0);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn max_abs_diff_finds_largest_gap() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.5, -1.0]]);
        assert_eq!(a.max_abs_diff(&b), 3.0);
    }

    #[test]
    fn dot_known_value() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m[(1, 0)], 7.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m:?}").is_empty());
    }

    /// Deterministic pseudo-random fill so bit-identity tests are repeatable.
    fn lcg_fill(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let mut m = Matrix::zeros(rows, cols);
        for v in m.data.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Map the top bits to roughly [-1, 1].
            *v = ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
        }
        m
    }

    #[test]
    fn tiled_matmul_bit_identical_to_reference_beyond_tile() {
        // 70 and 130 both straddle TILE = 64, exercising full and partial
        // tiles; the blocked kernel must reproduce the naive kernel exactly.
        for (m, k, n, seed) in [(70, 130, 67, 1u64), (1, 200, 3, 2), (130, 1, 70, 3)] {
            let a = lcg_fill(m, k, seed);
            let b = lcg_fill(k, n, seed ^ 0xFF);
            let fast = a.matmul(&b);
            let slow = a.matmul_reference(&b);
            assert_eq!(fast.as_slice(), slow.as_slice(), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn tiled_matmul_preserves_zero_skip() {
        // Sparse lhs: exact zeros must short-circuit identically in both paths.
        let mut a = lcg_fill(80, 80, 9);
        for (i, v) in a.data.iter_mut().enumerate() {
            if i % 3 != 0 {
                *v = 0.0;
            }
        }
        let b = lcg_fill(80, 80, 10);
        assert_eq!(a.matmul(&b).as_slice(), a.matmul_reference(&b).as_slice());
    }

    #[test]
    fn matmul_with_reuses_scratch_without_steady_allocations() {
        let a = lcg_fill(70, 130, 31);
        let b = lcg_fill(130, 67, 32);
        let mut scratch = MatScratch::new();
        let cold = a.matmul_with(&b, &mut scratch);
        let _ = a.matmul_tn_with(&a, &mut scratch);
        let after_warmup = scratch.allocations();
        for _ in 0..3 {
            let warm = a.matmul_with(&b, &mut scratch);
            assert_eq!(warm.as_slice(), cold.as_slice());
            let tn = a.matmul_tn_with(&a, &mut scratch);
            assert_eq!(tn.as_slice(), a.transpose().matmul_reference(&a).as_slice());
        }
        assert_eq!(
            scratch.allocations(),
            after_warmup,
            "warm packed products must not grow the workspace"
        );
        assert_eq!(cold.as_slice(), a.matmul_reference(&b).as_slice());
    }

    #[test]
    fn matmul_tn_bit_identical_to_transpose_then_matmul() {
        for (m, k, n, seed) in [(70, 5, 67, 4u64), (3, 100, 3, 5), (1, 7, 129, 6)] {
            let a = lcg_fill(m, k, seed);
            let b = lcg_fill(m, n, seed ^ 0xAB);
            let fused = a.matmul_tn(&b);
            let explicit = a.transpose().matmul_reference(&b);
            assert_eq!(fused.as_slice(), explicit.as_slice(), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn try_matmul_reports_dim_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let err = a.try_matmul(&b).unwrap_err();
        assert_eq!(
            err,
            MatrixError::DimMismatch {
                op: "matmul",
                lhs: (2, 3),
                rhs: (2, 3),
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("matmul") && msg.contains("2x3"), "{msg}");
    }

    #[test]
    fn try_matmul_accepts_conformable() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.try_matmul(&b).unwrap(), b);
    }

    #[test]
    fn try_matmul_tn_reports_row_mismatch() {
        // selfᵀ · rhs needs equal row counts; 2x3 vs 3x3 must fail.
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 3);
        let err = a.try_matmul_tn(&b).unwrap_err();
        assert!(matches!(
            err,
            MatrixError::DimMismatch {
                op: "matmul_tn",
                ..
            }
        ));
        assert!(a.try_matmul_tn(&a).is_ok());
    }

    #[test]
    #[should_panic(expected = "transposed inner dimensions")]
    fn matmul_tn_panics_on_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 3);
        let _ = a.matmul_tn(&b);
    }

    #[test]
    fn axpy_shrink_bitwise_matches_two_pass() {
        let x = lcg_fill(3, 50, 11);
        let base = lcg_fill(3, 50, 12);
        let (alpha, shrink) = (-0.0125, 3.2e-4);

        let mut fused = base.clone();
        fused.axpy_shrink(alpha, &x, shrink);

        let mut two_pass = base.clone();
        two_pass.axpy(alpha, &x);
        for v in two_pass.data.iter_mut() {
            *v -= shrink * *v;
        }
        assert_eq!(fused.as_slice(), two_pass.as_slice());

        // shrink = 0 must degenerate to plain axpy, bit for bit.
        let mut no_shrink = base.clone();
        no_shrink.axpy_shrink(alpha, &x, 0.0);
        let mut plain = base.clone();
        plain.axpy(alpha, &x);
        assert_eq!(no_shrink.as_slice(), plain.as_slice());
    }

    #[test]
    #[should_panic(expected = "equal shapes")]
    fn axpy_shrink_rejects_shape_mismatch() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        a.axpy_shrink(1.0, &b, 0.0);
    }

    #[test]
    fn frobenius_norm_sq_matches_dot_with_self() {
        let m = lcg_fill(13, 17, 21);
        assert_eq!(m.frobenius_norm_sq(), dot(m.as_slice(), m.as_slice()));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::approx::approx_eq_tol;
    use proptest::prelude::*;

    /// Shapes that stress the tiling: degenerate 1×N / N×1, tile-aligned,
    /// and off-by-a-few-from-tile sizes. Under Miri the 128-sized shapes
    /// would take minutes per case in the interpreter, so the CI lane only
    /// exercises the small and tile-straddling shapes.
    #[cfg(not(miri))]
    fn dim() -> impl Strategy<Value = usize> {
        prop_oneof![
            Just(1usize),
            2usize..8,
            60usize..70,    // straddles TILE = 64
            Just(128usize)  // two full tiles
        ]
    }

    #[cfg(miri)]
    fn dim() -> impl Strategy<Value = usize> {
        prop_oneof![Just(1usize), 2usize..8]
    }

    proptest! {
        /// Tiled matmul is bit-identical to the naive reference on every
        /// shape (the blocked loop preserves per-element accumulation order).
        #[test]
        fn matmul_matches_reference_bitwise(
            m in dim(), k in dim(), n in dim(), seed in any::<u32>(),
        ) {
            let a = fill(m, k, u64::from(seed));
            let b = fill(k, n, u64::from(seed) ^ 0x5555);
            let fast = a.matmul(&b);
            let slow = a.matmul_reference(&b);
            prop_assert_eq!(fast.as_slice(), slow.as_slice());
        }

        /// matmul_tn agrees with materialize-transpose-then-multiply within
        /// tolerance on every shape (and in fact bitwise, asserted too).
        #[test]
        fn matmul_tn_matches_explicit_transpose(
            m in dim(), k in dim(), n in dim(), seed in any::<u32>(),
        ) {
            let a = fill(m, k, u64::from(seed) | 1);
            let b = fill(m, n, u64::from(seed) ^ 0xAAAA);
            let fused = a.matmul_tn(&b);
            let explicit = a.transpose().matmul_reference(&b);
            for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
                prop_assert!(approx_eq_tol(*x, *y, 1e-12, 1e-9));
            }
            prop_assert_eq!(fused.as_slice(), explicit.as_slice());
        }

        /// Fused axpy+shrink stays within tolerance of the mathematically
        /// equivalent two-pass update (and is bitwise equal by construction).
        #[test]
        fn axpy_shrink_matches_two_pass(
            n in 1usize..200,
            alpha in -2.0f64..2.0,
            shrink in 0.0f64..0.5,
            seed in any::<u32>(),
        ) {
            let x = fill(1, n, u64::from(seed) | 1);
            let base = fill(1, n, u64::from(seed) ^ 0x1234);
            let mut fused = base.clone();
            fused.axpy_shrink(alpha, &x, shrink);
            let mut two_pass = base.clone();
            two_pass.axpy(alpha, &x);
            two_pass.scale(1.0 - shrink);
            for (f, t) in fused.as_slice().iter().zip(two_pass.as_slice()) {
                // `t - shrink*t` vs `t*(1-shrink)` differ by at most one
                // rounding; compare with tolerance here (the bitwise contract
                // against the literal two-pass form is in the unit tests).
                prop_assert!(approx_eq_tol(*f, *t, 1e-12, 1e-9), "{} vs {}", f, t);
            }
        }
    }

    fn fill(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut m = Matrix::zeros(rows, cols);
        for v in m.data.iter_mut() {
            *v = next();
        }
        m
    }
}
