//! A minimal dense row-major matrix.
//!
//! This is the parameter container for the logistic-regression model in
//! `fei-ml` and the design-matrix type for least-squares calibration in
//! `fei-core`. It favours clarity and bounds-checked access over raw speed;
//! the model sizes in the paper (10 × 784 weights) never make these kernels a
//! bottleneck.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use fei_math::matrix::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 6.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows * cols"
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty, any row is empty, or rows have unequal
    /// lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions must agree: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                // fei-lint: allow(float-eq, reason = "exact-zero sparsity fast path; a tolerance would silently drop small contributions")
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(
            v.len(),
            self.cols,
            "vector length must equal matrix columns"
        );
        (0..self.rows).map(|i| dot(self.row(i), v)).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// In-place `self += alpha * other` (AXPY over the whole buffer).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy requires equal shapes"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Sets every entry to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Squared Frobenius norm, `sum_ij self[i][j]^2`.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.frobenius_norm_sq().sqrt()
    }

    /// Element-wise maximum absolute difference with another matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "max_abs_diff requires equal shapes"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_requested_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zeros_rejects_empty() {
        let _ = Matrix::zeros(0, 4);
    }

    #[test]
    fn from_vec_round_trips() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[5.0, 6.0]), vec![17.0, 39.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 4.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::from_rows(&[&[2.0, 3.0]]));
    }

    #[test]
    fn scale_and_fill_zero() {
        let mut a = Matrix::from_rows(&[&[2.0, -4.0]]);
        a.scale(-1.5);
        assert_eq!(a, Matrix::from_rows(&[&[-3.0, 6.0]]));
        a.fill_zero();
        assert_eq!(a, Matrix::zeros(1, 2));
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.frobenius_norm_sq(), 25.0);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn max_abs_diff_finds_largest_gap() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.5, -1.0]]);
        assert_eq!(a.max_abs_diff(&b), 3.0);
    }

    #[test]
    fn dot_known_value() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m[(1, 0)], 7.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m:?}").is_empty());
    }
}
