//! Deterministic fast reductions: striped dot products, compensated sums,
//! and fused update kernels.
//!
//! Every routine here is *shape-deterministic*: the order in which partial
//! results are combined depends only on the input length, never on thread
//! count, chunk scheduling, or data values. That property is what lets the
//! fast path replace the naive kernels while the golden-model suite pins the
//! numerics bit-for-bit, and what keeps the chunked-parallel gradient in
//! `fei-ml`/`fei-fl` bit-identical to its serial evaluation.
//!
//! Three reduction styles are used:
//!
//! * **striped** ([`dot`], [`sum_squares`]) — `LANES` independent
//!   accumulators walk the slice in lock-step and are folded in a fixed
//!   pairwise tree, with the tail appended serially. Breaking the serial
//!   floating-point dependency chain lets the compiler vectorize, and the
//!   multi-accumulator structure is a coarse pairwise summation, so accuracy
//!   improves over a naive left fold rather than degrading;
//! * **Kahan** ([`sum_kahan`]) — compensated serial summation for cold paths
//!   that want maximum accuracy at scalar speed;
//! * **pairwise** ([`sum_pairwise`], [`tree_reduce_len`]) — recursive
//!   halving with a fixed base-case size; also the combination schedule the
//!   chunked gradient kernels follow.

pub mod lanes;

use lanes::F64x8;

/// Number of independent accumulator lanes in the striped reductions.
///
/// Eight `f64` lanes fill two AVX2 registers (or four NEON registers) and
/// give the out-of-order core enough independent add chains to hide FMA
/// latency. The value is part of the numeric contract: changing it changes
/// the bits the fast path produces, so it is fixed and public. It equals
/// the width of [`lanes::F64x8`], the accumulator type the striped
/// kernels are built on.
pub const LANES: usize = 8;

/// Base-case length below which [`sum_pairwise`] sums serially.
const PAIRWISE_BASE: usize = 32;

/// Reference dot product: the naive serial left fold.
///
/// This is the pre-fast-path arithmetic, kept as the comparison baseline for
/// equivalence tests and the perf harness. Prefer [`dot`] everywhere else.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot_serial(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Deterministic striped dot product.
///
/// Multiplies element-wise into [`LANES`] independent accumulators
/// (element `i` goes to lane `i % LANES` within each full block), folds the
/// lanes in a fixed pairwise tree, then adds the tail elements serially.
/// The combination order depends only on `a.len()`, so the result is
/// reproducible across runs, machines with the same FP semantics, and
/// thread counts — while vectorizing roughly [`LANES`]× better than the
/// serial fold.
///
/// Empty slices dot to `0.0`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    // Built on the lane layer: `F64x8` holds eight named-field scalars
    // (an indexed `[f64; 8]` would round-trip through the stack) and its
    // `fold_pairwise` is the pinned combination tree.
    let mut acc8 = F64x8::zero();
    let mut chunks_a = a.chunks_exact(LANES);
    let mut chunks_b = b.chunks_exact(LANES);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        acc8 = acc8.add_prod(ca, cb);
    }
    let mut acc = acc8.fold_pairwise();
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        acc += x * y;
    }
    acc
}

/// Two striped dot products against a shared right-hand side in one pass:
/// `(dot(a0, b), dot(a1, b))`.
///
/// Each output follows exactly the [`dot`] schedule (its own
/// [`lanes::F64x8`] accumulator, same fold, same serial tail), so both
/// results are bit-identical to two separate [`dot`] calls — but `b` is
/// streamed through cache once instead of twice, which matters when many
/// rows are dotted against one activation vector (logits).
///
/// # Panics
///
/// Panics if any length differs.
pub fn dot2(a0: &[f64], a1: &[f64], b: &[f64]) -> (f64, f64) {
    assert_eq!(a0.len(), b.len(), "dot product requires equal lengths");
    assert_eq!(a1.len(), b.len(), "dot product requires equal lengths");
    let mut acc0 = F64x8::zero();
    let mut acc1 = F64x8::zero();
    let mut chunks_a0 = a0.chunks_exact(LANES);
    let mut chunks_a1 = a1.chunks_exact(LANES);
    let mut chunks_b = b.chunks_exact(LANES);
    for ((c0, c1), cb) in chunks_a0
        .by_ref()
        .zip(chunks_a1.by_ref())
        .zip(chunks_b.by_ref())
    {
        acc0 = acc0.add_prod(c0, cb);
        acc1 = acc1.add_prod(c1, cb);
    }
    let mut r0 = acc0.fold_pairwise();
    let mut r1 = acc1.fold_pairwise();
    let tail_b = chunks_b.remainder();
    for (x, y) in chunks_a0.remainder().iter().zip(tail_b) {
        r0 += x * y;
    }
    for (x, y) in chunks_a1.remainder().iter().zip(tail_b) {
        r1 += x * y;
    }
    (r0, r1)
}

/// Deterministic striped sum of squares, `sum_i x_i^2`.
///
/// Same lane structure and combination tree as [`dot`]; used by
/// `Matrix::frobenius_norm_sq` and anywhere a squared norm is hot.
pub fn sum_squares(xs: &[f64]) -> f64 {
    let mut acc8 = F64x8::zero();
    let mut chunks = xs.chunks_exact(LANES);
    for c in chunks.by_ref() {
        acc8 = acc8.add_sq(c);
    }
    let mut acc = acc8.fold_pairwise();
    for &x in chunks.remainder() {
        acc += x * x;
    }
    acc
}

/// Kahan (compensated) serial sum: every addition carries a running error
/// term, bounding the accumulated rounding error independently of length.
///
/// Deterministic (pure left-to-right walk) and maximally accurate, but the
/// compensation chain defeats vectorization — use on cold accuracy-critical
/// paths, [`sum_pairwise`] or the striped kernels when speed matters.
pub fn sum_kahan(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut c = 0.0;
    for &x in xs {
        let y = x - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Deterministic pairwise (cascade) sum: recursively halves the slice down
/// to a fixed base-case length, summing each base case serially and
/// combining the halves with single additions.
///
/// Error grows as `O(log n)` instead of the naive fold's `O(n)`, and the
/// combination tree is a pure function of `xs.len()`.
pub fn sum_pairwise(xs: &[f64]) -> f64 {
    if xs.len() <= PAIRWISE_BASE {
        let mut acc = 0.0;
        for &x in xs {
            acc += x;
        }
        return acc;
    }
    let mid = xs.len() / 2;
    sum_pairwise(&xs[..mid]) + sum_pairwise(&xs[mid..])
}

/// In-place fixed-tree reduction of `parts` equal-length vectors laid out
/// contiguously in `buf` (`buf.len() == parts * len`), accumulating
/// everything into the first segment.
///
/// The combination schedule is stride-doubling — `parts[i] += parts[i+gap]`
/// for `gap = 1, 2, 4, …` — a pairwise tree whose shape depends only on
/// `parts`. Chunked gradient kernels compute per-chunk partials (serially
/// or on worker threads) and then call this on one thread, which is what
/// makes the parallel option bit-identical to the serial one.
///
/// # Panics
///
/// Panics if `buf.len() != parts * len`, or `parts == 0` with a non-empty
/// buffer.
pub fn tree_reduce_into_first(buf: &mut [f64], parts: usize, len: usize) {
    assert_eq!(buf.len(), parts * len, "buffer must hold `parts` segments");
    let mut gap = 1;
    while gap < parts {
        let mut i = 0;
        while i + gap < parts {
            let (dst, src) = buf.split_at_mut((i + gap) * len);
            let dst = &mut dst[i * len..i * len + len];
            let src = &src[..len];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
            i += 2 * gap;
        }
        gap *= 2;
    }
}

/// The stride-doubling tree over `parts` scalars, in place over a slice.
/// Companion to [`tree_reduce_into_first`] for per-chunk scalar partials
/// (losses); identical combination schedule.
pub fn tree_reduce_scalars(parts: &mut [f64]) -> f64 {
    let n = parts.len();
    if n == 0 {
        return 0.0;
    }
    let mut gap = 1;
    while gap < n {
        let mut i = 0;
        while i + gap < n {
            parts[i] += parts[i + gap];
            i += 2 * gap;
        }
        gap *= 2;
    }
    parts[0]
}

/// Number of additions the pairwise tree performs for `parts` segments —
/// exposed so tests can pin the fixed shape.
pub fn tree_reduce_len(parts: usize) -> usize {
    parts.saturating_sub(1)
}

/// Fused AXPY + shrink: `y[i] = t - shrink * t` where `t = y[i] + alpha *
/// x[i]`, in one pass.
///
/// This is exactly the arithmetic of a gradient step followed by
/// multiplicative L2 shrinkage (`w -= step*g; w -= shrink*w`) — the two-pass
/// and fused forms are bit-identical, including at `shrink == 0.0`, where
/// `t - 0.0 * t` reproduces `t` for every finite `t` (IEEE-754 signed-zero
/// rules included). One pass instead of two halves the memory traffic on
/// the parameter buffer.
///
/// The per-element arithmetic is [`lanes::axpy_shrink_step`]; the loop
/// stays in iterator form because element-wise streams vectorize best
/// that way (explicit lane-block load/store measurably regresses — see
/// the [`lanes`] module docs).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn fused_axpy_shrink(y: &mut [f64], alpha: f64, x: &[f64], shrink: f64) {
    assert_eq!(y.len(), x.len(), "fused axpy requires equal lengths");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = lanes::axpy_shrink_step(*yi, xi, alpha, shrink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_eq_tol;

    #[test]
    fn dot_matches_serial_reference() {
        let a: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).cos()).collect();
        assert!(approx_eq_tol(dot(&a, &b), dot_serial(&a, &b), 1e-12, 1e-12));
    }

    #[test]
    fn dot_empty_and_short() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        // Below one lane block the striped kernel is the serial tail.
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), dot_serial(&a, &b));
    }

    #[test]
    fn dot_is_deterministic_across_calls() {
        let a: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let b: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let bits = dot(&a, &b).to_bits();
        for _ in 0..10 {
            assert_eq!(dot(&a, &b).to_bits(), bits);
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn dot_rejects_length_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn dot2_bit_identical_to_two_dots() {
        for n in [0usize, 1, 7, 8, 9, 100, 783, 784] {
            let a0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
            let a1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 0.5)).collect();
            let (r0, r1) = dot2(&a0, &a1, &b);
            assert_eq!(r0.to_bits(), dot(&a0, &b).to_bits(), "row 0 at n={n}");
            assert_eq!(r1.to_bits(), dot(&a1, &b).to_bits(), "row 1 at n={n}");
        }
    }

    #[test]
    fn sum_squares_matches_naive() {
        let xs: Vec<f64> = (0..77).map(|i| i as f64 * 0.1 - 3.0).collect();
        let naive: f64 = xs.iter().map(|x| x * x).sum();
        assert!(approx_eq_tol(sum_squares(&xs), naive, 1e-12, 1e-12));
        assert_eq!(sum_squares(&[]), 0.0);
    }

    #[test]
    fn kahan_beats_naive_on_ill_conditioned_input() {
        // 1.0 followed by many tiny values the naive fold drops entirely.
        let mut xs = vec![1.0];
        xs.extend(std::iter::repeat_n(1e-17, 10_000));
        let naive: f64 = xs.iter().sum();
        let kahan = sum_kahan(&xs);
        let exact = 1.0 + 1e-13;
        assert!((kahan - exact).abs() < (naive - exact).abs());
    }

    #[test]
    fn pairwise_matches_exact_on_integers() {
        let xs: Vec<f64> = (1..=1000).map(f64::from).collect();
        assert_eq!(sum_pairwise(&xs), 500_500.0);
        assert_eq!(sum_pairwise(&[]), 0.0);
        assert_eq!(sum_pairwise(&[4.5]), 4.5);
    }

    #[test]
    fn tree_reduce_sums_segments() {
        // 4 segments of length 3.
        let mut buf = vec![
            1.0, 2.0, 3.0, //
            10.0, 20.0, 30.0, //
            100.0, 200.0, 300.0, //
            1000.0, 2000.0, 3000.0,
        ];
        tree_reduce_into_first(&mut buf, 4, 3);
        assert_eq!(&buf[..3], &[1111.0, 2222.0, 3333.0]);
    }

    #[test]
    fn tree_reduce_shape_is_fixed() {
        // The schedule depends only on `parts`: reducing permuted segment
        // contents in two different orders is impossible by construction,
        // but the scalar variant lets us pin the tree directly.
        let mut a = [1.0, 2.0, 4.0, 8.0, 16.0];
        assert_eq!(tree_reduce_scalars(&mut a), 31.0);
        assert_eq!(tree_reduce_scalars(&mut []), 0.0);
        assert_eq!(tree_reduce_len(5), 4);
        assert_eq!(tree_reduce_len(0), 0);
    }

    #[test]
    fn fused_axpy_shrink_matches_two_pass() {
        let x = [0.5, -1.5, 2.0, 0.0];
        let shrink = 0.03;
        let alpha = -0.2;
        let mut fused = [1.0, -2.0, 0.25, -0.0];
        let mut two_pass = fused;
        fused_axpy_shrink(&mut fused, alpha, &x, shrink);
        for (y, &xi) in two_pass.iter_mut().zip(&x) {
            *y += alpha * xi;
            *y -= shrink * *y;
        }
        for (f, t) in fused.iter().zip(&two_pass) {
            assert_eq!(f.to_bits(), t.to_bits());
        }
    }

    #[test]
    fn fused_axpy_zero_shrink_is_plain_axpy_bitwise() {
        let x = [3.25, -0.75, 1e-300, -1e300];
        let mut fused = [1.0, -0.0, 0.0, 2.5];
        let mut plain = fused;
        fused_axpy_shrink(&mut fused, 0.125, &x, 0.0);
        for (y, &xi) in plain.iter_mut().zip(&x) {
            *y += 0.125 * xi;
        }
        for (f, p) in fused.iter().zip(&plain) {
            assert_eq!(f.to_bits(), p.to_bits());
        }
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;
    use crate::approx::approx_eq_tol;

    fn vec_pair(max_len: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
        // Draw a length plus two max-length vectors, then truncate both to the
        // drawn length (the vendored proptest has no flat-map combinator).
        (
            0..max_len + 1,
            proptest::collection::vec(-100.0f64..100.0, max_len),
            proptest::collection::vec(-100.0f64..100.0, max_len),
        )
            .prop_map(|(n, mut a, mut b)| {
                a.truncate(n);
                b.truncate(n);
                (a, b)
            })
    }

    proptest! {
        /// The striped dot agrees with the serial reference to tight
        /// relative tolerance over arbitrary lengths (empty, sub-lane,
        /// non-multiple-of-LANES included by construction).
        #[test]
        fn striped_dot_matches_serial((a, b) in vec_pair(300)) {
            let fast = dot(&a, &b);
            let slow = dot_serial(&a, &b);
            prop_assert!(approx_eq_tol(fast, slow, 1e-9, 1e-9), "{fast} vs {slow}");
        }

        /// The paired dot is bit-identical to two independent striped
        /// dots for arbitrary lengths (tails included).
        #[test]
        fn dot2_matches_dot_bitwise((a, b) in vec_pair(300)) {
            let (r0, r1) = dot2(&a, &b, &b);
            prop_assert_eq!(r0.to_bits(), dot(&a, &b).to_bits());
            prop_assert_eq!(r1.to_bits(), dot(&b, &b).to_bits());
        }

        /// Pairwise and Kahan sums agree with each other (both are
        /// high-accuracy) to tight tolerance.
        #[test]
        fn pairwise_matches_kahan(xs in proptest::collection::vec(-1e6f64..1e6, 0..400)) {
            prop_assert!(approx_eq_tol(sum_pairwise(&xs), sum_kahan(&xs), 1e-6, 1e-12));
        }

        /// Tree reduction equals per-element pairwise sums of the segments.
        #[test]
        fn tree_reduce_matches_columnwise_sum(
            parts in 1usize..9,
            len in 1usize..17,
        ) {
            let mut buf: Vec<f64> = (0..parts * len)
                .map(|i| ((i * 37) % 101) as f64 - 50.0)
                .collect();
            let expect: Vec<f64> = (0..len)
                .map(|j| (0..parts).map(|p| buf[p * len + j]).sum::<f64>())
                .collect();
            tree_reduce_into_first(&mut buf, parts, len);
            for (got, want) in buf[..len].iter().zip(&expect) {
                prop_assert!(approx_eq_tol(*got, *want, 1e-9, 1e-9));
            }
        }
    }
}
