//! `fei_coordinatord` — the FL coordinator as a real OS process.
//!
//! Binds a localhost TCP listener, serves the fei-proto coordinator state
//! machine over the CRC32 frame codec, and persists both the disk journal
//! (append+fsync before any phase-transition effect leaves the process)
//! and the frame trace that makes the run replayable. On restart against
//! the same `--journal`/`--trace` paths it recovers: trace-prefix replay
//! rebuilds the decision core, `Coordinator::recover` folds the journal's
//! surviving prefix, and every participant is told the new epoch.
//!
//! ```text
//! fei_coordinatord --listen 127.0.0.1:0 --port-file /tmp/fei.port \
//!     --journal /tmp/fei.journal --trace /tmp/fei.trace \
//!     --rounds 5 --k 3 --quorum 2
//! ```
//!
//! `--rounds 0` runs until a Shutdown control frame arrives (the
//! supervisor's graceful path). Exit code 0 means the run completed and
//! the stats file (if `--stats` was given) is in place; any error prints
//! to stderr and exits 1. See `fei_proto::node::DaemonConfig::from_args`
//! for the full flag list.

use std::process::ExitCode;

use fei_proto::node::{run_daemon, DaemonConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match DaemonConfig::from_args(&args) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("fei_coordinatord: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_daemon(config) {
        Ok(report) => {
            eprintln!(
                "fei_coordinatord: done — {} rounds closed ({} committed), \
                 {} cycles, shutdown={}",
                report.audit.round_log.len(),
                report
                    .audit
                    .round_log
                    .iter()
                    .filter(|v| v.committed)
                    .count(),
                report.cycles,
                report.shutdown,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fei_coordinatord: {e}");
            ExitCode::FAILURE
        }
    }
}
