//! # EE-FEI: Energy-efficient Federated Edge Intelligence
//!
//! A Rust reproduction of *"Towards Energy-efficient Federated Edge
//! Intelligence for IoT Networks"* (Wang et al., ICDCS 2021): joint
//! optimization of the number of participating edge servers `K`, local
//! training epochs `E`, and global rounds `T` to minimize the total energy
//! of a federated-learning IoT system — plus every substrate the paper's
//! evaluation depends on (FedAvg runtime, logistic-regression trainer,
//! synthetic MNIST, a simulated 20-Raspberry-Pi testbed with 1 kHz power
//! meters, and WiFi/NB-IoT network models).
//!
//! This facade crate re-exports the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | energy models, convergence bound, ACS optimizer, planner |
//! | [`fl`] | FedAvg (in-process and threaded) |
//! | [`ml`] | multinomial logistic regression + SGD |
//! | [`data`] | synthetic MNIST, federated partitioning, IoT streams |
//! | [`testbed`] | the simulated hardware prototype |
//! | [`power`] | power states, timelines, meter simulation |
//! | [`net`] | links, shared media, message codec, TCP frame transport |
//! | [`proto`] | coordinator protocol: state machines, liveness, chaos, disk journal, socket nodes, supervision |
//! | [`sim`] | discrete-event kernel, deterministic RNG |
//! | [`math`] | matrices, least squares, 1-D optimizers |
//!
//! # Quickstart
//!
//! ```
//! use ee_fei::core::{ConvergenceBound, EeFeiPlanner, RoundEnergyModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An energy model calibrated like the paper's prototype…
//! let energy = RoundEnergyModel::paper_default();
//! // …a convergence bound, an accuracy target, and a fleet of 20:
//! let bound = ConvergenceBound::new(1.0, 0.05, 1e-4)?;
//! let planner = EeFeiPlanner::new(energy, bound, 0.1, 20)?;
//! let plan = planner.plan()?;
//! println!(
//!     "run K={}, E={}, T={} to save {:.1}% energy",
//!     plan.solution.k, plan.solution.e, plan.solution.t,
//!     plan.savings_fraction * 100.0
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

/// The paper's contribution: energy models, bound, ACS, planner.
pub use fei_core as core;
/// Datasets, partitioning, IoT sample streams.
pub use fei_data as data;
/// FedAvg runtimes.
pub use fei_fl as fl;
/// Linear algebra and optimization kernels.
pub use fei_math as math;
/// Multinomial logistic regression and SGD.
pub use fei_ml as ml;
/// Network links, shared media, codec.
pub use fei_net as net;
/// Power states, timelines, meters.
pub use fei_power as power;
/// Coordinator/participant protocol state machines and chaos testing.
pub use fei_proto as proto;
/// Discrete-event simulation kernel.
pub use fei_sim as sim;
/// The simulated hardware prototype.
pub use fei_testbed as testbed;

/// Commonly used items, importable in one line.
pub mod prelude {
    pub use fei_core::{
        AcsOptimizer, ComputationModel, ConvergenceBound, DataCollectionModel, EeFeiPlan,
        EeFeiPlanner, EnergyLedger, EnergyObjective, EnergyUse, GridSearch, RoundEnergyModel,
        UploadModel,
    };
    pub use fei_data::{Dataset, IotStream, Partition, SyntheticMnist, SyntheticMnistConfig};
    pub use fei_fl::{
        aggregate, robust_aggregate, try_aggregate, Adversary, AdversarySpec, AggregateError,
        AggregationRule, AsyncConfig, AsyncFedAvg, AsyncHistory, AttackBehavior, DefenseConfig,
        Encoding, EngineCheckpoint, FaultInjector, FaultSpec, FedAvg, FedAvgConfig, FlError,
        RetryPolicy, RobustRule, RoundFaultStats, RoundOutcome, RoundRecord, ScreenPolicy,
        ScreenReason, ScreenReport, StopCondition, ThreadedFedAvg, ToleranceConfig,
        TrainingHistory, TransportStats, UpdateScreen, WireConfig,
    };
    pub use fei_ml::{
        accuracy, Evaluation, GradReduction, GradScratch, LocalTrainer, LogisticRegression, Mlp,
        Model, SgdConfig,
    };
    pub use fei_power::{PowerMeter, PowerProfile, PowerState, PowerTimeline};
    pub use fei_proto::{
        replay_trace, AbortReason, ChaosConfig, ChaosLink, Cluster, ClusterConfig, ClusterReport,
        ControlFrame, Coordinator, CoordinatorAddr, CoordinatorConfig, CoordinatorCrash,
        CoordinatorNode, CoordinatorNodeConfig, DiskJournal, Effect, LivenessTracker, Participant,
        ParticipantConfig, ParticipantNode, ParticipantNodeConfig, Phase, ProtoError, RoundJournal,
        Supervisor, PROTO_VERSION,
    };
    pub use fei_sim::{DetRng, SimDuration, SimTime};
    pub use fei_testbed::{
        ChaosCampaign, ChaosCampaignConfig, FaultCampaign, FlExperiment, FlExperimentConfig,
        PartitionStrategy, RaspberryPi, Testbed, TestbedConfig,
    };
}
