//! Integration: the asynchronous engine against the synchronous baseline on
//! shared data, plus its interaction with the wider stack.

use ee_fei::prelude::*;

fn federation() -> (Vec<Dataset>, Dataset) {
    let gen = SyntheticMnist::new(SyntheticMnistConfig {
        pixel_noise_std: 0.3,
        label_flip_prob: 0.02,
        ..Default::default()
    });
    let train = gen.generate(300, 0);
    let test = gen.generate(150, 1);
    let clients = Partition::iid(train.len(), 5, &mut DetRng::new(21)).apply(&train);
    (clients, test)
}

#[test]
fn async_and_sync_reach_comparable_accuracy() {
    let (clients, test) = federation();
    let sgd = SgdConfig::new(0.05, 1.0, None);

    let sync_config = FedAvgConfig {
        clients_per_round: 5,
        local_epochs: 4,
        sgd: sgd.clone(),
        ..Default::default()
    };
    let mut sync = FedAvg::new(sync_config, clients.clone(), test.clone());
    let sync_history = sync.run_until(StopCondition::rounds(30));
    let sync_acc = sync_history.accuracy_curve().last().unwrap().1;

    let async_config = AsyncConfig {
        local_epochs: 4,
        sgd,
        mixing_rate: 0.5,
        staleness_exponent: 0.5,
        job_seconds: vec![1.0; 5],
        eval_every: 1,
    };
    let mut asynchronous = AsyncFedAvg::new(async_config, clients, test);
    // 150 merges = the same 30 "waves" of 5 clients.
    let async_history = asynchronous.run(150, None);
    let async_acc = async_history
        .records()
        .last()
        .and_then(|r| r.test_eval)
        .expect("evaluated")
        .accuracy;

    assert!(sync_acc > 0.8, "sync accuracy {sync_acc}");
    assert!(
        async_acc > sync_acc - 0.1,
        "async ({async_acc}) should be comparable to sync ({sync_acc})"
    );
}

#[test]
fn async_works_with_an_mlp() {
    let (clients, test) = federation();
    let config = AsyncConfig {
        sgd: SgdConfig::new(0.1, 1.0, None),
        ..AsyncConfig::uniform(5, 1.0, 4)
    };
    let template = Mlp::new(clients[0].dim(), 12, clients[0].num_classes(), 8);
    let mut run = AsyncFedAvg::with_model(config, clients, test, template);
    let history = run.run(120, None);
    let final_acc = history
        .records()
        .last()
        .and_then(|r| r.test_eval)
        .expect("evaluated")
        .accuracy;
    assert!(final_acc > 0.5, "MLP async accuracy {final_acc}");
}

#[test]
fn async_heterogeneous_fleet_keeps_wall_clock_bounded() {
    let (clients, test) = federation();
    // One device 20x slower than the rest.
    let config = AsyncConfig {
        sgd: SgdConfig::new(0.05, 1.0, None),
        job_seconds: vec![1.0, 1.0, 1.0, 1.0, 20.0],
        ..AsyncConfig::uniform(5, 1.0, 4)
    };
    let mut run = AsyncFedAvg::new(config, clients, test);
    let history = run.run(100, None);
    // 100 merges come overwhelmingly from the 4 fast devices: 25 waves.
    let last = history.records().last().unwrap().at;
    assert!(
        last.as_secs_f64() < 30.0,
        "barrier-free run should not be hostage to the slow device: {last}"
    );
    let counts = history.updates_per_client(5);
    assert!(counts[4] <= 2, "slow device delivered {counts:?}");
}
