//! Cross-crate consistency checks between the substrates: the lossy-link
//! expectation vs the IoT stream constant, battery accounting against
//! testbed energies, and Proposition 2 on a real training run.

use ee_fei::data::stream::NB_IOT_JOULES_PER_BYTE;
use ee_fei::net::Link;
use ee_fei::net::LossyLink;
use ee_fei::power::BatteryFleet;
use ee_fei::prelude::*;

#[test]
fn lossless_nb_iot_link_matches_stream_constant() {
    // Two independent paths to the same Eq. 4 quantity: the IoT stream's
    // per-sample energy and the NB-IoT link's transfer energy.
    let stream = IotStream::with_defaults(1);
    let via_stream = stream.rho_joules(NB_IOT_JOULES_PER_BYTE);
    let via_link = Link::nb_iot().transfer_energy_joules(stream.bytes_per_sample());
    assert!(
        (via_stream - via_link).abs() < 1e-12,
        "stream {via_stream} vs link {via_link}"
    );
}

#[test]
fn collision_loss_inflates_expected_energy_by_inverse_p() {
    // §IV-A: fixed success probability keeps expected per-sample energy a
    // constant — exactly rho / p.
    let stream = IotStream::with_defaults(1);
    let clean = stream.rho_joules(NB_IOT_JOULES_PER_BYTE);
    for p in [1.0, 0.5, 0.25] {
        let lossy = LossyLink::new(Link::nb_iot(), p);
        let expected = lossy.expected_transfer_energy_joules(stream.bytes_per_sample());
        assert!(
            (expected - clean / p).abs() < 1e-9,
            "p={p}: {expected} vs {}",
            clean / p
        );
    }
}

#[test]
fn battery_ledger_tracks_testbed_consumption() {
    // Charging each round's testbed energy to a battery fleet reproduces
    // the experiment's total.
    let testbed = Testbed::paper_prototype();
    let (k, e) = (4, 10);
    let rounds = 6;
    let total = testbed.run(k, e, rounds).total_joules();

    let mut fleet = BatteryFleet::uniform(20, 1e6);
    let per_round = testbed.run(k, e, 1).total_joules();
    for round in 0..rounds {
        for device in 0..k {
            // Any k devices; homogeneous fleet.
            fleet.consume((round + device) % 20, per_round / k as f64);
        }
    }
    // Jitter differs between the single-round and multi-round runs; totals
    // agree within the jitter budget.
    let rel = (fleet.total_consumed() - total).abs() / total;
    assert!(
        rel < 0.05,
        "ledger {} vs run {total}",
        fleet.total_consumed()
    );
}

#[test]
fn proposition2_holds_on_a_real_training_run() {
    // On a (noisy but essentially monotone) run, the running average of the
    // loss dominates the final loss — the inequality Proposition 2 needs.
    let exp = FlExperiment::prepare(FlExperimentConfig {
        num_devices: 4,
        scale: 0.005,
        test_scale: 0.02,
        sgd: SgdConfig::new(0.05, 0.999, None),
        ..FlExperimentConfig::paper_like()
    });
    let history = exp.run_rounds(4, 5, 40);
    let mean = history.mean_loss().expect("evaluated rounds");
    let last = history.final_loss().expect("evaluated rounds");
    assert!(mean >= last, "Prop. 2 violated: mean {mean} < final {last}");
    // FedAvg on IID data with decaying lr is near-monotone; allow tiny
    // stochastic upticks.
    assert!(history.is_loss_monotone(0.05));
}

#[test]
fn speed_factors_and_batteries_compose() {
    // A slow device both stretches wall clock and (through longer training
    // airtime) drains more energy per round — visible in a ledger fed by
    // per-device timelines.
    let mut speeds = vec![1.0; 20];
    speeds[7] = 0.5;
    let testbed = Testbed::paper_prototype().with_speed_factors(speeds);
    let (run, straggle) = testbed.run_synchronous(20, 20, 2);
    assert!(straggle > 0.0);
    assert!(run.total_joules() > 0.0);
    let uniform = Testbed::paper_prototype();
    let (u_run, _) = uniform.run_synchronous(20, 20, 2);
    assert!(run.total_joules() > u_run.total_joules());
}
