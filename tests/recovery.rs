//! Coordinator crash-recovery, end to end through the facade: the round
//! journal replays idempotently under arbitrary record sequences and torn
//! tails (property-based), a cluster survives a coordinator kill at every
//! tick of a round's life — covering all six coordinator phases — without
//! losing liveness, safety, or recovery guarantees, and a training-engine
//! checkpoint taken from one FedAvg runtime resumes the other runtime
//! bit-identically.

use ee_fei::prelude::*;
use ee_fei::proto::{JournalRecord, JournalState, RoundJournal};
use proptest::prelude::*;

// --- journal replay idempotence -----------------------------------------

fn arb_reason() -> impl Strategy<Value = AbortReason> {
    prop_oneof![
        Just(AbortReason::QuorumMiss),
        Just(AbortReason::FleetCollapse),
        Just(AbortReason::Cancelled),
        Just(AbortReason::CoordinatorCrash),
    ]
}

fn arb_record() -> impl Strategy<Value = JournalRecord> {
    let tick = 0u64..1_000;
    prop_oneof![
        (0u64..4, tick.clone())
            .prop_map(|(epoch, tick)| JournalRecord::EpochStarted { epoch, tick }),
        (0u64..8, tick.clone())
            .prop_map(|(client, tick)| JournalRecord::ClientJoined { client, tick }),
        (0u64..8, tick.clone())
            .prop_map(|(client, tick)| JournalRecord::ClientExpired { client, tick }),
        (
            0u64..6,
            0u64..2_000,
            tick.clone(),
            proptest::collection::vec(0u64..8, 0..5)
        )
            .prop_map(|(round, deadline_tick, tick, selected)| {
                JournalRecord::RoundOpened {
                    round,
                    deadline_tick,
                    tick,
                    selected,
                }
            }),
        (
            0u64..6,
            0u64..8,
            1u32..64,
            tick.clone(),
            proptest::collection::vec(any::<u8>(), 0..24)
        )
            .prop_map(|(round, client, samples, tick, update)| {
                JournalRecord::UpdateAccepted {
                    round,
                    client,
                    samples,
                    tick,
                    update,
                }
            }),
        (
            0u64..6,
            tick.clone(),
            proptest::collection::vec(0u64..8, 0..5)
        )
            .prop_map(|(round, tick, accepted)| JournalRecord::RoundCommitted {
                round,
                tick,
                accepted,
            }),
        (0u64..6, arb_reason(), tick).prop_map(|(round, reason, tick)| {
            JournalRecord::RoundAborted {
                round,
                reason,
                tick,
            }
        }),
    ]
}

fn journal_of(records: &[JournalRecord]) -> RoundJournal {
    let mut journal = RoundJournal::new();
    for record in records {
        journal.append(record);
    }
    journal
}

proptest! {
    /// Any record sequence replays back exactly, in order, with no torn
    /// tail — the log's append/decode pair is lossless.
    #[test]
    fn journal_replay_is_lossless(records in proptest::collection::vec(arb_record(), 0..40)) {
        let journal = journal_of(&records);
        let replay = journal.replay().expect("clean log replays");
        prop_assert_eq!(replay.records, records);
        prop_assert_eq!(replay.torn_bytes, 0usize);
    }

    /// Folding a log in which every record was delivered twice (an
    /// at-least-once log device) recovers the same coordinator state as
    /// the original — replay is idempotent per record.
    #[test]
    fn journal_fold_is_idempotent(records in proptest::collection::vec(arb_record(), 0..40)) {
        let mut duplicated = Vec::with_capacity(records.len() * 2);
        for record in &records {
            duplicated.push(record.clone());
            duplicated.push(record.clone());
        }
        prop_assert_eq!(
            JournalState::from_records(&records),
            JournalState::from_records(&duplicated)
        );
    }

    /// Cutting the log at any byte — a crash mid-append — leaves a replayable
    /// prefix: every record fully written before the cut survives, and the
    /// partial trailing frame is reported as torn, never as corruption.
    #[test]
    fn truncated_journal_replays_a_prefix(
        records in proptest::collection::vec(arb_record(), 1..30),
        cut_seed in any::<u64>(),
    ) {
        let journal = journal_of(&records);
        let bytes = journal.bytes();
        let cut = (cut_seed as usize) % (bytes.len() + 1);
        let torn = RoundJournal::from_bytes(bytes[..cut].to_vec());
        let replay = torn.replay().expect("torn tail is not corruption");
        let n = replay.records.len();
        prop_assert!(n <= records.len());
        prop_assert_eq!(replay.records.as_slice(), &records[..n]);
        // The recovered state of the prefix matches folding those records
        // directly — truncation never invents or reorders state.
        prop_assert_eq!(
            JournalState::from_records(&replay.records),
            JournalState::from_records(&records[..n])
        );
    }
}

// --- crash-at-every-state cluster sweep ---------------------------------

/// A quiet 4-participant cluster whose staggered training times hold
/// rounds open across many ticks, so a crash sweep over `0..=24` passes
/// through every coordinator phase — Idle, Rendezvous, Selected, Training,
/// Aggregating, and RoundClosed — at least once.
fn staggered_config(crashes: Vec<CoordinatorCrash>) -> ClusterConfig {
    ClusterConfig {
        coordinator: CoordinatorConfig {
            k: 2,
            over_select: 1,
            quorum: 2,
            epochs: 5,
            heartbeat_interval: 5,
            heartbeat_timeout: 20,
            round_deadline: 40,
        },
        participants: (0..4)
            .map(|c| ParticipantConfig::new(c, 2 + 4 * c))
            .collect(),
        uplink: ChaosConfig::quiet(1),
        downlink: ChaosConfig::quiet(2),
        target_rounds: 5,
        max_ticks: 10_000,
        global_payload: vec![0xAB; 32],
        crashes,
    }
}

#[test]
fn crash_at_every_tick_of_a_rounds_life_stays_live_and_safe() {
    for at_tick in 0..=24 {
        let crash = CoordinatorCrash {
            at_tick,
            down_ticks: 3,
        };
        let report = Cluster::new(staggered_config(vec![crash])).run();
        assert_eq!(
            report.coordinator_crashes, 1,
            "crash at {at_tick} never fired"
        );
        assert!(
            report.liveness_ok(),
            "crash at {at_tick}: stuck={} closed={} of 5",
            report.stuck,
            report.round_log.len()
        );
        assert!(
            report.safety_ok(),
            "crash at {at_tick}: {} expired-client aggregations",
            report.safety_violations
        );
        assert!(
            report.recovery_ok(),
            "crash at {at_tick}: {} recovery-budget violations, {} double aggregations",
            report.recovery_violations,
            report.double_aggregations
        );
        assert_eq!(report.committed + report.aborted, 5, "crash at {at_tick}");
    }
}

#[test]
fn crash_runs_replay_bit_identically_through_the_facade() {
    for at_tick in [0u64, 7, 13, 21] {
        let crash = CoordinatorCrash {
            at_tick,
            down_ticks: 4,
        };
        let a = Cluster::new(staggered_config(vec![crash])).run();
        let b = Cluster::new(staggered_config(vec![crash])).run();
        assert_eq!(a, b, "crash at {at_tick}: replay diverged");
    }
}

// --- engine checkpoint/restore across runtimes --------------------------

fn federation(seed: u64) -> (Vec<Dataset>, Dataset) {
    let gen = SyntheticMnist::new(SyntheticMnistConfig {
        pixel_noise_std: 0.3,
        ..Default::default()
    });
    let train = gen.generate(240, 0);
    let test = gen.generate(80, 1);
    let clients = Partition::iid(train.len(), 6, &mut DetRng::new(seed)).apply(&train);
    (clients, test)
}

fn resume_config() -> FedAvgConfig {
    FedAvgConfig {
        clients_per_round: 3,
        local_epochs: 2,
        dropout_prob: 0.2,
        sgd: SgdConfig::new(0.05, 0.99, None),
        ..Default::default()
    }
}

#[test]
fn serial_checkpoint_resumes_the_threaded_engine_bit_identically() {
    let (clients, test) = federation(41);
    let config = resume_config();
    let mut reference = FedAvg::new(config.clone(), clients.clone(), test.clone());
    let mut crashed = FedAvg::new(config.clone(), clients.clone(), test.clone());
    for _ in 0..3 {
        reference.run_round();
        crashed.run_round();
    }
    // The driver loses the serial engine in a crash, keeps its checkpoint,
    // and restarts on the thread-per-server runtime instead.
    let checkpoint = crashed.checkpoint();
    assert_eq!(checkpoint.round(), 3);
    let mut resumed = ThreadedFedAvg::new(config, clients, test);
    resumed.restore(checkpoint);
    for round in 3..6 {
        assert_eq!(
            reference.run_round(),
            resumed.run_round(),
            "round {round} diverged after the serial -> threaded resume"
        );
    }
    assert_eq!(reference.global_model(), resumed.global_model());
}

#[test]
fn threaded_checkpoint_resumes_the_serial_engine_bit_identically() {
    let (clients, test) = federation(43);
    let config = resume_config();
    let mut reference = ThreadedFedAvg::new(config.clone(), clients.clone(), test.clone());
    let mut crashed = ThreadedFedAvg::new(config.clone(), clients.clone(), test.clone());
    for _ in 0..3 {
        reference.run_round();
        crashed.run_round();
    }
    let checkpoint = crashed.checkpoint();
    assert_eq!(checkpoint.round(), 3);
    let mut resumed = FedAvg::new(config, clients, test);
    resumed.restore(checkpoint);
    for round in 3..6 {
        assert_eq!(
            reference.run_round(),
            resumed.run_round(),
            "round {round} diverged after the threaded -> serial resume"
        );
    }
    assert_eq!(reference.global_model(), resumed.global_model());
}
