//! Miniature versions of the paper's qualitative findings — the properties
//! the full benches reproduce at scale, pinned here so regressions surface
//! in `cargo test`.

use ee_fei::prelude::*;

fn experiment() -> FlExperiment {
    FlExperiment::prepare(FlExperimentConfig {
        num_devices: 6,
        scale: 0.008,
        test_scale: 0.05,
        data: SyntheticMnistConfig {
            pixel_noise_std: 0.4,
            label_flip_prob: 0.05,
            ..Default::default()
        },
        sgd: SgdConfig::new(0.02, 0.999, None),
        eval_every: 1,
        partition: PartitionStrategy::Iid,
        seed: 3,
        transport: WireConfig::default(),
    })
}

const TARGET: f64 = 0.88;

#[test]
fn more_local_epochs_need_fewer_rounds() {
    // Fig. 4(c)/(d), left side of the optimum: E up, T down.
    let exp = experiment();
    let (_, t1) = exp.run_to_accuracy(6, 1, TARGET, 300);
    let (_, t8) = exp.run_to_accuracy(6, 8, TARGET, 300);
    let (t1, t8) = (t1.expect("E=1 converges"), t8.expect("E=8 converges"));
    assert!(t8 < t1, "E=8 took {t8} rounds, E=1 took {t1}");
}

#[test]
fn more_clients_never_need_more_rounds() {
    // Fig. 4(a)/(b): K accelerates convergence (here: never hurts).
    let exp = experiment();
    let (_, t_small) = exp.run_to_accuracy(1, 8, TARGET, 300);
    let (_, t_large) = exp.run_to_accuracy(6, 8, TARGET, 300);
    let (t_small, t_large) = (
        t_small.expect("K=1 converges"),
        t_large.expect("K=6 converges"),
    );
    assert!(
        t_large <= t_small,
        "K=6 took {t_large} rounds, K=1 took {t_small}"
    );
}

#[test]
fn energy_versus_e_has_an_interior_optimum() {
    // Fig. 6: energy falls from E=1 then rises again — an optimal E exists.
    let exp = experiment();
    let testbed = Testbed::new(
        TestbedConfig {
            num_devices: 6,
            samples_per_device: 80,
            ..Default::default()
        },
        RaspberryPi::paper_calibrated(),
    );
    let energy_at = |e: usize, cap: usize| -> f64 {
        let (_, t) = exp.run_to_accuracy(1, e, TARGET, cap);
        let t = t.unwrap_or_else(|| panic!("E={e} never reached {TARGET}"));
        testbed.run(1, e, t).total_joules()
    };
    let e1 = energy_at(1, 400);
    let e_mid = energy_at(8, 200);
    let e_big = energy_at(600, 40);
    assert!(e_mid < e1, "E=8 ({e_mid} J) should beat E=1 ({e1} J)");
    assert!(
        e_mid < e_big,
        "E=8 ({e_mid} J) should beat E=600 ({e_big} J)"
    );
}

#[test]
fn k_star_is_one_under_iid_data() {
    // Fig. 5's conclusion: with IID shards, one uploader is energy-optimal.
    let exp = experiment();
    let testbed = Testbed::new(
        TestbedConfig {
            num_devices: 6,
            samples_per_device: 80,
            ..Default::default()
        },
        RaspberryPi::paper_calibrated(),
    );
    let energy_at = |k: usize| -> f64 {
        let (_, t) = exp.run_to_accuracy(k, 8, TARGET, 300);
        let t = t.unwrap_or_else(|| panic!("K={k} never reached {TARGET}"));
        testbed.run(k, 8, t).total_joules()
    };
    let e1 = energy_at(1);
    let e3 = energy_at(3);
    let e6 = energy_at(6);
    assert!(
        e1 <= e3 && e1 <= e6,
        "K=1 ({e1} J) vs K=3 ({e3} J), K=6 ({e6} J)"
    );
}

#[test]
fn table1_shape_holds_on_the_simulated_pi() {
    // Step-(3) duration grows linearly in E and near-linearly in n_k.
    let pi = RaspberryPi::paper_calibrated();
    let mut rng = DetRng::new(9);
    let rows = pi.measure_table1(&mut rng);
    // Within each E block, duration increases with n_k.
    for block in rows.chunks(4) {
        for pair in block.windows(2) {
            assert!(pair[1].seconds > pair[0].seconds);
        }
    }
    // Doubling E (10 -> 20) roughly doubles duration at fixed n_k.
    for i in 0..4 {
        let ratio = rows[i + 4].seconds / rows[i].seconds;
        assert!((1.7..2.3).contains(&ratio), "E-scaling ratio {ratio}");
    }
}
