//! Byzantine robustness: screening determinism, engine agreement under
//! attack, zero-budget equivalence with plain FedAvg, and robust rules
//! holding accuracy where the undefended mean loses it.

use ee_fei::prelude::*;

fn federation(seed: u64, n: usize) -> (Vec<Dataset>, Dataset) {
    let gen = SyntheticMnist::new(SyntheticMnistConfig {
        pixel_noise_std: 0.3,
        ..Default::default()
    });
    let train = gen.generate(400, 0);
    let test = gen.generate(120, 1);
    let clients = Partition::iid(train.len(), n, &mut DetRng::new(seed)).apply(&train);
    (clients, test)
}

fn defended_config(k: usize, rule: RobustRule) -> FedAvgConfig {
    FedAvgConfig {
        clients_per_round: k,
        local_epochs: 2,
        sgd: SgdConfig::new(0.1, 0.99, None),
        defense: Some(DefenseConfig::with_rule(rule)),
        ..Default::default()
    }
}

#[test]
fn adversarial_runs_are_bit_identical_per_seed() {
    let run = || {
        let (clients, test) = federation(17, 6);
        let config = defended_config(
            4,
            RobustRule::TrimmedMean {
                assumed_byzantine: 1,
            },
        );
        let mut engine =
            FedAvg::new(config, clients, test).with_adversary(AdversarySpec::sign_flip(0.34));
        let history = engine.run_until(StopCondition::rounds(6));
        (history, engine.global_model().clone())
    };
    let (ha, ma) = run();
    let (hb, mb) = run();
    assert_eq!(ha.records(), hb.records());
    assert_eq!(ma, mb);
}

#[test]
fn screening_reports_are_deterministic_and_order_invariant() {
    // The screen is a pure function of the update set: same inputs, same
    // verdicts; permuting the set permutes (but never changes) the verdicts.
    let updates: Vec<(Vec<f64>, usize)> = vec![
        (vec![0.1, 0.2, 0.3], 10),
        (vec![0.2, 0.1, 0.2], 10),
        (vec![40.0, -35.0, 60.0], 10), // norm outlier
        (vec![0.15, 0.25, 0.1], 10),
        (vec![f64::NAN, 0.0, 0.0], 10), // non-finite
    ];
    let screen = UpdateScreen::new(ScreenPolicy::default());
    let mut a = updates.clone();
    let report_a = screen.screen(&mut a, 3);
    let mut b = updates.clone();
    let report_b = screen.screen(&mut b, 3);
    assert_eq!(report_a, report_b);
    assert_eq!(a, b);
    assert_eq!(report_a.rejected_count(), 2);

    let mut reversed: Vec<(Vec<f64>, usize)> = updates.into_iter().rev().collect();
    let report_rev = screen.screen(&mut reversed, 3);
    assert_eq!(report_rev.rejected_count(), report_a.rejected_count());
    reversed.reverse();
    assert_eq!(a, reversed);
}

#[test]
fn engines_agree_under_attack_and_defense() {
    let (clients, test) = federation(23, 6);
    let config = defended_config(
        4,
        RobustRule::CoordinateMedian {
            assumed_byzantine: 2,
        },
    );
    let spec = AdversarySpec {
        fraction: 0.34,
        behavior: AttackBehavior::ScaledUpdate { boost: 30.0 },
        seed: 9,
    };
    let mut serial =
        FedAvg::new(config.clone(), clients.clone(), test.clone()).with_adversary(spec);
    let mut threaded = ThreadedFedAvg::new(config, clients, test).with_adversary(spec);
    for round in 0..5 {
        let a = serial.run_round();
        let b = threaded.run_round();
        assert_eq!(a.responded, b.responded, "round {round}");
        assert_eq!(a.faults, b.faults, "round {round}");
        assert_eq!(a.outcome, b.outcome, "round {round}");
        assert_eq!(a.test_eval, b.test_eval, "round {round}");
    }
    assert_eq!(serial.global_model(), threaded.global_model());
}

#[test]
fn zero_budget_robust_rules_reproduce_plain_fedavg() {
    // Acceptance: at attacker fraction 0, every robust rule is bit-identical
    // to the undefended uniform mean.
    let (clients, test) = federation(29, 5);
    let plain_config = FedAvgConfig {
        clients_per_round: 3,
        local_epochs: 2,
        sgd: SgdConfig::new(0.1, 0.99, None),
        ..Default::default()
    };
    let mut plain = FedAvg::new(plain_config.clone(), clients.clone(), test.clone());
    let plain_history = plain.run_until(StopCondition::rounds(5));

    for rule in [
        RobustRule::CoordinateMedian {
            assumed_byzantine: 0,
        },
        RobustRule::TrimmedMean {
            assumed_byzantine: 0,
        },
        RobustRule::Krum {
            assumed_byzantine: 0,
        },
        RobustRule::MultiKrum {
            assumed_byzantine: 0,
        },
    ] {
        let config = FedAvgConfig {
            defense: Some(DefenseConfig::with_rule(rule)),
            ..plain_config.clone()
        };
        let mut robust = FedAvg::new(config, clients.clone(), test.clone());
        let history = robust.run_until(StopCondition::rounds(5));
        assert_eq!(
            history.records(),
            plain_history.records(),
            "{}",
            rule.name()
        );
        assert_eq!(
            robust.global_model(),
            plain.global_model(),
            "{}",
            rule.name()
        );
    }
}

#[test]
fn robust_rules_hold_accuracy_where_mean_collapses() {
    // 20% reversed-and-boosted attackers cancel the honest mass in the
    // mean (0.8 − 0.2·4 = 0 net progress), while median, trimmed mean, and
    // multi-Krum keep converging. Structural-only screening isolates the
    // robustness of the combine rules themselves.
    let (clients, test) = federation(41, 10);
    let spec = AdversarySpec {
        fraction: 0.2,
        behavior: AttackBehavior::ScaledUpdate { boost: -4.0 },
        seed: 0xAD50,
    };
    let base = FedAvgConfig {
        clients_per_round: 10,
        local_epochs: 3,
        sgd: SgdConfig::new(0.3, 1.0, None),
        ..Default::default()
    };
    let rounds = 15;

    let mut undefended =
        FedAvg::new(base.clone(), clients.clone(), test.clone()).with_adversary(spec);
    let undefended_acc = undefended
        .run_until(StopCondition::rounds(rounds))
        .last()
        .unwrap()
        .test_eval
        .unwrap()
        .accuracy;

    for rule in [
        RobustRule::CoordinateMedian {
            assumed_byzantine: 2,
        },
        RobustRule::TrimmedMean {
            assumed_byzantine: 2,
        },
        RobustRule::MultiKrum {
            assumed_byzantine: 2,
        },
    ] {
        let config = FedAvgConfig {
            defense: Some(DefenseConfig {
                screen: ScreenPolicy::structural_only(),
                rule,
            }),
            ..base.clone()
        };
        let mut defended = FedAvg::new(config, clients.clone(), test.clone()).with_adversary(spec);
        let defended_acc = defended
            .run_until(StopCondition::rounds(rounds))
            .last()
            .unwrap()
            .test_eval
            .unwrap()
            .accuracy;
        assert!(
            defended_acc > undefended_acc + 0.05,
            "{}: defended {defended_acc} vs undefended {undefended_acc}",
            rule.name()
        );
    }
}

#[test]
fn sign_flip_slows_the_undefended_mean_more_than_the_median() {
    // Sign-flip at 20% scales the mean's net step by 0.6, so the undefended
    // run needs strictly more rounds to the target than the defended one.
    let (clients, test) = federation(47, 10);
    let spec = AdversarySpec::sign_flip(0.2);
    let base = FedAvgConfig {
        clients_per_round: 10,
        local_epochs: 2,
        sgd: SgdConfig::new(0.2, 1.0, None),
        ..Default::default()
    };
    let target = 0.9;
    let cap = 60;

    let rounds_to = |config: FedAvgConfig| {
        FedAvg::new(config, clients.clone(), test.clone())
            .with_adversary(spec)
            .run_until(StopCondition::accuracy(target, cap))
            .rounds_to_accuracy(target)
            .unwrap_or(cap + 1)
    };
    let undefended_t = rounds_to(base.clone());
    let defended_t = rounds_to(FedAvgConfig {
        defense: Some(DefenseConfig {
            screen: ScreenPolicy::structural_only(),
            rule: RobustRule::CoordinateMedian {
                assumed_byzantine: 2,
            },
        }),
        ..base
    });
    assert!(
        defended_t < undefended_t,
        "median needed {defended_t} rounds, mean {undefended_t}"
    );
}

#[test]
fn typed_aggregate_errors_replace_panics() {
    assert_eq!(
        try_aggregate(&[], AggregationRule::Uniform),
        Err(AggregateError::EmptyUpdateSet)
    );
    assert_eq!(
        try_aggregate(
            &[(vec![1.0, 2.0], 3), (vec![1.0], 3)],
            AggregationRule::Uniform
        ),
        Err(AggregateError::DimensionMismatch {
            expected: 2,
            got: 1,
            index: 1
        })
    );
    assert_eq!(
        try_aggregate(
            &[(vec![1.0], 0), (vec![2.0], 0)],
            AggregationRule::WeightedBySamples
        ),
        Err(AggregateError::ZeroTotalWeight)
    );
    // The robust path surfaces the same typed errors.
    assert_eq!(
        robust_aggregate(
            &[],
            RobustRule::CoordinateMedian {
                assumed_byzantine: 1
            }
        ),
        Err(AggregateError::EmptyUpdateSet)
    );
}
