//! Cross-crate energy accounting: the analytic Eq. 4/5 models, the testbed's
//! timeline integration, and the sampled meter traces must all agree.

use ee_fei::prelude::*;
use ee_fei::testbed::Testbed;

#[test]
fn testbed_training_energy_matches_analytic_model() {
    let testbed = Testbed::paper_prototype();
    let model = testbed.energy_model();
    let (k, e, t) = (4, 10, 6);
    let run = testbed.run(k, e, t);

    // Analytic step-(3) energy: K * T * (c0*E*n + c1*E).
    let analytic = k as f64 * t as f64 * model.compute().energy_joules(e, model.n_k());
    let measured = run.breakdown.training_j;
    let rel = (measured - analytic).abs() / analytic;
    assert!(
        rel < 0.05,
        "training energy off by {:.1}%: measured {measured}, analytic {analytic}",
        rel * 100.0
    );
}

#[test]
fn testbed_upload_energy_matches_shared_medium_model() {
    let testbed = Testbed::paper_prototype();
    let (k, e, t) = (5, 1, 4);
    let run = testbed.run(k, e, t);
    // Five concurrent uploads stretch each other's airtime 5x.
    let per_upload = testbed.upload_duration(k).as_secs_f64() * 5.015;
    let expected = per_upload * (k * t) as f64;
    assert!(
        (run.breakdown.upload_j - expected).abs() / expected < 1e-6,
        "upload {} vs expected {expected}",
        run.breakdown.upload_j
    );
}

#[test]
fn metered_trace_integrates_to_timeline_energy() {
    let testbed = Testbed::paper_prototype();
    let (timeline, trace) = testbed.fig3_trace(20, 2);
    let exact = timeline.energy_joules(testbed.pi().profile());
    let metered = trace.energy_joules();
    assert!(
        (metered - exact).abs() / exact < 0.03,
        "meter error too large: {metered} vs {exact}"
    );
}

#[test]
fn system_energy_formula_matches_summed_steps() {
    // ê(E, K, T) = T·K·(B0·E + B1) must equal the sum of per-step energies.
    let model = RoundEnergyModel::paper_default();
    for (e, k, t) in [(1usize, 1usize, 1usize), (10, 5, 3), (40, 20, 7)] {
        let direct = model.system_energy_joules(e, k, t);
        let summed = (k * t) as f64
            * (model.data().energy_joules(model.n_k())
                + model.compute().energy_joules(e, model.n_k())
                + model.upload().e_u());
        assert!(
            (direct - summed).abs() < 1e-9 * direct.max(1.0),
            "(E={e}, K={k}, T={t}): {direct} vs {summed}"
        );
    }
}

#[test]
fn energy_grows_in_every_knob() {
    let testbed = Testbed::paper_prototype();
    let base = testbed.run(2, 5, 3).total_joules();
    assert!(testbed.run(4, 5, 3).total_joules() > base);
    assert!(testbed.run(2, 10, 3).total_joules() > base);
    assert!(testbed.run(2, 5, 6).total_joules() > base);
}

#[test]
fn wall_clock_scales_with_training_time() {
    let testbed = Testbed::paper_prototype();
    let short = testbed.run(1, 1, 2);
    let long = testbed.run(1, 100, 2);
    assert!(long.wall_clock > short.wall_clock);
    // Mean power during heavy training approaches the training plateau.
    assert!(
        long.mean_power_watts() > 5.0,
        "mean power {}",
        long.mean_power_watts()
    );
    assert!(long.mean_power_watts() < 5.553 + 0.1);
}
