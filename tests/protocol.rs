//! Coordinator protocol under wire-level chaos: liveness (every opened
//! round commits or aborts), safety (no expired client's update is ever
//! aggregated), handshake version gating in both directions, and
//! bit-identical chaos replays.

use ee_fei::net::codec::encode_frame;
use ee_fei::prelude::*;
use ee_fei::proto::frames::{TAG_HEARTBEAT, TAG_JOIN_ACK};

fn coordinator_config() -> CoordinatorConfig {
    CoordinatorConfig {
        k: 3,
        over_select: 1,
        quorum: 2,
        epochs: 5,
        heartbeat_interval: 5,
        heartbeat_timeout: 20,
        round_deadline: 40,
    }
}

fn cluster_config(seed: u64, chaos: ChaosConfig) -> ClusterConfig {
    let mut participants: Vec<ParticipantConfig> =
        (0..5).map(|c| ParticipantConfig::new(c, 3)).collect();
    // One heartbeat-muted probe: it joins and trains but its lease always
    // lapses, so any commit carrying its update is a safety violation.
    participants.push(ParticipantConfig {
        mute_heartbeats: true,
        ..ParticipantConfig::new(5, 3)
    });
    ClusterConfig {
        coordinator: coordinator_config(),
        participants,
        uplink: ChaosConfig {
            seed: seed * 2 + 1,
            ..chaos
        },
        downlink: ChaosConfig {
            seed: seed * 2 + 2,
            ..chaos
        },
        target_rounds: 6,
        max_ticks: 10_000,
        global_payload: vec![0x5A; 48],
        crashes: Vec::new(),
    }
}

fn hostile() -> ChaosConfig {
    ChaosConfig {
        drop_prob: 0.12,
        dup_prob: 0.10,
        reorder_prob: 0.12,
        corrupt_prob: 0.06,
        seed: 0,
    }
}

#[test]
fn every_round_commits_or_aborts_under_chaos() {
    for seed in [1u64, 7, 23, 99, 1234] {
        let report = Cluster::new(cluster_config(seed, hostile())).run();
        assert!(
            report.liveness_ok(),
            "seed {seed}: stuck={} closed={} of 6",
            report.stuck,
            report.round_log.len()
        );
        assert_eq!(report.committed + report.aborted, 6, "seed {seed}");
    }
}

#[test]
fn no_expired_clients_update_is_ever_aggregated() {
    for seed in [1u64, 7, 23, 99, 1234] {
        let report = Cluster::new(cluster_config(seed, hostile())).run();
        assert!(
            report.safety_ok(),
            "seed {seed}: {} commits carried an expired client's update",
            report.safety_violations
        );
        // The muted probe (client 5) must never appear in a commit.
        for verdict in &report.round_log {
            assert!(
                !verdict.accepted.contains(&5),
                "seed {seed}: muted client aggregated in round {}",
                verdict.round
            );
        }
    }
}

#[test]
fn chaos_replays_are_bit_identical() {
    for seed in [3u64, 42] {
        let a = Cluster::new(cluster_config(seed, hostile())).run();
        let b = Cluster::new(cluster_config(seed, hostile())).run();
        assert_eq!(a, b, "seed {seed} replay diverged");
    }
}

#[test]
fn quiet_wire_commits_every_round_with_zero_rejections() {
    let mut config = cluster_config(0, ChaosConfig::quiet(0));
    // Drop the muted probe: a quiet, fully-live fleet is the baseline.
    config.participants.truncate(5);
    let report = Cluster::new(config).run();
    assert!(report.liveness_ok() && report.safety_ok());
    assert_eq!(report.committed, 6);
    assert_eq!(report.aborted, 0);
    assert_eq!(report.coordinator.rejected, 0);
    assert!(report.control_bytes() > 0);
}

#[test]
fn coordinator_rejects_future_protocol_versions() {
    let mut c = Coordinator::new(coordinator_config());
    let _ = c.open_rendezvous();
    // A well-formed, correctly-checksummed heartbeat from protocol v+1.
    let mut payload = vec![PROTO_VERSION + 1];
    payload.extend_from_slice(&0u64.to_be_bytes());
    payload.extend_from_slice(&1u64.to_be_bytes());
    let bytes = encode_frame(TAG_HEARTBEAT, &payload).to_vec();
    assert_eq!(
        c.handle_frame(&bytes, 1),
        Err(ProtoError::VersionMismatch {
            expected: PROTO_VERSION,
            found: PROTO_VERSION + 1,
        })
    );
}

#[test]
fn participant_rejects_future_protocol_versions() {
    let mut p = Participant::new(ParticipantConfig::new(7, 3));
    let _join = p.start(0);
    // A JoinAck answered by a coordinator speaking protocol v+1.
    let mut payload = vec![PROTO_VERSION + 1];
    payload.extend_from_slice(&7u64.to_be_bytes());
    payload.extend_from_slice(&5u32.to_be_bytes());
    payload.extend_from_slice(&20u32.to_be_bytes());
    let bytes = encode_frame(TAG_JOIN_ACK, &payload).to_vec();
    assert_eq!(
        p.handle_frame(&bytes, 1),
        Err(ProtoError::VersionMismatch {
            expected: PROTO_VERSION,
            found: PROTO_VERSION + 1,
        })
    );
}

#[test]
fn chaos_campaign_matrix_is_live_safe_and_energy_billed() {
    let report = ChaosCampaign::new(ChaosCampaignConfig::default_matrix(vec![11, 12])).run();
    assert!(report.liveness_ok());
    assert!(report.safety_ok());
    assert!(report.ledger.control_joules() > 0.0);
    // Control spend is pure overhead in the ledger's accounting.
    assert!(report.ledger.overhead_fraction() > 0.99);
}
