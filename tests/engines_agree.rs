//! The two FedAvg engines — in-process and one-thread-per-server with
//! serialized transport — must be observationally identical.

use ee_fei::prelude::*;

fn federation(seed: u64) -> (Vec<Dataset>, Dataset) {
    let gen = SyntheticMnist::new(SyntheticMnistConfig {
        pixel_noise_std: 0.3,
        ..Default::default()
    });
    let train = gen.generate(240, 0);
    let test = gen.generate(80, 1);
    let clients = Partition::iid(train.len(), 6, &mut DetRng::new(seed)).apply(&train);
    (clients, test)
}

#[test]
fn threaded_and_serial_runs_are_bit_identical() {
    let (clients, test) = federation(11);
    let config = FedAvgConfig {
        clients_per_round: 3,
        local_epochs: 2,
        sgd: SgdConfig::new(0.05, 0.99, None),
        ..Default::default()
    };
    let mut serial = FedAvg::new(config.clone(), clients.clone(), test.clone());
    let mut threaded = ThreadedFedAvg::new(config, clients, test);

    for round in 0..6 {
        let a = serial.run_round();
        let b = threaded.run_round();
        assert_eq!(
            a.selected, b.selected,
            "round {round}: different selections"
        );
        assert_eq!(
            a.test_eval, b.test_eval,
            "round {round}: different evaluations"
        );
        assert_eq!(
            a.global_train_loss, b.global_train_loss,
            "round {round}: different train losses"
        );
    }
    assert_eq!(serial.global_model(), threaded.global_model());
}

#[test]
fn engines_agree_under_weighted_aggregation_and_uneven_data() {
    // Uneven split exercises the sample-count weighting across the wire.
    let gen = SyntheticMnist::new(SyntheticMnistConfig::default());
    let train = gen.generate(300, 0);
    let test = gen.generate(60, 1);
    let (head, rest) = train.split_at(40);
    let (mid, tail) = rest.split_at(100);
    let clients = vec![head, mid, tail];

    let config = FedAvgConfig {
        clients_per_round: 3,
        local_epochs: 3,
        aggregation: AggregationRule::WeightedBySamples,
        ..Default::default()
    };
    let mut serial = FedAvg::new(config.clone(), clients.clone(), test.clone());
    let mut threaded = ThreadedFedAvg::new(config, clients, test);
    for _ in 0..4 {
        serial.run_round();
        threaded.run_round();
    }
    assert_eq!(serial.global_model(), threaded.global_model());
}

#[test]
fn engines_agree_under_dropout() {
    let (clients, test) = federation(17);
    let config = FedAvgConfig {
        clients_per_round: 4,
        local_epochs: 2,
        dropout_prob: 0.3,
        ..Default::default()
    };
    let mut serial = FedAvg::new(config.clone(), clients.clone(), test.clone());
    let mut threaded = ThreadedFedAvg::new(config, clients, test);
    let mut saw_drop = false;
    for _ in 0..8 {
        let a = serial.run_round();
        let b = threaded.run_round();
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.responded, b.responded);
        assert_eq!(a.test_eval, b.test_eval);
        saw_drop |= a.responded.len() < a.selected.len();
    }
    assert!(saw_drop, "30% dropout over 32 draws should drop someone");
    assert_eq!(serial.global_model(), threaded.global_model());
}

#[test]
fn engines_agree_when_training_an_mlp() {
    // The whole pipeline is generic over the model: run FedAvg on a small
    // MLP through both engines and require bit-identical results.
    let (clients, test) = federation(23);
    let config = FedAvgConfig {
        clients_per_round: 3,
        local_epochs: 2,
        sgd: SgdConfig::new(0.1, 1.0, None),
        ..Default::default()
    };
    let template = Mlp::new(clients[0].dim(), 16, clients[0].num_classes(), 42);
    let mut serial = FedAvg::with_model(
        config.clone(),
        clients.clone(),
        test.clone(),
        template.clone(),
    );
    let mut threaded = ThreadedFedAvg::with_model(config, clients, test, template);
    let mut last_eval = None;
    for _ in 0..5 {
        let a = serial.run_round();
        let b = threaded.run_round();
        assert_eq!(a.test_eval, b.test_eval);
        last_eval = a.test_eval;
    }
    assert_eq!(
        serial.global_model().to_flat(),
        threaded.global_model().to_flat()
    );
    // And it actually learns something beyond the 10-class prior.
    assert!(last_eval.expect("evaluated").accuracy > 0.3);
}

#[test]
fn serial_threaded_and_chunked_parallel_records_are_identical() {
    // Three executions of the same campaign — in-process serial gradients,
    // thread-per-server transport, and in-process chunked-parallel
    // gradients — must produce *identical* RoundRecords: the fixed-shape
    // pairwise reduction makes the intra-client parallel gradient
    // bit-identical to its serial evaluation, and the transport layer adds
    // nothing numeric.
    let (clients, test) = federation(29);
    let serial_cfg = FedAvgConfig {
        clients_per_round: 3,
        local_epochs: 2,
        sgd: SgdConfig::new(0.05, 0.99, None).with_grad_reduction(GradReduction::FusedSerial),
        ..Default::default()
    };
    let parallel_cfg = FedAvgConfig {
        sgd: SgdConfig::new(0.05, 0.99, None)
            .with_grad_reduction(GradReduction::FusedParallel { threads: 4 }),
        ..serial_cfg.clone()
    };
    let mut serial = FedAvg::new(serial_cfg.clone(), clients.clone(), test.clone());
    let mut threaded = ThreadedFedAvg::new(serial_cfg, clients.clone(), test.clone());
    let mut parallel = FedAvg::new(parallel_cfg, clients, test);

    for round in 0..5 {
        let a = serial.run_round();
        let b = threaded.run_round();
        let c = parallel.run_round();
        assert_eq!(a, b, "round {round}: threaded record diverges from serial");
        assert_eq!(a, c, "round {round}: chunked-parallel record diverges");
    }
    assert_eq!(serial.global_model(), threaded.global_model());
    assert_eq!(serial.global_model(), parallel.global_model());
}

#[test]
fn chunked_parallel_agrees_across_thread_counts() {
    // The reduction shape depends only on batch size, never thread count:
    // any worker count must land on the same bits.
    let (clients, test) = federation(31);
    let engine_with = |threads: usize| {
        let config = FedAvgConfig {
            clients_per_round: 2,
            local_epochs: 3,
            sgd: SgdConfig::new(0.08, 1.0, None)
                .with_grad_reduction(GradReduction::FusedParallel { threads }),
            ..Default::default()
        };
        let mut engine = FedAvg::new(config, clients.clone(), test.clone());
        for _ in 0..3 {
            engine.run_round();
        }
        engine.global_model().clone()
    };
    let reference = engine_with(1);
    for threads in [2, 3, 8, 64] {
        assert_eq!(
            engine_with(threads),
            reference,
            "{threads} worker threads changed the trained bits"
        );
    }
}

#[test]
fn pooled_round_records_identical_for_any_pool_size() {
    // FusedParallel now runs on a persistent worker pool owned by the
    // engine and reused across every client and round. The pool deals
    // chunk bands by the same static formula for every size, so the full
    // RoundRecord stream — selections, evaluations, losses, fault stats —
    // must be identical from one worker (inline fallback) through eight,
    // and identical to the serial reduction.
    let (clients, test) = federation(37);
    let records_with = |reduction: GradReduction| {
        let config = FedAvgConfig {
            clients_per_round: 3,
            local_epochs: 2,
            sgd: SgdConfig::new(0.05, 0.99, None).with_grad_reduction(reduction),
            ..Default::default()
        };
        let mut engine = FedAvg::new(config, clients.clone(), test.clone());
        (0..3).map(|_| engine.run_round()).collect::<Vec<_>>()
    };
    let reference = records_with(GradReduction::FusedSerial);
    for size in 1..=8 {
        assert_eq!(
            records_with(GradReduction::FusedParallel { threads: size }),
            reference,
            "pool size {size} changed a RoundRecord"
        );
    }
}

#[test]
fn transport_volume_matches_model_size() {
    let (clients, test) = federation(13);
    let config = FedAvgConfig {
        clients_per_round: 2,
        local_epochs: 1,
        ..Default::default()
    };
    let mut threaded = ThreadedFedAvg::new(config, clients, test);
    let rounds = 5;
    for _ in 0..rounds {
        threaded.run_round();
    }
    let stats = threaded.transport_stats();
    assert_eq!(stats.jobs, 2 * rounds as u64);
    let model_bytes = threaded.global_model().payload_bytes() as u64;
    // Down: model + 8-byte round header + 11-byte frame; up adds the
    // 24-byte update header. Bound the overhead rather than pin it.
    assert!(stats.bytes_down >= stats.jobs * model_bytes);
    assert!(stats.bytes_down <= stats.jobs * (model_bytes + 64));
    assert!(stats.bytes_up >= stats.jobs * model_bytes);
    assert!(stats.bytes_up <= stats.jobs * (model_bytes + 64));
}
