//! Socket-transport conformance: real TCP runs vs the deterministic oracles.
//!
//! Three escalating proofs that the socket runtime is the *same protocol*
//! the in-process harnesses verify:
//!
//! 1. **Oracle replay** — a coordinator + 3 participants complete 5 FL
//!    rounds over real localhost TCP with the disk-backed fsync'd journal,
//!    and replaying the captured frame trace through the shared decision
//!    core reproduces the live run bit for bit: journal bytes, committed
//!    model payloads, round verdicts, `ControlStats`.
//! 2. **Cluster agreement** — the same campaign's round outcomes match a
//!    deterministic [`Cluster`] run of the same configuration.
//! 3. **Supervision** — the coordinator runs as a real OS process
//!    (`fei_coordinatord`), is SIGKILLed mid-round twice by the
//!    [`Supervisor`], recovers from the journal both times (once resuming
//!    the round, once crash-aborting it past the deadline), is shut down
//!    gracefully mid-round (cancellation), and the full multi-incarnation
//!    history still replays bit-identically from the persisted trace.
//!
//! Every wait is wall-clock bounded; the nodes carry their own cycle
//! budgets, so a wedged run fails typed instead of hanging CI.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fei_proto::node::{
    parse_stats, read_trace, replay_trace, CoordinatorAddr, CoordinatorNode, CoordinatorNodeConfig,
    NodePersistence, NodeReport, ParticipantNode, ParticipantNodeConfig,
};
use fei_proto::{
    AbortReason, Cluster, ClusterConfig, CommandFactory, CoordinatorConfig, JournalRecord,
    JournalState, ParticipantConfig, RoundJournal, Supervisor,
};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("fei-transport-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn coordinator_config() -> CoordinatorConfig {
    CoordinatorConfig {
        k: 3,
        over_select: 0,
        quorum: 2,
        epochs: 1,
        heartbeat_interval: 10,
        heartbeat_timeout: 200,
        round_deadline: 400,
    }
}

/// Runs a coordinator (in-process) + 3 participant threads over real
/// localhost sockets until `target_rounds` rounds close.
fn run_socket_campaign(dir: &Path, target_rounds: u64) -> NodeReport {
    let mut node_config = CoordinatorNodeConfig::new(coordinator_config());
    node_config.target_rounds = target_rounds;
    node_config.max_cycles = 30_000;
    let persist = NodePersistence {
        journal: Some(dir.join("coordinator.journal")),
        trace: Some(dir.join("coordinator.trace")),
        port_file: Some(dir.join("coordinator.port")),
    };
    let mut node =
        CoordinatorNode::start("127.0.0.1:0", node_config, persist).expect("coordinator start");
    let addr = node.local_addr().expect("local addr");

    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for client in 0..3u64 {
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            // Staggered local training times so arrival order is real.
            let participant = ParticipantConfig::new(client, 2 + 2 * client);
            let mut p = ParticipantNode::new(
                CoordinatorAddr::Fixed(addr),
                ParticipantNodeConfig::new(participant),
            );
            p.run(&stop).expect("participant run")
        }));
    }

    let started = Instant::now();
    let report = node.run().expect("coordinator run");
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "socket campaign blew its wall-clock budget"
    );
    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        worker.join().expect("participant thread");
    }
    report
}

#[test]
fn socket_run_matches_oracle_replay_bit_for_bit() {
    let dir = temp_dir("oracle");
    let report = run_socket_campaign(&dir, 5);

    // The campaign actually did federated learning over TCP.
    assert!(report.audit.round_log.len() >= 5, "five rounds must close");
    let committed = report
        .audit
        .round_log
        .iter()
        .filter(|v| v.committed)
        .count();
    assert!(
        committed >= 5,
        "quiet localhost rounds all commit: {committed}"
    );
    assert!(!report.audit.journal.is_empty());

    // Golden parity: replaying the captured trace through the shared
    // decision core reproduces the live run exactly.
    let replayed = replay_trace(&coordinator_config(), &[0xAB; 64], &report.trace);
    assert_eq!(
        replayed.journal, report.audit.journal,
        "journal bytes diverged"
    );
    assert_eq!(
        replayed.round_log, report.audit.round_log,
        "round verdicts diverged"
    );
    assert_eq!(
        replayed.committed_models, report.audit.committed_models,
        "committed model bytes diverged"
    );
    assert_eq!(replayed.stats, report.audit.stats, "ControlStats diverged");
    assert_eq!(replayed, report.audit, "full audit diverged");

    // Committed models are the identity-trained echo of the global model.
    for (round, models) in &report.audit.committed_models {
        assert!(!models.is_empty(), "round {round} committed without models");
        for (client, (_samples, payload)) in models {
            assert_eq!(
                payload,
                &vec![0xAB; 64],
                "round {round} client {client} payload is not the trained echo"
            );
        }
    }

    // The persisted artifacts agree with the in-memory ones: the disk
    // journal is the fsync'd image of the decision journal, and the disk
    // trace replays to the same audit.
    let disk_journal = std::fs::read(dir.join("coordinator.journal")).expect("journal file");
    assert_eq!(disk_journal, report.audit.journal, "disk journal diverged");
    let (disk_trace, torn) = read_trace(&dir.join("coordinator.trace")).expect("trace file");
    assert_eq!(torn, 0, "clean shutdown leaves no torn trace tail");
    assert_eq!(disk_trace, report.trace, "disk trace diverged");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn socket_run_agrees_with_the_cluster_oracle() {
    let dir = temp_dir("cluster");
    let report = run_socket_campaign(&dir, 5);

    // The deterministic harness runs the same protocol configuration on
    // a quiet simulated network.
    let oracle = Cluster::new(ClusterConfig::quiet(coordinator_config(), 3, 5)).run();
    assert!(oracle.liveness_ok() && oracle.safety_ok());

    assert!(oracle.round_log.len() >= 5);
    assert!(report.audit.round_log.len() >= 5);
    for (socket, simulated) in report.audit.round_log.iter().zip(oracle.round_log.iter()) {
        assert_eq!(socket.round, simulated.round, "round numbering diverged");
        assert_eq!(
            socket.committed, simulated.committed,
            "round {} outcome diverged",
            socket.round
        );
        // Arrival *order* is scheduler-dependent over real sockets; the
        // accepted *set* is the protocol decision and must agree.
        let mut socket_accepted = socket.accepted.clone();
        socket_accepted.sort_unstable();
        let mut simulated_accepted = simulated.accepted.clone();
        simulated_accepted.sort_unstable();
        assert_eq!(
            socket_accepted, simulated_accepted,
            "round {} accepted set diverged",
            socket.round
        );
    }
    assert_eq!(
        report.audit.stats.committed_rounds, oracle.coordinator.committed_rounds,
        "committed-round counts diverged"
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Journal snapshot helpers for the supervision test: the test process
/// observes the daemon's progress by reading its fsync'd journal.
fn journal_records(path: &Path) -> Vec<JournalRecord> {
    let Ok(bytes) = std::fs::read(path) else {
        return Vec::new();
    };
    match RoundJournal::from_bytes(bytes).replay() {
        Ok(replay) => replay.records,
        Err(_) => Vec::new(),
    }
}

fn committed_rounds(records: &[JournalRecord]) -> usize {
    records
        .iter()
        .filter(|r| matches!(r, JournalRecord::RoundCommitted { .. }))
        .count()
}

fn open_round_updates(records: &[JournalRecord]) -> Option<usize> {
    let state = JournalState::from_records(records);
    state.open_round.as_ref().map(|r| r.updates.len())
}

fn wait_until(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let started = Instant::now();
    while !done() {
        assert!(
            started.elapsed() < timeout,
            "timed out after {timeout:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn supervisor_kills_respawns_and_cancels_a_real_coordinator_process() {
    let dir = temp_dir("supervised");
    let journal = dir.join("daemon.journal");
    let trace = dir.join("daemon.trace");
    let port_file = dir.join("daemon.port");
    let stats_file = dir.join("daemon.stats");

    // Long tail training (4/52/100 participant ticks) keeps every round
    // open ~100ms after its first accepted update — a wide, reliable
    // window for killing the daemon mid-Training.
    let config = coordinator_config();
    let daemon_bin = env!("CARGO_BIN_EXE_fei_coordinatord");
    let build = {
        let (journal, trace, port_file, stats_file) = (
            journal.clone(),
            trace.clone(),
            port_file.clone(),
            stats_file.clone(),
        );
        move |incarnation: u64| {
            let mut cmd = Command::new(daemon_bin);
            // Incarnation 2 comes back far past the round deadline: its
            // recovery must crash-abort instead of resuming.
            let restart_lag: u64 = if incarnation == 2 { 100_000 } else { 1 };
            cmd.args([
                "--listen",
                "127.0.0.1:0",
                "--rounds",
                "0",
                "--tick-ms",
                "2",
                "--max-cycles",
                "60000",
                "--k",
                "3",
                "--over-select",
                "0",
                "--quorum",
                "2",
                "--heartbeat-interval",
                "10",
                "--heartbeat-timeout",
                "200",
                "--round-deadline",
                "400",
            ]);
            cmd.arg("--restart-lag").arg(restart_lag.to_string());
            cmd.arg("--journal").arg(&journal);
            cmd.arg("--trace").arg(&trace);
            cmd.arg("--port-file").arg(&port_file);
            cmd.arg("--stats").arg(&stats_file);
            cmd
        }
    };
    let mut supervisor = Supervisor::with_journal(CommandFactory::new(build), journal.clone());
    supervisor.start().expect("spawn daemon");
    assert!(supervisor.is_alive());

    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for client in 0..3u64 {
        let stop = Arc::clone(&stop);
        let port_file = port_file.clone();
        workers.push(std::thread::spawn(move || {
            let participant = ParticipantConfig::new(client, 4 + 48 * client);
            let mut node_config = ParticipantNodeConfig::new(participant);
            node_config.max_cycles = 240_000;
            let mut p = ParticipantNode::new(CoordinatorAddr::PortFile(port_file), node_config);
            p.run(&stop).expect("participant run")
        }));
    }

    // Kill #1: mid-Training, with at least one update journaled. The
    // respawn (restart lag 1) recovers inside the deadline and resumes.
    wait_until(
        "an open round with a journaled update",
        Duration::from_secs(30),
        || open_round_updates(&journal_records(&journal)).is_some_and(|u| u > 0),
    );
    supervisor.kill().expect("SIGKILL #1");
    assert!(!supervisor.is_alive());
    supervisor.respawn().expect("respawn #1");
    assert!(supervisor.is_alive());
    assert_eq!(supervisor.incarnation(), 1);

    // Let the resumed campaign make progress, then kill #2 mid-Training
    // again; this respawn comes back past the deadline and must abort.
    wait_until(
        "post-resume progress and another mid-round update",
        Duration::from_secs(60),
        || {
            let records = journal_records(&journal);
            committed_rounds(&records) >= 3 && open_round_updates(&records).is_some_and(|u| u > 0)
        },
    );
    supervisor.kill().expect("SIGKILL #2");
    supervisor.respawn().expect("respawn #2");
    assert_eq!(supervisor.incarnation(), 2);
    assert_eq!(supervisor.kills(), 2);
    assert_eq!(supervisor.respawns(), 2);

    // The campaign keeps going after the crash-abort; once it has done
    // real work, shut it down gracefully mid-round (cancellation path).
    wait_until("five committed rounds", Duration::from_secs(60), || {
        committed_rounds(&journal_records(&journal)) >= 5
    });
    wait_until(
        "a fresh open round to cancel",
        Duration::from_secs(30),
        || open_round_updates(&journal_records(&journal)).is_some_and(|u| u < 2),
    );
    let addr: SocketAddr = std::fs::read_to_string(&port_file)
        .expect("port file")
        .trim()
        .parse()
        .expect("daemon address");
    Supervisor::<CommandFactory<fn(u64) -> Command>>::shutdown(addr).expect("send shutdown");
    wait_until(
        "the daemon to exit on shutdown",
        Duration::from_secs(30),
        || !supervisor.is_alive(),
    );
    stop.store(true, Ordering::Relaxed);
    let mut reconnects = 0;
    for worker in workers {
        reconnects += worker.join().expect("participant thread").reconnects;
    }
    assert!(
        reconnects >= 2,
        "participants must have re-dialed the respawns"
    );

    // === The recovery audits (same invariants tests/recovery.rs checks
    // in-process), now against a SIGKILLed real OS process. ===
    let stats = parse_stats(&std::fs::read_to_string(&stats_file).expect("stats file"));
    assert!(stats.committed_rounds >= 5, "stats: {stats:?}");
    assert!(stats.resumed_rounds >= 1, "kill #1 must resume: {stats:?}");
    assert!(
        stats.aborts.coordinator_crash >= 1,
        "kill #2 must crash-abort: {stats:?}"
    );
    assert!(
        stats.wasted_update_bytes > 0,
        "the crash-aborted round stranded an update: {stats:?}"
    );
    assert_eq!(
        stats.aborts.cancelled, 1,
        "graceful shutdown cancels once: {stats:?}"
    );

    let records = journal_records(&journal);
    // Three incarnations journaled their epochs.
    let epochs = records
        .iter()
        .filter(|r| matches!(r, JournalRecord::EpochStarted { .. }))
        .count();
    assert!(epochs >= 3, "boot + two respawns: {epochs} epochs");
    // No update is aggregated twice across restarts.
    let mut aggregated = std::collections::BTreeSet::new();
    for record in &records {
        if let JournalRecord::RoundCommitted {
            round, accepted, ..
        } = record
        {
            for client in accepted {
                assert!(
                    aggregated.insert((*round, *client)),
                    "client {client} aggregated twice in round {round}"
                );
            }
        }
    }
    // Every opened round settled (the cancellation closed the last one).
    let mut settled = std::collections::BTreeSet::new();
    for record in &records {
        match record {
            JournalRecord::RoundCommitted { round, .. }
            | JournalRecord::RoundAborted { round, .. } => {
                settled.insert(*round);
            }
            _ => {}
        }
    }
    for record in &records {
        if let JournalRecord::RoundOpened { round, .. } = record {
            assert!(settled.contains(round), "round {round} never settled");
        }
    }
    let cancelled = records.iter().any(|r| {
        matches!(
            r,
            JournalRecord::RoundAborted {
                reason: AbortReason::Cancelled,
                ..
            }
        )
    });
    assert!(
        cancelled,
        "the graceful shutdown's cancellation must be journaled"
    );

    // === Oracle replay across all three incarnations: the persisted
    // trace alone reproduces the disk journal and the daemon's stats. ===
    let (events, torn) = read_trace(&trace).expect("trace file");
    assert_eq!(torn, 0, "clean shutdown leaves no torn trace tail");
    let replayed = replay_trace(&config, &[0xAB; 64], &events);
    let disk_journal = std::fs::read(&journal).expect("journal file");
    assert_eq!(
        replayed.journal, disk_journal,
        "replayed journal diverged from disk"
    );
    assert_eq!(
        replayed.stats, stats,
        "replayed stats diverged from the daemon's"
    );
    assert_eq!(
        replayed.epoch, 2,
        "boot epoch 0, then one bump per recovery"
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
