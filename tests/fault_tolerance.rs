//! Fault injection and fault-tolerant rounds: determinism, engine
//! agreement, liveness under worker death, quorum semantics, and typed
//! fleet-exhaustion errors.

use std::time::Duration;

use ee_fei::prelude::*;
use proptest::prelude::*;

fn federation(seed: u64) -> (Vec<Dataset>, Dataset) {
    let gen = SyntheticMnist::new(SyntheticMnistConfig {
        pixel_noise_std: 0.3,
        ..Default::default()
    });
    let train = gen.generate(200, 0);
    let test = gen.generate(60, 1);
    let clients = Partition::iid(train.len(), 5, &mut DetRng::new(seed)).apply(&train);
    (clients, test)
}

fn chaotic_spec() -> FaultSpec {
    FaultSpec {
        crash_prob: 0.05,
        restart_rounds: 2,
        straggler_prob: 0.2,
        straggler_factor: 3.0,
        upload_loss_prob: 0.25,
        corrupt_prob: 0.05,
        ..Default::default()
    }
}

fn tolerant() -> ToleranceConfig {
    ToleranceConfig {
        over_select: 1,
        quorum: Some(2),
        deadline_s: Some(8.0),
        ..Default::default()
    }
}

fn faulty_config(k: usize) -> FedAvgConfig {
    FedAvgConfig {
        clients_per_round: k,
        local_epochs: 2,
        sgd: SgdConfig::new(0.05, 0.99, None),
        tolerance: tolerant(),
        ..Default::default()
    }
}

#[test]
fn same_fault_seed_is_bit_identical() {
    let run = || {
        let (clients, test) = federation(31);
        let mut engine = FedAvg::new(faulty_config(3), clients, test)
            .with_faults(FaultInjector::new(chaotic_spec()));
        let history = engine.try_run_until(StopCondition::rounds(8)).unwrap();
        (history, engine.global_model().clone())
    };
    let (history_a, model_a) = run();
    let (history_b, model_b) = run();
    assert_eq!(history_a.records(), history_b.records());
    assert_eq!(model_a, model_b);
    // The schedule actually injected something.
    assert!(
        history_a.records().iter().any(|r| r.faults.any()),
        "no faults fired"
    );
}

#[test]
fn engines_agree_under_faults() {
    let (clients, test) = federation(37);
    let config = faulty_config(3);
    let spec = chaotic_spec();
    let mut serial = FedAvg::new(config.clone(), clients.clone(), test.clone())
        .with_faults(FaultInjector::new(spec.clone()));
    let mut threaded =
        ThreadedFedAvg::new(config, clients, test).with_faults(FaultInjector::new(spec));

    for round in 0..8 {
        let a = serial.run_round();
        let b = threaded.run_round();
        assert_eq!(
            a.selected, b.selected,
            "round {round}: different selections"
        );
        assert_eq!(
            a.responded, b.responded,
            "round {round}: different arrivals"
        );
        assert_eq!(a.outcome, b.outcome, "round {round}: different outcomes");
        assert_eq!(
            a.test_eval, b.test_eval,
            "round {round}: different evaluations"
        );
        let mut a_faults = a.faults;
        // Worker losses are the threaded engine's own failure channel; the
        // injected schedule must match exactly otherwise.
        a_faults.worker_losses = b.faults.worker_losses;
        assert_eq!(a_faults, b.faults, "round {round}: different fault stats");
    }
    assert_eq!(serial.global_model(), threaded.global_model());
}

#[test]
fn worker_panic_becomes_dropout_not_hang() {
    let (clients, test) = federation(41);
    let config = FedAvgConfig {
        clients_per_round: 5, // the poisoned worker is always selected
        local_epochs: 1,
        ..Default::default()
    };
    let mut engine =
        ThreadedFedAvg::new(config, clients, test).with_worker_timeout(Duration::from_millis(500));
    engine.inject_worker_panic(2);
    let record = engine.run_round();
    assert!(record.faults.worker_losses >= 1, "{:?}", record.faults);
    assert!(record.responded.len() < record.selected.len());
    assert!(
        record.outcome.committed(),
        "survivors still commit the round"
    );
    // The dead worker keeps degrading to a dropout on later rounds — the
    // send fails fast, so no per-round timeout stall either.
    let record = engine.run_round();
    assert!(record.faults.worker_losses >= 1);
    assert_eq!(engine.rounds_completed(), 2);
}

#[test]
fn quorum_miss_abandons_round_and_preserves_model() {
    let (clients, test) = federation(43);
    let config = FedAvgConfig {
        clients_per_round: 4,
        local_epochs: 1,
        tolerance: ToleranceConfig {
            quorum: Some(4),
            retry: RetryPolicy {
                max_attempts: 1,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let spec = FaultSpec {
        upload_loss_prob: 0.6,
        ..Default::default()
    };
    let mut engine = FedAvg::new(config, clients, test).with_faults(FaultInjector::new(spec));

    let mut saw_abandoned = false;
    for _ in 0..10 {
        let before = engine.global_model().clone();
        let record = engine.run_round();
        if record.outcome == RoundOutcome::Abandoned {
            saw_abandoned = true;
            assert_eq!(
                &before,
                engine.global_model(),
                "abandoned round must not move the model"
            );
            assert!(record.responded.len() < 4);
        }
    }
    assert!(
        saw_abandoned,
        "60% loss with single-attempt uploads must miss a 4-quorum"
    );
}

#[test]
fn fleet_exhaustion_is_a_typed_error() {
    let (clients, test) = federation(47);
    let config = FedAvgConfig {
        clients_per_round: 2,
        local_epochs: 1,
        tolerance: ToleranceConfig {
            quorum: Some(2),
            ..Default::default()
        },
        ..Default::default()
    };
    let spec = FaultSpec {
        crash_prob: 0.9,
        restart_rounds: 0,
        ..Default::default()
    };
    let mut engine = FedAvg::new(config, clients, test).with_faults(FaultInjector::new(spec));

    let mut exhausted = None;
    for _ in 0..10 {
        match engine.try_run_round() {
            Ok(_) => {}
            Err(err) => {
                exhausted = Some(err);
                break;
            }
        }
    }
    let rounds_before = engine.rounds_completed();
    match exhausted.expect("90% permanent crashes must exhaust a 5-device fleet") {
        FlError::FleetBelowQuorum {
            alive, required, ..
        } => {
            assert!(alive < required);
            assert_eq!(required, 2);
        }
        other => panic!("expected FleetBelowQuorum, got {other}"),
    }
    // The failed round did not advance the counter, and the error repeats.
    assert!(engine.try_run_round().is_err());
    assert_eq!(engine.rounds_completed(), rounds_before);
}

#[test]
fn unreachable_target_terminates_and_is_recorded() {
    let (clients, test) = federation(53);
    let config = FedAvgConfig {
        clients_per_round: 3,
        local_epochs: 1,
        ..Default::default()
    };
    let mut engine = FedAvg::new(config, clients, test);
    let history = engine.run_until(StopCondition::accuracy(0.999, 4));
    assert_eq!(history.len(), 4, "must terminate at max_rounds");
    assert_eq!(history.missed_target(), Some(0.999));
    // A reachable target leaves no missed-target marker.
    let (clients, test) = federation(53);
    let config = FedAvgConfig {
        clients_per_round: 3,
        local_epochs: 1,
        ..Default::default()
    };
    let mut engine = FedAvg::new(config, clients, test);
    let history = engine.run_until(StopCondition::accuracy(0.05, 30));
    assert_eq!(history.missed_target(), None);
}

#[test]
fn lossy_uploads_account_retransmitted_bytes() {
    let (clients, test) = federation(59);
    let config = FedAvgConfig {
        clients_per_round: 4,
        local_epochs: 1,
        ..Default::default()
    };
    let spec = FaultSpec {
        upload_loss_prob: 0.4,
        ..Default::default()
    };
    let mut engine =
        ThreadedFedAvg::new(config, clients, test).with_faults(FaultInjector::new(spec));
    let history = engine.try_run_until(StopCondition::rounds(6)).unwrap();
    let retries: usize = history
        .records()
        .iter()
        .map(|r| r.faults.upload_retries)
        .sum();
    assert!(
        retries > 0,
        "40% loss over 24 uploads must retry at least once"
    );
    let stats = engine.transport_stats();
    assert!(
        stats.bytes_retransmitted > 0,
        "retries must be charged to the transport: {stats:?}"
    );
    assert!(stats.bytes_retransmitted < stats.bytes_up);
}

proptest! {
    #[test]
    fn round_invariants_hold_under_arbitrary_faults(
        crash in 0.0f64..0.4,
        loss in 0.0f64..0.6,
        straggle in 0.0f64..0.5,
        quorum in 1usize..4,
        over_select in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let gen = SyntheticMnist::new(SyntheticMnistConfig::default());
        let train = gen.generate(60, 0);
        let test = gen.generate(20, 1);
        let clients =
            Partition::iid(train.len(), 4, &mut DetRng::new(seed)).apply(&train);
        let config = FedAvgConfig {
            clients_per_round: 2,
            local_epochs: 1,
            eval_every: 4,
            tolerance: ToleranceConfig {
                over_select,
                quorum: Some(quorum),
                deadline_s: Some(6.0),
                ..Default::default()
            },
            ..Default::default()
        };
        let spec = FaultSpec {
            crash_prob: crash,
            restart_rounds: 1,
            straggler_prob: straggle,
            upload_loss_prob: loss,
            seed,
            ..Default::default()
        };
        let mut engine =
            FedAvg::new(config, clients, test).with_faults(FaultInjector::new(spec));
        for _ in 0..3 {
            let before = engine.global_model().clone();
            match engine.try_run_round() {
                Ok(record) => {
                    // Arrivals are a subset of the selection, capped at K.
                    prop_assert!(record.responded.len() <= 2);
                    prop_assert!(record
                        .responded
                        .iter()
                        .all(|c| record.selected.contains(c)));
                    // Selection respects over-selection and the fleet.
                    prop_assert!(record.selected.len() <= (2 + over_select).min(4));
                    // Outcome is consistent with the quorum.
                    let expected = RoundOutcome::of(
                        record.responded.len(),
                        record.selected.len(),
                        quorum,
                    );
                    prop_assert_eq!(record.outcome, expected);
                    if record.outcome == RoundOutcome::Abandoned {
                        prop_assert!(record.responded.len() < quorum);
                        prop_assert_eq!(&before, engine.global_model());
                    } else {
                        prop_assert!(record.responded.len() >= quorum);
                    }
                }
                Err(FlError::FleetBelowQuorum { alive, required, .. }) => {
                    // Typed exhaustion: the quorum really is unreachable.
                    prop_assert!(alive < required);
                    break;
                }
                Err(other) => panic!("aggregation cannot fail here: {other}"),
            }
        }
    }
}
