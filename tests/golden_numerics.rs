//! Golden-model numerics: the headline configuration must reproduce a
//! checked-in bit pattern exactly.
//!
//! Three rounds of the paper-like campaign (`K = 10`, `E = 10`) are pinned
//! down to the last bit: every global-model weight, the final train loss,
//! and the final test metrics are stored as `f64::to_bits` integers in
//! `tests/golden/headline_numerics.json`. Any change to the fast-path
//! kernels that alters even one ULP anywhere in training shows up here as a
//! hard failure — speedups must be *identical*, not merely close.
//!
//! Both engines are held to the same golden: the in-process [`FedAvg`] and
//! the transport-backed [`ThreadedFedAvg`].
//!
//! To regenerate after an intentional numeric change:
//!
//! ```text
//! EE_FEI_REGEN_GOLDEN=1 cargo test --test golden_numerics
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use ee_fei::prelude::*;

const ROUNDS: usize = 3;
const K: usize = 10;
const E: usize = 10;

/// The bit-level fingerprint of a finished run.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    /// `f64::to_bits` of every global-model parameter, in flat order.
    weight_bits: Vec<u64>,
    /// Bits of the last round's global training loss.
    train_loss_bits: u64,
    /// Bits of the last round's test loss.
    test_loss_bits: u64,
    /// Bits of the last round's test accuracy.
    accuracy_bits: u64,
}

fn headline_experiment() -> FlExperiment {
    FlExperiment::prepare(FlExperimentConfig::paper_like())
}

/// Fingerprints the last round's record plus the final global weights.
fn fingerprint(last: &RoundRecord, weights: &[f64]) -> Fingerprint {
    let eval = last
        .test_eval
        .as_ref()
        .expect("eval_every = 1 evaluates every round");
    Fingerprint {
        weight_bits: weights.iter().map(|w| w.to_bits()).collect(),
        train_loss_bits: last
            .global_train_loss
            .expect("eval_every = 1 records train loss")
            .to_bits(),
        test_loss_bits: eval.loss.to_bits(),
        accuracy_bits: eval.accuracy.to_bits(),
    }
}

fn serial_fingerprint(exp: &FlExperiment) -> Fingerprint {
    let mut engine = exp.engine(K, E);
    let mut last = None;
    for _ in 0..ROUNDS {
        last = Some(engine.run_round());
    }
    fingerprint(
        &last.expect("at least one round"),
        engine.global_model().to_flat(),
    )
}

fn threaded_fingerprint(exp: &FlExperiment) -> Fingerprint {
    let mut engine = exp.threaded_engine(K, E);
    let mut last = None;
    for _ in 0..ROUNDS {
        last = Some(engine.run_round());
    }
    fingerprint(
        &last.expect("at least one round"),
        engine.global_model().to_flat(),
    )
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("headline_numerics.json")
}

fn render(fp: &Fingerprint) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"golden_numerics.v1\",\n");
    let _ = writeln!(out, "  \"rounds\": {ROUNDS},");
    let _ = writeln!(out, "  \"k\": {K},");
    let _ = writeln!(out, "  \"e\": {E},");
    let _ = writeln!(out, "  \"train_loss_bits\": {},", fp.train_loss_bits);
    let _ = writeln!(out, "  \"test_loss_bits\": {},", fp.test_loss_bits);
    let _ = writeln!(out, "  \"accuracy_bits\": {},", fp.accuracy_bits);
    out.push_str("  \"weight_bits\": [\n");
    for (i, bits) in fp.weight_bits.iter().enumerate() {
        let comma = if i + 1 < fp.weight_bits.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(out, "    {bits}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}

/// Minimal parser for the golden file: extracts one named integer field.
fn field_u64(json: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let start = json.find(&key).unwrap_or_else(|| panic!("missing {name}")) + key.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|_| panic!("malformed {name}"))
}

fn parse(json: &str) -> Fingerprint {
    let arr_start = json
        .find("\"weight_bits\": [")
        .expect("missing weight_bits")
        + "\"weight_bits\": [".len();
    let arr_end = json[arr_start..]
        .find(']')
        .expect("unterminated weight_bits")
        + arr_start;
    let weight_bits = json[arr_start..arr_end]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("malformed weight bits"))
        .collect();
    Fingerprint {
        weight_bits,
        train_loss_bits: field_u64(json, "train_loss_bits"),
        test_loss_bits: field_u64(json, "test_loss_bits"),
        accuracy_bits: field_u64(json, "accuracy_bits"),
    }
}

fn assert_matches_golden(fp: &Fingerprint, golden: &Fingerprint, engine: &str) {
    assert_eq!(
        fp.weight_bits.len(),
        golden.weight_bits.len(),
        "{engine}: model size changed; regenerate the golden file"
    );
    let diverged = fp
        .weight_bits
        .iter()
        .zip(&golden.weight_bits)
        .filter(|(a, b)| a != b)
        .count();
    assert_eq!(
        diverged,
        0,
        "{engine}: {diverged} of {} weights diverge from the golden bits",
        golden.weight_bits.len()
    );
    assert_eq!(
        fp.train_loss_bits,
        golden.train_loss_bits,
        "{engine}: train loss bits diverge (golden {:.17e}, got {:.17e})",
        f64::from_bits(golden.train_loss_bits),
        f64::from_bits(fp.train_loss_bits)
    );
    assert_eq!(
        fp.test_loss_bits, golden.test_loss_bits,
        "{engine}: test loss bits diverge"
    );
    assert_eq!(
        fp.accuracy_bits, golden.accuracy_bits,
        "{engine}: accuracy bits diverge"
    );
}

#[test]
fn headline_run_matches_golden_bits() {
    let exp = headline_experiment();
    let fp = serial_fingerprint(&exp);

    if std::env::var_os("EE_FEI_REGEN_GOLDEN").is_some() {
        let path = golden_path();
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, render(&fp)).expect("write golden file");
        eprintln!("regenerated {}", path.display());
        return;
    }

    let json = std::fs::read_to_string(golden_path())
        .expect("golden file missing - run once with EE_FEI_REGEN_GOLDEN=1 to record it");
    let golden = parse(&json);
    assert_matches_golden(&fp, &golden, "serial FedAvg");
}

#[test]
fn threaded_engine_matches_same_golden_bits() {
    if std::env::var_os("EE_FEI_REGEN_GOLDEN").is_some() {
        // The serial test owns regeneration; nothing to pin here.
        return;
    }
    let exp = headline_experiment();
    let fp = threaded_fingerprint(&exp);
    let json = std::fs::read_to_string(golden_path())
        .expect("golden file missing - run once with EE_FEI_REGEN_GOLDEN=1 to record it");
    let golden = parse(&json);
    assert_matches_golden(&fp, &golden, "ThreadedFedAvg");
}

#[test]
fn golden_file_round_trips_through_renderer() {
    let fp = Fingerprint {
        weight_bits: vec![0, 1, u64::MAX, 0x3FF0_0000_0000_0000],
        train_loss_bits: 42,
        test_loss_bits: 7,
        accuracy_bits: u64::MAX - 1,
    };
    assert_eq!(parse(&render(&fp)), fp);
}
