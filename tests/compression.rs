//! Transport-compression integration: the wire tiers exercised through the
//! public facade, from `FlExperimentConfig::with_transport` down to the
//! engines' byte accounting and the planner's payload-derived `e_U`.
//!
//! The crate-level unit tests pin the codec and the engine parity; these
//! tests pin the *wiring*: a tier selected at the experiment level must
//! reach both engines, move the measured bytes, leave the lossless default
//! bit-identical, and feed the planner a payload it actually responds to.

use ee_fei::net::Link;
use ee_fei::prelude::*;

const K: usize = 3;
const E: usize = 2;
const ROUNDS: usize = 3;

const TIERS: [WireConfig; 6] = [
    WireConfig {
        encoding: Encoding::F64,
        delta: false,
    },
    WireConfig {
        encoding: Encoding::F64,
        delta: true,
    },
    WireConfig {
        encoding: Encoding::F32,
        delta: false,
    },
    WireConfig {
        encoding: Encoding::F32,
        delta: true,
    },
    WireConfig {
        encoding: Encoding::Q8,
        delta: false,
    },
    WireConfig {
        encoding: Encoding::Q8,
        delta: true,
    },
];

fn experiment(transport: WireConfig) -> FlExperiment {
    FlExperiment::prepare(
        FlExperimentConfig {
            num_devices: 4,
            scale: 0.01,
            test_scale: 0.01,
            ..FlExperimentConfig::paper_like()
        }
        .with_transport(transport),
    )
}

/// The tier chosen at the experiment level reaches both engines, and the
/// serial engine's simulated byte counts equal the threaded engine's
/// measured frame lengths under every tier.
#[test]
fn experiment_transport_reaches_both_engines() {
    for tier in TIERS {
        let exp = experiment(tier);
        let mut serial = exp.engine(K, E);
        let mut threaded = exp.threaded_engine(K, E);
        for _ in 0..ROUNDS {
            serial.run_round();
            threaded.run_round();
        }
        assert_eq!(
            serial.transport_stats(),
            threaded.transport_stats(),
            "byte accounting diverged under {}",
            tier.name()
        );
        assert_eq!(serial.transport_stats().jobs, (K * ROUNDS) as u64);
    }
}

/// Compression moves real bytes: per-tier uplink totals are ordered
/// `q8 < f32 < f64`, q8 clears the 4x reduction gate, and the downlink
/// (always lossless) is tier-independent.
#[test]
fn compressed_tiers_shrink_the_uplink() {
    let stats_for = |tier: WireConfig| {
        let mut engine = experiment(tier).engine(K, E);
        for _ in 0..ROUNDS {
            engine.run_round();
        }
        engine.transport_stats()
    };
    let f64s = stats_for(TIERS[0]);
    let f32s = stats_for(TIERS[2]);
    let q8 = stats_for(TIERS[4]);
    assert!(q8.bytes_up < f32s.bytes_up && f32s.bytes_up < f64s.bytes_up);
    assert!(
        q8.bytes_up * 4 <= f64s.bytes_up,
        "q8 uplink {} not 4x below f64 {}",
        q8.bytes_up,
        f64s.bytes_up
    );
    assert_eq!(q8.bytes_down, f64s.bytes_down);
    // Delta mode reshapes values, not sizes: byte totals match per encoding.
    assert_eq!(stats_for(TIERS[5]).bytes_up, q8.bytes_up);
}

/// The default transport is the absolute-f64 tier — the one tier whose
/// round trip is bit-exact (golden_numerics holds the engines to the seed
/// bits under it). Delta f64 reconstructs `(w − g) + g`, which can round in
/// the last ulp, and lossy tiers must visibly move weights.
#[test]
fn default_tier_is_lossless_and_lossy_tiers_move_weights() {
    assert_eq!(FlExperimentConfig::paper_like().transport, TIERS[0]);
    assert!(TIERS[0].is_lossless());
    let weights = |tier: WireConfig| -> Vec<f64> {
        let mut engine = experiment(tier).engine(K, E);
        for _ in 0..ROUNDS {
            engine.run_round();
        }
        engine.global_model().to_flat().to_vec()
    };
    let exact = weights(TIERS[0]);
    // Delta f64 is near-lossless: ulp-scale reconstruction error only.
    let delta = weights(TIERS[1]);
    for (a, b) in exact.iter().zip(&delta) {
        assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
    }
    // Lossy tiers genuinely go through the codec: at least one weight moves.
    let q8: Vec<u64> = weights(TIERS[4]).iter().map(|w| w.to_bits()).collect();
    assert_ne!(exact.iter().map(|w| w.to_bits()).collect::<Vec<_>>(), q8);
}

/// After the first round has sized the scratch, further rounds perform no
/// codec allocations under any tier.
#[test]
fn codec_is_allocation_free_after_warmup() {
    for tier in TIERS {
        let mut engine = experiment(tier).engine(K, E);
        engine.run_round();
        let warm = engine.wire_allocations();
        for _ in 1..ROUNDS {
            engine.run_round();
        }
        assert_eq!(
            engine.wire_allocations(),
            warm,
            "steady-state allocations under {}",
            tier.name()
        );
    }
}

/// The planner consumes the tier's true payload size: a smaller encoded
/// model yields a cheaper plan over a byte-priced uplink, and never a more
/// expensive one over any link.
#[test]
fn planner_replans_from_payload_bytes() {
    let bound = ConvergenceBound::new(50.0, 0.05, 1e-4).unwrap();
    let planner = EeFeiPlanner::new(RoundEnergyModel::paper_default(), bound, 0.1, 20).unwrap();
    let count = 7_850;
    let link = Link::nb_iot();
    let mut last_energy = f64::INFINITY;
    for tier in [TIERS[0], TIERS[2], TIERS[4]] {
        let plan = planner
            .replan_for_payload(&link, tier.payload_len(count))
            .unwrap();
        assert!(
            plan.solution.energy <= last_energy,
            "{} plan costs more than the previous tier",
            tier.name()
        );
        last_energy = plan.solution.energy;
    }
}
