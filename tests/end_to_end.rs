//! End-to-end integration: data generation → federated training →
//! calibration → joint optimization, across every crate in the workspace.

use ee_fei::core::calibration::fit_bound_constants;
use ee_fei::prelude::*;
use ee_fei::testbed::experiment::gap_observations;

/// A miniature campaign that trains in seconds even in debug mode.
fn mini_experiment() -> FlExperiment {
    FlExperiment::prepare(FlExperimentConfig {
        num_devices: 4,
        scale: 0.005,
        test_scale: 0.02,
        data: SyntheticMnistConfig {
            pixel_noise_std: 0.3,
            label_flip_prob: 0.02,
            ..Default::default()
        },
        sgd: SgdConfig::new(0.05, 0.999, None),
        eval_every: 1,
        partition: PartitionStrategy::Iid,
        seed: 7,
        transport: WireConfig::default(),
    })
}

#[test]
fn federated_training_reaches_a_useful_model() {
    let exp = mini_experiment();
    let (history, t) = exp.run_to_accuracy(4, 5, 0.85, 120);
    let t = t.expect("4 clients x 5 epochs should reach 85% within 120 rounds");
    assert!(t <= 120);
    // The run stops as soon as the accuracy target is hit, so just require
    // a clear loss improvement up to that point.
    let losses = history.loss_curve();
    let first = losses.first().expect("has evaluations").1;
    let last = losses.last().expect("has evaluations").1;
    assert!(last < first * 0.9, "loss barely moved: {first} -> {last}");
    let final_acc = history.accuracy_curve().last().expect("has evaluations").1;
    assert!(final_acc >= 0.85);
}

#[test]
fn calibrated_bound_feeds_a_feasible_planner() {
    let exp = mini_experiment();

    // Probe three configurations.
    let probes = [(1usize, 1usize, 60usize), (2, 4, 40), (4, 8, 30)];
    let runs: Vec<(usize, usize, TrainingHistory)> = probes
        .iter()
        .map(|&(k, e, rounds)| (k, e, exp.run_rounds(k, e, rounds)))
        .collect();

    // Loss floor from a centralized fit.
    let union = exp.training_union();
    let mut reference = LogisticRegression::zeros(union.dim(), union.num_classes());
    LocalTrainer::new(SgdConfig::new(0.05, 1.0, None)).train(&mut reference, &union, 300, 0);
    let f_star = reference.loss(&union) - 0.01;

    let mut observations = Vec::new();
    for (k, e, h) in &runs {
        observations.extend(gap_observations(h, *e, *k, f_star, 2));
    }
    assert!(
        observations.len() > 30,
        "only {} observations",
        observations.len()
    );
    let bound = fit_bound_constants(&observations).expect("regression is well-posed");
    assert!(bound.a0() > 0.0);

    // Epsilon: the largest gap observed at the end of any probe run still
    // reachable — guarantees feasibility of the planning problem.
    let epsilon = runs
        .iter()
        .filter_map(|(_, _, h)| h.loss_curve().last().map(|&(_, l)| l - f_star))
        .fold(f64::NEG_INFINITY, f64::max)
        * 1.5;
    assert!(epsilon > 0.0);

    let energy = RoundEnergyModel::paper_default();
    let planner = EeFeiPlanner::new(energy, bound, epsilon, 4).expect("feasible planner");
    let plan = planner.plan().expect("baseline feasible");
    assert!(plan.solution.energy <= plan.baseline_energy);
    assert!(plan.solution.k >= 1 && plan.solution.k <= 4);

    // ACS's integer refinement seeds every K's continuous optimum, so its
    // answer matches exhaustive search exactly.
    let grid = GridSearch::default()
        .solve(&planner.objective())
        .expect("grid solvable");
    assert_eq!((grid.k, grid.e), (plan.solution.k, plan.solution.e));
    assert!((grid.energy - plan.solution.energy).abs() < 1e-9);
}

#[test]
fn paper_defaults_compose_into_a_plan() {
    // The out-of-the-box path from the README: paper constants end to end.
    let energy = RoundEnergyModel::paper_default();
    let bound = ConvergenceBound::new(1.0, 0.05, 1e-4).expect("valid constants");
    let planner = EeFeiPlanner::new(energy, bound, 0.1, 20).expect("feasible");
    let plan = planner.plan().expect("solvable");
    assert!(
        plan.savings_fraction > 0.0,
        "optimization should beat K=1, E=1"
    );
    assert!(plan.solution.t >= 1);
    // The round budget honours the convergence constraint.
    let gap = bound.gap(
        plan.solution.t as f64,
        plan.solution.e as f64,
        plan.solution.k as f64,
    );
    assert!(gap <= 0.1 + 1e-9, "bound violated: gap {gap}");
}

#[test]
fn accuracy_targets_translate_monotonically() {
    // Tighter accuracy -> more rounds and more energy, through the whole
    // bound -> T* -> ê chain.
    let energy = RoundEnergyModel::paper_default();
    let bound = ConvergenceBound::new(1.0, 0.05, 1e-4).expect("valid constants");
    let mut last_energy = 0.0;
    for epsilon in [0.4, 0.2, 0.1, 0.06] {
        let plan = EeFeiPlanner::new(energy, bound, epsilon, 20)
            .expect("feasible")
            .plan()
            .expect("solvable");
        assert!(
            plan.solution.energy >= last_energy,
            "tightening eps to {epsilon} reduced energy"
        );
        last_energy = plan.solution.energy;
    }
}
